//! Hot-swap protocol tests: epoch flips are atomic, in-flight batches
//! drain on the bundle they were collected under (no interleaving), and
//! corrupt or incompatible candidates are rejected with the typed cause
//! while the old ensemble keeps serving uninterrupted.

use edde_core::{BundleError, EnsembleError, FrozenEnsemble};
use edde_nn::checkpoint::{self, CheckpointStore, MemStore};
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_serve::{ServeConfig, ServeCore, ServeError, ServeFaultPlan, SubmitOptions, TestClock};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn member(seed: u64, classes: usize) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[4, 8, classes], 0.0, &mut r)
}

fn frozen(seeds: &[u64], classes: usize) -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    for (i, &s) in seeds.iter().enumerate() {
        f.push(Arc::new(member(s, classes)), 1.0, format!("m{i}"));
    }
    f
}

fn manual_core(seeds: &[u64]) -> ServeCore {
    ServeCore::with_parts(
        frozen(seeds, 3),
        ServeConfig::manual(),
        Arc::new(TestClock::new()),
        ServeFaultPlan::new(),
    )
}

fn x() -> Tensor {
    Tensor::ones(&[2, 4])
}

#[test]
fn swap_flips_epoch_and_serves_the_new_bundle() {
    let core = manual_core(&[1, 2]);
    let h = core.submit(x(), SubmitOptions::new()).unwrap();
    core.step();
    let before = h.wait().unwrap();
    assert_eq!(before.epoch, 0);
    assert_eq!(
        before.soft_targets.data(),
        frozen(&[1, 2], 3).soft_targets(&x()).unwrap().data()
    );

    let report = core.swap_in(frozen(&[3, 4], 3)).unwrap();
    assert_eq!((report.old_epoch, report.new_epoch), (0, 1));
    assert_eq!(core.epoch(), 1);
    // Nothing was in flight: the old bundle drains immediately.
    assert!(report.retired.upgrade().is_none());

    let h = core.submit(x(), SubmitOptions::new()).unwrap();
    core.step();
    let after = h.wait().unwrap();
    assert_eq!(after.epoch, 1);
    assert_eq!(
        after.soft_targets.data(),
        frozen(&[3, 4], 3).soft_targets(&x()).unwrap().data()
    );
    assert_eq!(core.stats().swaps, 1);
}

#[test]
fn inflight_batches_drain_on_the_old_bundle_without_interleaving() {
    let core = manual_core(&[1, 2]);
    let h_old = core.submit(x(), SubmitOptions::new()).unwrap();
    // Collect the batch but hold it in flight across the swap.
    let inflight = core.begin_batch().unwrap();
    assert_eq!(inflight.epoch(), 0);

    let report = core.swap_in(frozen(&[3, 4], 3)).unwrap();
    // The in-flight batch pins the retired bundle: not drained yet.
    assert!(report.retired.upgrade().is_some());

    // New traffic is served on the new bundle while the old batch is
    // still in flight — a swap never interrupts service.
    let h_new = core.submit(x(), SubmitOptions::new()).unwrap();
    core.step();
    let new_pred = h_new.wait().unwrap();
    assert_eq!(new_pred.epoch, 1);
    assert_eq!(
        new_pred.soft_targets.data(),
        frozen(&[3, 4], 3).soft_targets(&x()).unwrap().data()
    );

    // The held batch completes wholly on the bundle it was collected
    // under — epoch 0 results, no members mixed across bundles.
    inflight.run();
    let old_pred = h_old.wait().unwrap();
    assert_eq!(old_pred.epoch, 0);
    assert_eq!(
        old_pred.soft_targets.data(),
        frozen(&[1, 2], 3).soft_targets(&x()).unwrap().data()
    );
    // ... and only now is the retired bundle fully drained.
    assert!(report.retired.upgrade().is_none());
}

#[test]
fn rejected_candidates_leave_the_serving_pointer_untouched() {
    let core = manual_core(&[1, 2]);
    let reference = frozen(&[1, 2], 3);
    let store = MemStore::new();
    frozen(&[3, 4], 3).save_bundle(&store, "good").unwrap();
    let good_payload = frozen(&[3, 4], 3).encode();
    let build = |_: &str, _: usize| Ok(member(99, 3));

    // An empty candidate is refused.
    match core.swap_in(FrozenEnsemble::new()) {
        Err(ServeError::SwapRejected(EnsembleError::EmptyEnsemble)) => {}
        other => panic!("expected EmptyEnsemble rejection, got {other:?}"),
    }
    // A live candidate with the wrong class count is refused.
    match core.swap_in(frozen(&[5, 6], 2)) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(BundleError::ArchMismatch {
            expected,
            got,
            ..
        }))) => assert_eq!((expected, got), (3, 2)),
        other => panic!("expected ArchMismatch rejection, got {other:?}"),
    }
    // A corrupt bundle (bad magic inside a valid frame) is refused.
    let mut bad_magic = good_payload.to_vec();
    bad_magic[0] = b'X';
    store
        .put("bad-magic", &checkpoint::seal(&bad_magic))
        .unwrap();
    match core.swap_bundle(&store, "bad-magic", &build) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(BundleError::BadMagic(_)))) => {}
        other => panic!("expected BadMagic rejection, got {other:?}"),
    }
    // A torn frame (CRC failure) is refused before parsing.
    let mut torn = store.get("good").unwrap().to_vec();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x10;
    store.put("torn", &torn).unwrap();
    match core.swap_bundle(&store, "torn", &build) {
        Err(ServeError::SwapRejected(e)) => {
            assert!(e.to_string().contains("checksum"), "{e}");
        }
        other => panic!("expected checksum rejection, got {other:?}"),
    }
    // A truncated payload is refused.
    store
        .put(
            "truncated",
            &checkpoint::seal(&good_payload[..good_payload.len() - 7]),
        )
        .unwrap();
    match core.swap_bundle(&store, "truncated", &build) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(BundleError::Truncated(_)))) => {}
        other => panic!("expected Truncated rejection, got {other:?}"),
    }

    // Through all five rejections the original ensemble kept serving,
    // bit-identically, at the original epoch.
    assert_eq!(core.epoch(), 0);
    let stats = core.stats();
    assert_eq!(stats.swaps, 0);
    assert_eq!(stats.swaps_rejected, 5);
    let h = core.submit(x(), SubmitOptions::new()).unwrap();
    core.step();
    let p = h.wait().unwrap();
    assert_eq!(p.epoch, 0);
    assert_eq!(
        p.soft_targets.data(),
        reference.soft_targets(&x()).unwrap().data()
    );

    // And the good bundle still swaps in cleanly afterwards.
    let report = core.swap_bundle(&store, "good", &build).unwrap();
    assert_eq!(report.new_epoch, 1);
    assert_eq!(core.stats().swaps, 1);
}
