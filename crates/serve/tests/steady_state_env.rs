//! Steady-state serving performs **zero** environment lookups.
//!
//! A [`ServeCore`] resolves its [`ServeConfig`] once at construction;
//! from then on admission, batching, and execution read only that
//! resolved state. The submit→drain loop below runs after a warm-up
//! pass and must not move the global `env_lookup` counter at all. Run
//! inline-dispatched on one thread (so lazily-built worker scratch
//! cannot smear the counter), with a single test in this file so no
//! sibling races the process-global count.

use edde_core::{EddeConfig, FrozenEnsemble};
use edde_nn::models::mlp;
use edde_serve::{ServeConfig, ServeCore, ServeFaultPlan, StepOutcome, SubmitOptions, TestClock};
use edde_tensor::env::env_read_count;
use edde_tensor::parallel::with_inline_dispatch;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn features(tag: u64) -> Tensor {
    let mut t = Tensor::zeros(&[2, 4]);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        *v = ((tag * 31 + i as u64) % 17) as f32 * 0.25 - 2.0;
    }
    t
}

#[test]
fn steady_state_serving_reads_no_environment() {
    let mut frozen = FrozenEnsemble::new();
    for seed in 0..2u64 {
        let net = mlp(&[4, 8, 3], 0.0, &mut StdRng::seed_from_u64(seed));
        frozen.push(Arc::new(net), 1.0, format!("m{seed}"));
    }
    // Resolve the knob layer once, up front — the only point at which
    // the environment may be consulted.
    let config = ServeConfig {
        workers: 0, // manual drain: the test thread is the worker
        batch_deadline: Duration::ZERO,
        ..ServeConfig::from_config(&EddeConfig::from_env())
    };
    let core = ServeCore::with_parts(
        frozen,
        config,
        Arc::new(TestClock::new()),
        ServeFaultPlan::new(),
    );

    with_inline_dispatch(|| {
        // Warm-up: first batch builds this thread's inference scratch.
        let h = core.submit(features(0), SubmitOptions::new()).unwrap();
        assert!(matches!(core.step(), StepOutcome::Served { .. }));
        h.wait().unwrap();

        let before = env_read_count();
        for tag in 1..60u64 {
            let h = core.submit(features(tag), SubmitOptions::new()).unwrap();
            assert!(matches!(core.step(), StepOutcome::Served { .. }));
            h.wait().unwrap();
        }
        assert_eq!(
            env_read_count() - before,
            0,
            "serving hot path touched the environment"
        );
    });
}
