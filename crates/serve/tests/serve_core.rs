//! Deterministic overload, deadline, shedding, and parity tests for the
//! serving core. Everything here runs in manual-drain mode on a
//! [`TestClock`] — no sleeps, no timing races — except the threaded
//! smoke test at the end, which exercises the worker path the CI matrix
//! varies via `EDDE_SERVE_WORKERS`.

use edde_core::FrozenEnsemble;
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_serve::{
    DeadlineStage, Priority, ServeConfig, ServeCore, ServeError, ServeFaultPlan, ServeStats,
    StepOutcome, SubmitOptions, TestClock,
};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn member(seed: u64) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[4, 8, 3], 0.0, &mut r)
}

fn frozen(seeds: &[u64]) -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    for (i, &s) in seeds.iter().enumerate() {
        f.push(Arc::new(member(s)), 1.0 + i as f32 * 0.5, format!("m{i}"));
    }
    f
}

/// A distinct, reproducible feature tensor per tag.
fn features(rows: usize, tag: u64) -> Tensor {
    let mut t = Tensor::zeros(&[rows, 4]);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        *v = ((tag * 31 + i as u64) % 17) as f32 * 0.25 - 2.0;
    }
    t
}

fn manual_core(
    queue_capacity: usize,
    fault: ServeFaultPlan,
) -> (ServeCore, Arc<TestClock>, FrozenEnsemble) {
    let clock = Arc::new(TestClock::new());
    let config = ServeConfig {
        queue_capacity,
        ..ServeConfig::manual()
    };
    let core = ServeCore::with_parts(frozen(&[1, 2]), config, clock.clone(), fault);
    (core, clock, frozen(&[1, 2]))
}

/// The accounting identity that proves no silent drops.
fn assert_lossless(stats: &ServeStats) {
    assert_eq!(
        stats.admitted,
        stats.served_requests
            + stats.expired_in_queue
            + stats.failed
            + stats.closed_unserved
            + stats.depth,
        "admitted requests leaked: {stats:?}"
    );
}

#[test]
fn overload_and_deadlines_are_typed_and_accepted_work_is_bit_identical() {
    // Deterministic schedule: 4-deep queue, batch 0 stalls 10ms so the
    // two 5ms-deadline requests expire at dequeue.
    let plan = ServeFaultPlan::new().slow_batch_at(0, Duration::from_millis(10));
    let (core, _clock, reference) = manual_core(4, plan);

    let h_expire_a = core
        .submit(
            features(1, 0),
            SubmitOptions::new().with_timeout(Duration::from_millis(5)),
        )
        .unwrap();
    let h_keep_b = core.submit(features(2, 1), SubmitOptions::new()).unwrap();
    let h_keep_c = core
        .submit(
            features(1, 2),
            SubmitOptions::new().with_timeout(Duration::from_millis(20)),
        )
        .unwrap();
    let h_expire_d = core
        .submit(
            features(1, 3),
            SubmitOptions::new().with_timeout(Duration::from_millis(5)),
        )
        .unwrap();

    // Queue is now full: admission control rejects, it never buffers.
    match core.submit(features(1, 4), SubmitOptions::new()) {
        Err(ServeError::Overloaded { depth, capacity }) => {
            assert_eq!((depth, capacity), (4, 4));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // An already-expired deadline is refused up front.
    match core.submit(
        features(1, 5),
        SubmitOptions::new().with_deadline(Duration::ZERO),
    ) {
        Err(ServeError::DeadlineExceeded {
            stage: DeadlineStage::Admission,
        }) => {}
        other => panic!("expected admission DeadlineExceeded, got {other:?}"),
    }

    // One drain pass: the stall fires, expired work is shed before the
    // batch, the two live requests ride one batch.
    match core.step() {
        StepOutcome::Served { requests, rows } => {
            assert_eq!(requests, 2);
            assert_eq!(rows, 3);
        }
        other => panic!("expected a served batch, got {other:?}"),
    }

    for h in [h_expire_a, h_expire_d] {
        match h.wait() {
            Err(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Dequeue,
            }) => {}
            other => panic!("expected dequeue DeadlineExceeded, got {other:?}"),
        }
    }
    // Accepted requests are bit-identical to direct FrozenEnsemble calls.
    for (h, feats) in [(h_keep_b, features(2, 1)), (h_keep_c, features(1, 2))] {
        let p = h.wait().unwrap();
        assert_eq!(p.epoch, 0);
        assert_eq!(p.batch_rows, 3);
        assert_eq!(
            p.soft_targets.data(),
            reference.soft_targets(&feats).unwrap().data()
        );
        assert_eq!(p.classes, reference.predict(&feats).unwrap());
    }

    let stats = core.stats();
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.served_requests, 2);
    assert_eq!(stats.expired_in_queue, 2);
    assert_eq!(stats.rejected_overloaded, 1);
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.depth, 0);
    assert_lossless(&stats);
}

#[test]
fn coalescing_packs_whole_requests_up_to_max_batch_rows() {
    let clock = Arc::new(TestClock::new());
    let config = ServeConfig {
        queue_capacity: 16,
        max_batch_rows: 4,
        ..ServeConfig::manual()
    };
    let core = ServeCore::with_parts(frozen(&[1, 2]), config, clock, ServeFaultPlan::new());
    let reference = frozen(&[1, 2]);

    let handles: Vec<_> = [(2usize, 10u64), (2, 11), (1, 12)]
        .iter()
        .map(|&(rows, tag)| {
            core.submit(features(rows, tag), SubmitOptions::new())
                .unwrap()
        })
        .collect();

    // First batch packs 2+2 rows; the third request won't split or
    // overflow, so it rides the next batch alone.
    assert_eq!(
        core.step(),
        StepOutcome::Served {
            requests: 2,
            rows: 4
        }
    );
    assert_eq!(
        core.step(),
        StepOutcome::Served {
            requests: 1,
            rows: 1
        }
    );
    assert_eq!(core.step(), StepOutcome::Idle);

    for (h, (rows, tag)) in handles.into_iter().zip([(2usize, 10u64), (2, 11), (1, 12)]) {
        let p = h.wait().unwrap();
        let feats = features(rows, tag);
        assert_eq!(
            p.soft_targets.data(),
            reference.soft_targets(&feats).unwrap().data()
        );
    }
    assert_lossless(&core.stats());
}

#[test]
fn shed_tiers_degrade_by_priority_before_the_queue_fills() {
    let (core, _clock, _) = manual_core(20, ServeFaultPlan::new());
    // Fill to depth 15 = 75% pressure.
    for i in 0..15 {
        core.submit(features(1, i), SubmitOptions::new()).unwrap();
    }
    // Low is shed at 75%, Normal and High still pass.
    match core.submit(
        features(1, 100),
        SubmitOptions::new().with_priority(Priority::Low),
    ) {
        Err(ServeError::Shed {
            priority: Priority::Low,
        }) => {}
        other => panic!("expected Low shed, got {other:?}"),
    }
    for i in 15..18 {
        core.submit(features(1, i), SubmitOptions::new()).unwrap();
    }
    // Depth 18 = 90% pressure: Normal is shed too; High still passes.
    match core.submit(features(1, 101), SubmitOptions::new()) {
        Err(ServeError::Shed {
            priority: Priority::Normal,
        }) => {}
        other => panic!("expected Normal shed, got {other:?}"),
    }
    core.submit(
        features(1, 102),
        SubmitOptions::new().with_priority(Priority::High),
    )
    .unwrap();
    core.submit(
        features(1, 103),
        SubmitOptions::new().with_priority(Priority::High),
    )
    .unwrap();
    // Queue full: even High is refused, with Overloaded not Shed.
    match core.submit(
        features(1, 104),
        SubmitOptions::new().with_priority(Priority::High),
    ) {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = core.stats();
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.rejected_overloaded, 1);
    assert_eq!(stats.admitted, 20);
    while core.step() != StepOutcome::Idle {}
    assert_lossless(&core.stats());
}

#[test]
fn mismatched_row_shapes_are_rejected_typed() {
    let (core, _clock, _) = manual_core(8, ServeFaultPlan::new());
    core.submit(features(1, 0), SubmitOptions::new()).unwrap();
    match core.submit(Tensor::ones(&[1, 5]), SubmitOptions::new()) {
        Err(ServeError::ShapeMismatch { expected, got }) => {
            assert_eq!(expected, vec![4]);
            assert_eq!(got, vec![5]);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // Rank-1 and zero-row tensors can't join any batch.
    assert!(matches!(
        core.submit(Tensor::ones(&[4]), SubmitOptions::new()),
        Err(ServeError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        core.submit(Tensor::zeros(&[0, 4]), SubmitOptions::new()),
        Err(ServeError::ShapeMismatch { .. })
    ));
    core.step();
    assert_eq!(core.stats().rejected_shape, 3);
}

#[test]
fn close_resolves_queued_requests_with_typed_closed() {
    let (core, _clock, _) = manual_core(8, ServeFaultPlan::new());
    let h1 = core.submit(features(1, 0), SubmitOptions::new()).unwrap();
    let h2 = core.submit(features(1, 1), SubmitOptions::new()).unwrap();
    core.close();
    assert!(matches!(h1.wait(), Err(ServeError::Closed)));
    assert!(matches!(h2.wait(), Err(ServeError::Closed)));
    assert!(matches!(
        core.submit(features(1, 2), SubmitOptions::new()),
        Err(ServeError::Closed)
    ));
    let stats = core.stats();
    assert_eq!(stats.closed_unserved, 2);
    assert_lossless(&stats);
}

#[test]
fn threaded_workers_serve_identical_results() {
    // Worker count comes from the environment so the CI matrix
    // (EDDE_SERVE_WORKERS = 1 and 8) exercises both the pooled and the
    // inline-dispatch execution paths.
    let config = ServeConfig {
        queue_capacity: 64,
        max_batch_rows: 8,
        batch_deadline: Duration::from_micros(200),
        ..ServeConfig::from_env()
    };
    let workers = config.workers;
    assert!(workers >= 1, "threaded test needs at least one worker");
    let core = ServeCore::new(frozen(&[1, 2, 3]), config);
    let reference = frozen(&[1, 2, 3]);

    let handles: Vec<_> = (0..24)
        .map(|tag| {
            let rows = 1 + (tag as usize % 3);
            (
                rows,
                tag,
                core.submit(
                    features(rows, tag),
                    SubmitOptions::new().with_timeout(Duration::from_secs(30)),
                )
                .unwrap(),
            )
        })
        .collect();
    for (rows, tag, h) in handles {
        let p = h.wait().unwrap();
        let feats = features(rows, tag);
        assert_eq!(
            p.soft_targets.data(),
            reference.soft_targets(&feats).unwrap().data(),
            "row results must not depend on batching or worker count"
        );
        assert_eq!(p.classes, reference.predict(&feats).unwrap());
    }
    let stats = core.stats();
    assert_eq!(stats.served_requests, 24);
    assert_lossless(&stats);
    core.close();
}
