//! Two differently-configured serving cores in one process.
//!
//! The runtime-config layer is per-core, not process-global: each
//! [`ServeCore`] carries its own resolved [`ServeConfig`] (built here
//! from explicit [`EddeConfig`] values, never the environment), so two
//! tenants with different queue bounds and batch shapes coexist without
//! cross-talk — one tenant's overload does not shed the other's
//! traffic, and each core batches to its own `max_batch_rows`.

use edde_core::{EddeConfig, FrozenEnsemble};
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_serve::{
    Priority, ServeConfig, ServeCore, ServeError, ServeFaultPlan, StepOutcome, SubmitOptions,
    TestClock,
};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn member(seed: u64) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[4, 8, 3], 0.0, &mut r)
}

fn frozen(seeds: &[u64]) -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    for (i, &s) in seeds.iter().enumerate() {
        f.push(Arc::new(member(s)), 1.0 + i as f32 * 0.5, format!("m{i}"));
    }
    f
}

fn features(rows: usize, tag: u64) -> Tensor {
    let mut t = Tensor::zeros(&[rows, 4]);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        *v = ((tag * 31 + i as u64) % 17) as f32 * 0.25 - 2.0;
    }
    t
}

/// A manual-drain core tuned by an explicit [`EddeConfig`] — the
/// config-to-core path every tenant uses, minus worker threads so the
/// test drains deterministically.
fn tenant_core(config: &EddeConfig) -> ServeCore {
    let serve_config = ServeConfig {
        workers: 0,
        batch_deadline: Duration::ZERO,
        ..ServeConfig::from_config(config)
    };
    ServeCore::with_parts(
        frozen(&[1, 2]),
        serve_config,
        Arc::new(TestClock::new()),
        ServeFaultPlan::new(),
    )
}

#[test]
fn two_cores_keep_independent_queue_bounds_and_batch_shapes() {
    // Tenant A: tiny queue, tiny batches. Tenant B: roomy on both axes.
    let a = tenant_core(&EddeConfig::builder().serve_queue(2).eval_batch(2).resolve());
    let b = tenant_core(
        &EddeConfig::builder()
            .serve_queue(8)
            .eval_batch(100)
            .resolve(),
    );

    // Fill A to capacity; its third submit is shed at admission...
    for tag in 0..2 {
        a.submit(features(1, tag), SubmitOptions::new()).unwrap();
    }
    match a.submit(features(1, 9), SubmitOptions::new()) {
        Err(ServeError::Overloaded { depth, capacity }) => assert_eq!((depth, capacity), (2, 2)),
        other => panic!("expected Overloaded on tenant A, got {other:?}"),
    }
    // ...while B, in the same process at the same moment, keeps admitting.
    let mut b_handles = Vec::new();
    for tag in 0..6 {
        b_handles.push(b.submit(features(1, tag), SubmitOptions::new()).unwrap());
    }

    // A batches to its own max_batch_rows=2; one step serves both rows.
    match a.step() {
        StepOutcome::Served { requests, rows } => assert_eq!((requests, rows), (2, 2)),
        other => panic!("expected tenant A to serve 2, got {other:?}"),
    }
    // B coalesces all six pending rows into one batch (its limit is 100).
    match b.step() {
        StepOutcome::Served { requests, rows } => assert_eq!((requests, rows), (6, 6)),
        other => panic!("expected tenant B to serve 6, got {other:?}"),
    }

    // Neither core saw the other's traffic.
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(sa.admitted, 2);
    assert_eq!(sa.served_requests, 2);
    assert_eq!(sb.admitted, 6);
    assert_eq!(sb.served_requests, 6);
    assert_eq!(sb.expired_in_queue + sb.failed + sb.closed_unserved, 0);

    // And the differently-batched tenants still agree bit-for-bit with
    // the reference ensemble (batch shape never affects results).
    let reference = frozen(&[1, 2]);
    for (tag, h) in b_handles.into_iter().enumerate() {
        let p = h.wait().unwrap();
        let expect = reference.soft_targets(&features(1, tag as u64)).unwrap();
        assert_eq!(p.soft_targets.data(), expect.data(), "tenant B tag {tag}");
    }
}

#[test]
fn concurrent_tenants_do_not_cross_talk_under_load() {
    // Drive both tenants from threads while each core's own drain runs in
    // a third and fourth thread. Different queue bounds, different batch
    // shapes, shared process — per-request results must still match the
    // reference ensemble exactly, and each core's accounting must close
    // over its own traffic only.
    let a = Arc::new(tenant_core(
        &EddeConfig::builder()
            .serve_queue(64)
            .eval_batch(3)
            .resolve(),
    ));
    let b = Arc::new(tenant_core(
        &EddeConfig::builder()
            .serve_queue(64)
            .eval_batch(32)
            .resolve(),
    ));
    let reference = frozen(&[1, 2]);
    let per_tenant = 40usize;

    std::thread::scope(|s| {
        for core in [&a, &b] {
            let core = Arc::clone(core);
            s.spawn(move || {
                for _ in 0..2000 {
                    if matches!(core.step(), StepOutcome::Idle) {
                        std::thread::yield_now();
                    }
                }
            });
        }
        let submit = |core: &Arc<ServeCore>, salt: u64| {
            let core = Arc::clone(core);
            s.spawn(move || {
                let mut handles = Vec::new();
                for tag in 0..per_tenant as u64 {
                    let opts = SubmitOptions::new().with_priority(Priority::High);
                    handles.push((tag, core.submit(features(2, salt + tag), opts).unwrap()));
                }
                handles
                    .into_iter()
                    .map(|(tag, h)| (tag, h.wait().unwrap()))
                    .collect::<Vec<_>>()
            })
        };
        let ja = submit(&a, 1000);
        let jb = submit(&b, 2000);
        for (salt, done) in [(1000u64, ja.join().unwrap()), (2000, jb.join().unwrap())] {
            for (tag, p) in done {
                let expect = reference.soft_targets(&features(2, salt + tag)).unwrap();
                assert_eq!(
                    p.soft_targets.data(),
                    expect.data(),
                    "salt {salt} tag {tag}"
                );
            }
        }
    });

    for (name, stats) in [("A", a.stats()), ("B", b.stats())] {
        assert_eq!(stats.admitted, per_tenant as u64, "tenant {name}");
        assert_eq!(stats.served_requests, per_tenant as u64, "tenant {name}");
        assert_eq!(stats.depth, 0, "tenant {name}");
    }
}
