//! Stream-fed evaluation through the serving core: accuracy parity with
//! the offline fold, determinism in manual mode, worker-mode operation,
//! and hot-swap visibility mid-stream via the report's epoch span.

use edde_core::stream::stream_accuracy;
use edde_core::FrozenEnsemble;
use edde_data::stream::{DatasetStream, GaussianStream};
use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_serve::{ServeConfig, ServeCore, SubmitOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn member(seed: u64) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[6, 12, 3], 0.0, &mut r)
}

fn frozen(seeds: &[u64]) -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    for (i, &s) in seeds.iter().enumerate() {
        f.push(Arc::new(member(s)), 1.0 + i as f32 * 0.5, format!("m{i}"));
    }
    f
}

fn blob_config() -> GaussianBlobsConfig {
    GaussianBlobsConfig {
        classes: 3,
        dim: 6,
        train_per_class: 10,
        test_per_class: 17,
        spread: 0.7,
    }
}

#[test]
fn served_stream_accuracy_matches_the_offline_fold() {
    let ensemble = frozen(&[1, 2, 3]);
    let test = gaussian_blobs(&blob_config(), 3).test;
    let mut offline_src = DatasetStream::sequential(&test, 5);
    let offline = stream_accuracy(&ensemble, &mut offline_src).unwrap();

    let core = ServeCore::new(frozen(&[1, 2, 3]), ServeConfig::manual());
    let mut src = DatasetStream::sequential(&test, 5);
    let report = core.serve_stream(&mut src, &SubmitOptions::new()).unwrap();
    assert_eq!(report.rows, test.len());
    assert_eq!(report.batches, test.len().div_ceil(5));
    assert_eq!(report.accuracy.to_bits(), offline.to_bits());
    assert_eq!(report.first_epoch, report.last_epoch);
    assert!(report.peak_batch_bytes > 0);
    core.close();
}

#[test]
fn served_stream_works_with_background_workers() {
    let ensemble = frozen(&[4, 5]);
    let test = gaussian_blobs(&blob_config(), 9).test;
    let mut offline_src = DatasetStream::sequential(&test, 8);
    let offline = stream_accuracy(&ensemble, &mut offline_src).unwrap();

    let core = ServeCore::new(
        frozen(&[4, 5]),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let mut src = DatasetStream::sequential(&test, 8);
    let report = core
        .serve_stream(
            &mut src,
            &SubmitOptions::new().with_timeout(Duration::from_secs(30)),
        )
        .unwrap();
    assert_eq!(report.accuracy.to_bits(), offline.to_bits());
    core.close();
}

#[test]
fn hot_swap_mid_stream_is_visible_in_the_epoch_span() {
    let test = gaussian_blobs(&blob_config(), 21).test;
    let core = ServeCore::new(frozen(&[1, 2]), ServeConfig::manual());

    // first pass on epoch 0
    let mut src = DatasetStream::sequential(&test, 17);
    let before = core.serve_stream(&mut src, &SubmitOptions::new()).unwrap();
    assert_eq!((before.first_epoch, before.last_epoch), (0, 0));

    core.swap_in(frozen(&[7, 8])).unwrap();

    // second pass scores entirely on the swapped bundle
    let mut src = DatasetStream::sequential(&test, 17);
    let after = core.serve_stream(&mut src, &SubmitOptions::new()).unwrap();
    assert_eq!((after.first_epoch, after.last_epoch), (1, 1));
    core.close();
}

#[test]
fn unbounded_synthetic_streams_serve_in_fixed_memory() {
    let core = ServeCore::new(frozen(&[1, 2]), ServeConfig::manual());
    let cfg = blob_config();
    let peak_of = |samples: usize| {
        let mut src = GaussianStream::new(&cfg, 13, samples, 32);
        core.serve_stream(&mut src, &SubmitOptions::new())
            .unwrap()
            .peak_batch_bytes
    };
    let short = peak_of(320);
    let long = peak_of(3_200);
    assert_eq!(short, long, "peak bytes must not grow with stream length");
    core.close();
}

#[test]
fn empty_stream_is_a_typed_error() {
    let core = ServeCore::new(frozen(&[1]), ServeConfig::manual());
    let cfg = blob_config();
    let mut src = GaussianStream::new(&cfg, 13, 0, 32);
    assert!(core.serve_stream(&mut src, &SubmitOptions::new()).is_err());
    core.close();
}
