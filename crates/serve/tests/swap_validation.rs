//! Pre-decode swap validation: a candidate whose member count (and hence
//! its α vector length) differs from the live configuration is rejected
//! from the bundle header alone — no member state is decompressed,
//! dequantized, or built — and the live ensemble keeps serving.

use edde_core::{
    BundleCodec, BundleError, EnsembleError, FaultPlan, FaultyStore, FrozenEnsemble, NetworkBuilder,
};
use edde_nn::checkpoint::{CheckpointStore, MemStore};
use edde_nn::chunkstore::{self, ChunkError};
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_serve::{ServeConfig, ServeCore, ServeError, ServeFaultPlan, SubmitOptions, TestClock};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn member(seed: u64) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[40, 40, 3], 0.0, &mut r)
}

fn frozen(seeds: &[u64]) -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    for (i, &s) in seeds.iter().enumerate() {
        f.push(Arc::new(member(s)), 1.0, format!("m{i}"));
    }
    f
}

fn core_with(seeds: &[u64]) -> ServeCore {
    ServeCore::with_parts(
        frozen(seeds),
        ServeConfig::manual(),
        Arc::new(TestClock::new()),
        ServeFaultPlan::new(),
    )
}

#[test]
fn member_count_mismatch_is_rejected_before_any_member_decode() {
    let core = core_with(&[1, 2]);
    let store = MemStore::new();
    frozen(&[3, 4, 5]).save_bundle(&store, "three").unwrap();
    frozen(&[6]).save_bundle(&store, "one").unwrap();

    // The builder panicking proves the rejection came from the header
    // peek: member decode for an f32 bundle cannot proceed without it.
    let build = |_: &str, _: usize| -> edde_core::Result<Network> {
        panic!("member count must be rejected before any member is decoded")
    };
    for (key, got) in [("three", 3), ("one", 1)] {
        match core.swap_bundle(&store, key, &build) {
            Err(ServeError::SwapRejected(EnsembleError::Bundle(
                BundleError::MemberCountMismatch { expected, got: g },
            ))) => assert_eq!((expected, g), (2, got), "{key}"),
            other => panic!("expected MemberCountMismatch for {key}, got {other:?}"),
        }
    }
    let stats = core.stats();
    assert_eq!(stats.swaps, 0);
    assert_eq!(stats.swaps_rejected, 2);

    // The live pair keeps serving bit-identically at epoch 0.
    let x = Tensor::ones(&[2, 40]);
    let h = core.submit(x.clone(), SubmitOptions::new()).unwrap();
    core.step();
    let p = h.wait().unwrap();
    assert_eq!(p.epoch, 0);
    assert_eq!(
        p.soft_targets.data(),
        frozen(&[1, 2]).soft_targets(&x).unwrap().data()
    );
}

#[test]
fn direct_swap_in_also_checks_member_count() {
    let core = core_with(&[1, 2]);
    match core.swap_in(frozen(&[7, 8, 9])) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(
            BundleError::MemberCountMismatch {
                expected: 2,
                got: 3,
            },
        ))) => {}
        other => panic!("expected MemberCountMismatch, got {other:?}"),
    }
    assert_eq!(core.stats().swaps_rejected, 1);
}

#[test]
fn matching_quantized_candidate_swaps_in_cleanly() {
    let core = core_with(&[1, 2]);
    let store = MemStore::new();
    frozen(&[3, 4])
        .save_bundle_with(&store, "q", &BundleCodec::int8())
        .unwrap();
    let build = |_: &str, _: usize| -> edde_core::Result<Network> {
        panic!("a fully int8 bundle loads natively, without a builder")
    };
    let report = core.swap_bundle(&store, "q", &build).unwrap();
    assert_eq!(report.new_epoch, 1);
    assert_eq!(core.stats().swaps, 1);

    // The quantized bundle serves through the same submit/step path.
    let x = Tensor::ones(&[2, 40]);
    let h = core.submit(x.clone(), SubmitOptions::new()).unwrap();
    core.step();
    let p = h.wait().unwrap();
    assert_eq!(p.epoch, 1);
    let float = frozen(&[3, 4]).soft_targets(&x).unwrap();
    for (a, b) in p.soft_targets.data().iter().zip(float.data()) {
        assert!((a - b).abs() < 0.05, "quantized {a} vs float {b}");
    }
}

#[test]
fn whole_blob_count_mismatch_costs_one_range_read() {
    // Pin the get_range fast path: with a store that fails its *second*
    // read, a wrong-count candidate must still be rejected with the typed
    // mismatch — proving the rejection came from the single 32-byte range
    // peek, never reaching the full-blob get.
    let core = core_with(&[1, 2]);
    let inner = MemStore::new();
    frozen(&[3, 4, 5]).save_bundle(&inner, "three").unwrap();
    let store = FaultyStore::new(inner, FaultPlan::fail_get(1));
    let build = |_: &str, _: usize| -> edde_core::Result<Network> {
        panic!("rejected candidates must not be decoded")
    };
    match core.swap_bundle(&store, "three", &build) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(
            BundleError::MemberCountMismatch {
                expected: 2,
                got: 3,
            },
        ))) => {}
        other => panic!("expected MemberCountMismatch from the peek, got {other:?}"),
    }
    assert_eq!(core.stats().swaps_rejected, 1);
}

fn sharded_build(classes: usize) -> NetworkBuilder {
    Arc::new(move |arch: &str, num_classes: usize| match arch {
        "mlp-2" => {
            let mut r = StdRng::seed_from_u64(0);
            Ok(mlp(&[40, 40, num_classes], 0.0, &mut r))
        }
        other => Err(EnsembleError::BadConfig(format!(
            "unknown arch {other:?} ({classes} classes live)"
        ))),
    })
}

#[test]
fn sharded_swap_validates_from_index_records_alone() {
    let core = core_with(&[1, 2]);
    let x = Tensor::ones(&[2, 40]);
    let live = frozen(&[1, 2]).soft_targets(&x).unwrap();

    // A panicking builder proves every rejection below happened on the
    // root record (and the member indexes embedded in it) alone — no
    // chunk was decoded into a member.
    let no_decode: NetworkBuilder =
        Arc::new(|_, _| panic!("structural rejection must precede chunk decode"));

    // Wrong member count.
    let store = Arc::new(MemStore::new());
    frozen(&[3, 4, 5])
        .save_bundle_sharded(store.as_ref(), "root")
        .unwrap();
    match core.swap_sharded(store, "root", no_decode.clone()) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(
            BundleError::MemberCountMismatch {
                expected: 2,
                got: 3,
            },
        ))) => {}
        other => panic!("expected MemberCountMismatch, got {other:?}"),
    }

    // Wrong output class count (right member count).
    let mut wide = FrozenEnsemble::new();
    for seed in [7u64, 8] {
        let mut r = StdRng::seed_from_u64(seed);
        wide.push(Arc::new(mlp(&[40, 40, 5], 0.0, &mut r)), 1.0, "w");
    }
    let store = Arc::new(MemStore::new());
    wide.save_bundle_sharded(store.as_ref(), "root").unwrap();
    match core.swap_sharded(store, "root", no_decode) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(BundleError::ArchMismatch {
            expected: 3,
            got: 5,
            ..
        }))) => {}
        other => panic!("expected ArchMismatch, got {other:?}"),
    }

    // A structurally valid candidate with a missing chunk: rejected with
    // the precise chunk-level cause, only at materialization time.
    let store = Arc::new(MemStore::new());
    frozen(&[3, 4])
        .save_bundle_sharded(store.as_ref(), "root")
        .unwrap();
    store.remove(&chunkstore::chunk_key(0, 0, 0)).unwrap();
    match core.swap_sharded(store, "root", sharded_build(3)) {
        Err(ServeError::SwapRejected(EnsembleError::Bundle(BundleError::Chunk(
            ChunkError::MissingChunk { .. },
        )))) => {}
        other => panic!("expected Chunk(MissingChunk), got {other:?}"),
    }

    // Every rejection counted; the live pair keeps serving, bit for bit.
    let stats = core.stats();
    assert_eq!(stats.swaps, 0);
    assert_eq!(stats.swaps_rejected, 3);
    let h = core.submit(x.clone(), SubmitOptions::new()).unwrap();
    core.step();
    let p = h.wait().unwrap();
    assert_eq!(p.epoch, 0);
    assert_eq!(p.soft_targets.data(), live.data());
}

#[test]
fn matching_sharded_candidate_swaps_in_and_serves() {
    let core = core_with(&[1, 2]);
    let store = Arc::new(MemStore::new());
    frozen(&[3, 4])
        .save_bundle_sharded(store.as_ref(), "root")
        .unwrap();
    let report = core.swap_sharded(store, "root", sharded_build(3)).unwrap();
    assert_eq!(report.new_epoch, 1);
    let stats = core.stats();
    assert_eq!((stats.swaps, stats.swaps_rejected), (1, 0));

    let x = Tensor::ones(&[2, 40]);
    let h = core.submit(x.clone(), SubmitOptions::new()).unwrap();
    core.step();
    let p = h.wait().unwrap();
    assert_eq!(p.epoch, 1);
    assert_eq!(
        p.soft_targets.data(),
        frozen(&[3, 4]).soft_targets(&x).unwrap().data()
    );
}
