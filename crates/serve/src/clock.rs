//! Time source abstraction so deadline and latency behaviour is
//! deterministic under test.
//!
//! All serving timestamps are a [`Duration`] since the clock's origin.
//! Production uses [`MonotonicClock`] ([`std::time::Instant`] under the
//! hood); tests use [`TestClock`], which only moves when explicitly
//! advanced — a queue-full-of-expired-requests scenario is then a plain
//! sequence of calls, not a sleep race.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source. `advance` is a test hook: the production
/// clock ignores it, the test clock moves by exactly that amount.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Advances the clock (deterministic fault schedules use this to
    /// model slow batches); no-op on real clocks.
    fn advance(&self, _by: Duration) {}
}

/// Wall-clock time via [`Instant`], origin at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually driven clock for deterministic tests: starts at zero and
/// moves only via [`Clock::advance`]. Shared freely across threads.
#[derive(Debug, Default)]
pub struct TestClock {
    micros: AtomicU64,
}

impl TestClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        TestClock::default()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::SeqCst))
    }

    fn advance(&self, by: Duration) {
        self.micros
            .fetch_add(by.as_micros() as u64, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_moves_only_when_advanced() {
        let c = TestClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        c.advance(Duration::from_micros(3));
        assert_eq!(c.now(), Duration::from_micros(5003));
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = MonotonicClock::new();
        let a = c.now();
        c.advance(Duration::from_secs(100)); // no-op on the real clock
        let b = c.now();
        assert!(b >= a);
        assert!(b < Duration::from_secs(100));
    }
}
