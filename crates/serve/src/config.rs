//! Serving-core configuration.

use edde_core::EddeConfig;
use std::time::Duration;

/// Tuning knobs for a [`crate::ServeCore`]. [`ServeConfig::from_env`]
/// reads the `EDDE_SERVE_*` environment variables (each validated by
/// [`edde_core::env_usize`] — zero or garbage values warn and fall back
/// to the documented default); [`Default`] ignores the environment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum queued requests (`EDDE_SERVE_QUEUE`, default 256). The
    /// submission queue is strictly bounded: request number
    /// `queue_capacity + 1` is rejected with
    /// [`crate::ServeError::Overloaded`], never buffered.
    pub queue_capacity: usize,
    /// Maximum rows coalesced into one batch. Defaults to
    /// [`edde_core::eval_batch`] (`EDDE_EVAL_BATCH`), so serving batches
    /// line up with the evaluation chunking the kernels are tuned for. A
    /// single request larger than this still runs, as its own batch.
    pub max_batch_rows: usize,
    /// How long a worker waits for more requests to coalesce once it has
    /// at least one (`EDDE_SERVE_BATCH_DEADLINE_US`, default 2000 µs).
    /// First of {`max_batch_rows` reached, deadline hit} dispatches the
    /// batch. Shrinks to zero under pressure (see
    /// [`ServeConfig::pressure_batch_cut`]).
    pub batch_deadline: Duration,
    /// Worker threads draining the queue (`EDDE_SERVE_WORKERS`, default
    /// 1). `0` is manual mode — nothing is drained until the caller
    /// invokes [`crate::ServeCore::step`], which is what the
    /// deterministic tests use; it cannot be selected from the
    /// environment.
    pub workers: usize,
    /// Queue-fill fraction at which the batching deadline collapses to
    /// zero — under pressure, ship what's there instead of waiting to
    /// coalesce. Default 0.5.
    pub pressure_batch_cut: f64,
    /// Queue-fill fraction at which [`crate::Priority::Low`] traffic is
    /// shed at admission. Default 0.75.
    pub shed_low_pressure: f64,
    /// Queue-fill fraction at which [`crate::Priority::Normal`] traffic
    /// is also shed; only [`crate::Priority::High`] is admitted past
    /// this point. Default 0.9.
    pub shed_normal_pressure: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_batch_rows: 256,
            batch_deadline: Duration::from_micros(2000),
            workers: 1,
            pressure_batch_cut: 0.5,
            shed_low_pressure: 0.75,
            shed_normal_pressure: 0.9,
        }
    }
}

impl ServeConfig {
    /// Serving view of a resolved [`EddeConfig`]: `serve_queue`,
    /// `eval_batch` (serving batches line up with the evaluation chunking
    /// the kernels are tuned for), `serve_batch_deadline_us`, and
    /// `serve_workers`. Two cores built from two different configs in one
    /// process stay independently tuned — nothing here is global.
    pub fn from_config(config: &EddeConfig) -> Self {
        ServeConfig {
            queue_capacity: config.serve_queue,
            max_batch_rows: config.eval_batch,
            batch_deadline: Duration::from_micros(config.serve_batch_deadline_us as u64),
            workers: config.serve_workers,
            ..ServeConfig::default()
        }
    }

    /// Reads `EDDE_SERVE_QUEUE`, `EDDE_EVAL_BATCH`,
    /// `EDDE_SERVE_BATCH_DEADLINE_US`, and `EDDE_SERVE_WORKERS`, with
    /// the defaults above for anything unset or invalid — i.e.
    /// [`ServeConfig::from_config`] over [`EddeConfig::from_env`].
    pub fn from_env() -> Self {
        ServeConfig::from_config(&EddeConfig::from_env())
    }

    /// Manual-drain configuration for deterministic tests: no worker
    /// threads, no coalescing wait.
    pub fn manual() -> Self {
        ServeConfig {
            workers: 0,
            batch_deadline: Duration::ZERO,
            ..ServeConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_falls_back_on_garbage() {
        // dedicated vars are process-global; pick ones no other test sets
        std::env::set_var("EDDE_SERVE_QUEUE", "lots");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.queue_capacity, 256);
        std::env::set_var("EDDE_SERVE_QUEUE", "8");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.queue_capacity, 8);
        std::env::remove_var("EDDE_SERVE_QUEUE");
    }

    #[test]
    fn from_config_maps_the_serving_knobs() {
        let cfg = ServeConfig::from_config(
            &EddeConfig::builder()
                .serve_queue(9)
                .eval_batch(5)
                .serve_batch_deadline_us(123)
                .serve_workers(3)
                .resolve(),
        );
        assert_eq!(cfg.queue_capacity, 9);
        assert_eq!(cfg.max_batch_rows, 5);
        assert_eq!(cfg.batch_deadline, Duration::from_micros(123));
        assert_eq!(cfg.workers, 3);
        // untouched knobs keep the documented defaults
        assert_eq!(cfg.pressure_batch_cut, 0.5);
    }

    #[test]
    fn manual_mode_has_no_workers() {
        let cfg = ServeConfig::manual();
        assert_eq!(cfg.workers, 0);
        assert_eq!(cfg.batch_deadline, Duration::ZERO);
    }
}
