//! The serving error taxonomy.
//!
//! Every way a request can fail to produce a prediction is a distinct
//! typed variant — the core never panics on load and never drops a
//! request silently: a request that is admitted is resolved exactly once,
//! with either a prediction or one of these errors.

use edde_core::EnsembleError;
use std::fmt;

/// Relative urgency of a request, used by the admission-time shed tiers:
/// under rising queue pressure the core sheds [`Priority::Low`] traffic
/// first, then [`Priority::Normal`], keeping [`Priority::High`] admissible
/// until the queue is actually full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Best-effort traffic; first to be shed under pressure.
    Low,
    /// Ordinary traffic.
    #[default]
    Normal,
    /// Latency-critical traffic; only rejected when the queue is full.
    High,
}

/// Where a request's deadline was found to be expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// Expired before the request entered the queue — rejected up front
    /// rather than buffered as dead weight.
    Admission,
    /// Expired while queued — shed at dequeue instead of wasting batch
    /// capacity on an answer the caller has stopped waiting for.
    Dequeue,
}

/// Why a request (or a hot-swap) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded submission queue was full. Back off and retry; the
    /// core never buffers beyond its configured capacity.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline had already passed at `stage`.
    DeadlineExceeded {
        /// Admission-time or dequeue-time expiry.
        stage: DeadlineStage,
    },
    /// Shed by the graceful-degradation tiers: queue pressure crossed the
    /// threshold for this priority class before the queue was full.
    Shed {
        /// The priority class the request was submitted with.
        priority: Priority,
    },
    /// The request's feature rows do not match the shape this core is
    /// serving (trailing dimensions must agree so requests can share a
    /// batch).
    ShapeMismatch {
        /// Row shape (dims after the leading batch dim) the core serves.
        expected: Vec<usize>,
        /// Row shape of the rejected request.
        got: Vec<usize>,
    },
    /// The core was shut down before the request could be served.
    Closed,
    /// The ensemble itself failed on the batch containing this request.
    Predict(EnsembleError),
    /// A hot-swap candidate was rejected (corrupt bundle, arch mismatch,
    /// empty ensemble). The previously served ensemble is untouched.
    SwapRejected(EnsembleError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue at {depth}/{capacity}")
            }
            ServeError::DeadlineExceeded { stage } => match stage {
                DeadlineStage::Admission => write!(f, "deadline exceeded at admission"),
                DeadlineStage::Dequeue => write!(f, "deadline exceeded in queue"),
            },
            ServeError::Shed { priority } => {
                write!(f, "shed under pressure (priority {priority:?})")
            }
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "row shape mismatch: serving {expected:?}, got {got:?}")
            }
            ServeError::Closed => write!(f, "serving core closed"),
            ServeError::Predict(e) => write!(f, "prediction failed: {e}"),
            ServeError::SwapRejected(e) => write!(f, "swap candidate rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Predict(e) | ServeError::SwapRejected(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn display_names_the_cause() {
        let e = ServeError::Overloaded {
            depth: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("8/8"));
        let d = ServeError::DeadlineExceeded {
            stage: DeadlineStage::Dequeue,
        };
        assert!(d.to_string().contains("queue"));
    }
}
