//! Stream-fed evaluation through the serving core.
//!
//! [`ServeCore::serve_stream`] pulls batches from any
//! [`edde_data::stream::BatchSource`] and pushes them through the normal
//! admission → coalesce → predict pipeline, folding accuracy in fixed
//! memory. Because every batch rides the same swap-aware path as live
//! traffic, a lazily-sharded bundle can be *evaluated while it
//! materializes*, and a hot-swap mid-stream simply means later batches
//! score on the new epoch — the report records the epoch span it saw.

use crate::engine::{ServeCore, SubmitOptions};
use crate::error::ServeError;
use edde_core::EnsembleError;
use edde_data::stream::BatchSource;

/// What one streamed evaluation pass through the core produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Rows scored.
    pub rows: usize,
    /// Stream batches submitted.
    pub batches: usize,
    /// Fraction of rows whose served argmax matched the stream label.
    pub accuracy: f32,
    /// Peak resident bytes per scored batch (features + served soft
    /// targets) — independent of stream length.
    pub peak_batch_bytes: usize,
    /// Bundle epoch of the first scored batch.
    pub first_epoch: u64,
    /// Bundle epoch of the last scored batch (differs from
    /// `first_epoch` when a hot-swap landed mid-stream).
    pub last_epoch: u64,
}

impl ServeCore {
    /// Streams `src` through the serving pipeline, scoring each served
    /// prediction against the stream's labels. Works in both drain
    /// modes: with workers the handles resolve in the background; in
    /// manual mode ([`crate::ServeConfig::manual`]) this method pumps
    /// [`ServeCore::step`] itself, so the pass is deterministic.
    ///
    /// Memory is `O(one batch)`: exactly one request is in flight at a
    /// time, and each batch is dropped once its prediction is folded.
    pub fn serve_stream(
        &self,
        src: &mut dyn BatchSource,
        opts: &SubmitOptions,
    ) -> Result<StreamReport, ServeError> {
        let mut correct = 0usize;
        let mut rows = 0usize;
        let mut batches = 0usize;
        let mut peak = 0usize;
        let mut first_epoch = None;
        let mut last_epoch = 0u64;
        while let Some(batch) = src.next_batch() {
            let feat_len = batch.features.data().len();
            let labels = batch.labels;
            let handle = self.submit(batch.features, opts.clone())?;
            // Pump + poll resolves the handle in every drain mode: in
            // manual mode `step` is the only pump; with workers the poll
            // usually wins before `step` finds anything queued.
            let prediction = loop {
                if let Some(result) = handle.try_take() {
                    break result?;
                }
                self.step();
            };
            correct += prediction
                .classes
                .iter()
                .zip(&labels)
                .filter(|(p, y)| p == y)
                .count();
            rows += labels.len();
            peak = peak.max(
                (feat_len + prediction.soft_targets.data().len()) * std::mem::size_of::<f32>(),
            );
            first_epoch.get_or_insert(prediction.epoch);
            last_epoch = prediction.epoch;
            batches += 1;
        }
        if rows == 0 {
            return Err(ServeError::Predict(EnsembleError::DataMismatch(
                "empty evaluation stream".into(),
            )));
        }
        Ok(StreamReport {
            rows,
            batches,
            accuracy: correct as f32 / rows as f32,
            peak_batch_bytes: peak,
            first_epoch: first_epoch.unwrap_or(0),
            last_epoch,
        })
    }
}
