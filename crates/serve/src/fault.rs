//! Deterministic fault schedules for the serving core, in the same
//! shared-atomic-plan style as [`edde_core::FaultPlan`]: a test builds a
//! plan, hands a clone to the core, and the scheduled faults fire at
//! exact batch indices — no sleeps, no timing races.

use crate::clock::Clock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Inner {
    /// batch index → how far to advance the core's clock before that
    /// batch executes (models a slow member / stalled kernel).
    slow_batches: Mutex<HashMap<u64, Duration>>,
    batches_seen: AtomicU64,
}

/// A deterministic schedule of serving faults, shared between a test and
/// the [`crate::ServeCore`] under test. Cloning shares the plan.
#[derive(Clone, Default)]
pub struct ServeFaultPlan {
    inner: Arc<Inner>,
}

impl ServeFaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        ServeFaultPlan::default()
    }

    /// Before batch number `index` (0-based, in execution order) runs,
    /// advance the core's clock by `stall` — queued requests whose
    /// deadlines fall inside the stall will be expired at dequeue.
    pub fn slow_batch_at(self, index: u64, stall: Duration) -> Self {
        self.inner.slow_batches.lock().unwrap().insert(index, stall);
        self
    }

    /// Number of batches the core has started under this plan.
    pub fn batches_seen(&self) -> u64 {
        self.inner.batches_seen.load(Ordering::SeqCst)
    }

    /// Called by the core as each batch begins; applies any scheduled
    /// stall to `clock`.
    pub(crate) fn on_batch_start(&self, clock: &dyn Clock) {
        let index = self.inner.batches_seen.fetch_add(1, Ordering::SeqCst);
        if let Some(stall) = self.inner.slow_batches.lock().unwrap().get(&index) {
            clock.advance(*stall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn stalls_fire_at_their_batch_index_only() {
        let clock = TestClock::new();
        let plan = ServeFaultPlan::new().slow_batch_at(1, Duration::from_millis(10));
        plan.on_batch_start(&clock); // batch 0: no stall
        assert_eq!(clock.now(), Duration::ZERO);
        plan.on_batch_start(&clock); // batch 1: stall
        assert_eq!(clock.now(), Duration::from_millis(10));
        plan.on_batch_start(&clock); // batch 2: no stall
        assert_eq!(clock.now(), Duration::from_millis(10));
        assert_eq!(plan.batches_seen(), 3);
    }

    #[test]
    fn clones_share_the_schedule() {
        let plan = ServeFaultPlan::new();
        let shared = plan.clone().slow_batch_at(0, Duration::from_secs(1));
        let clock = TestClock::new();
        plan.on_batch_start(&clock);
        assert_eq!(clock.now(), Duration::from_secs(1));
        assert_eq!(shared.batches_seen(), 1);
    }
}
