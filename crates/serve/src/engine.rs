//! The serving core: bounded admission, dynamic micro-batching, deadline
//! enforcement, load shedding, and atomic ensemble hot-swap.
//!
//! # Invariants
//!
//! * **Bounded memory.** The submission queue never holds more than
//!   [`ServeConfig::queue_capacity`] requests; everything past that is
//!   rejected at admission with a typed error, never buffered.
//! * **No silent drops.** Every admitted request is resolved exactly
//!   once — with a [`Prediction`] or a [`ServeError`]. The accounting
//!   identity `admitted == served_requests + expired_in_queue + failed +
//!   closed_unserved + depth` holds at every quiescent point.
//! * **No bundle interleaving.** A batch captures one
//!   `Arc<FrozenEnsemble>` and its epoch under the state lock before any
//!   inference runs; a hot-swap mid-batch cannot mix members from two
//!   bundles inside one batch. Every [`Prediction`] carries the epoch it
//!   was computed under.
//! * **Bit-identical results.** Member passes are row-independent and the
//!   α-reduce is serial, so a row's soft target is the same whether it was
//!   served alone or coalesced into a batch — byte-for-byte equal to
//!   calling [`FrozenEnsemble::predict`] directly.
//!
//! # Drain protocol
//!
//! [`ServeCore::swap_in`] flips the epoch pointer and returns a
//! [`SwapReport`] holding a [`Weak`] reference to the retired ensemble.
//! In-flight batches keep their strong `Arc` until they finish, so
//! `report.retired.upgrade().is_none()` is the drain-complete signal.

use crate::clock::{Clock, MonotonicClock};
use crate::config::ServeConfig;
use crate::error::{DeadlineStage, Priority, ServeError};
use crate::fault::ServeFaultPlan;
use edde_core::FrozenEnsemble;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::Network;
use edde_tensor::parallel::with_inline_dispatch;
use edde_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread;
use std::time::Duration;

/// Per-request submission options: an optional deadline (absolute, in
/// core-clock time, or relative via [`SubmitOptions::with_timeout`]) and
/// a shed-tier [`Priority`].
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Absolute deadline on the core's clock ([`ServeCore::now`]).
    /// Checked at admission and again at dequeue.
    pub deadline: Option<Duration>,
    /// Relative deadline; resolved to `now + timeout` at admission.
    /// Ignored when `deadline` is set.
    pub timeout: Option<Duration>,
    /// Shed tier; defaults to [`Priority::Normal`].
    pub priority: Priority,
}

impl SubmitOptions {
    /// Options with no deadline and normal priority.
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Sets an absolute deadline on the core's clock.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from the moment of admission.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the shed-tier priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A served prediction, with the provenance serving infrastructure needs.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Ensemble soft targets for this request's rows, `[n, classes]`.
    pub soft_targets: Tensor,
    /// Argmax class per row.
    pub classes: Vec<usize>,
    /// Bundle epoch the prediction was computed under (bumped by every
    /// successful hot-swap).
    pub epoch: u64,
    /// Core-clock time the request was admitted.
    pub submitted_at: Duration,
    /// Core-clock time the batch finished.
    pub completed_at: Duration,
    /// Total rows in the batch this request rode in.
    pub batch_rows: usize,
}

impl Prediction {
    /// Queue wait plus inference time for this request.
    pub fn latency(&self) -> Duration {
        self.completed_at.saturating_sub(self.submitted_at)
    }
}

/// Write-once response cell a caller blocks on.
struct ResponseSlot {
    cell: Mutex<Option<Result<Prediction, ServeError>>>,
    done: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            cell: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, result: Result<Prediction, ServeError>) {
        let mut cell = self.cell.lock().unwrap();
        debug_assert!(cell.is_none(), "response slot resolved twice");
        *cell = Some(result);
        self.done.notify_all();
    }
}

/// The caller's side of an admitted request.
pub struct Handle {
    slot: Arc<ResponseSlot>,
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handle")
            .field("resolved", &self.slot.cell.lock().unwrap().is_some())
            .finish()
    }
}

impl Handle {
    /// Blocks until the request resolves. In manual mode
    /// ([`ServeConfig::workers`]` == 0`) drive [`ServeCore::step`] first —
    /// nothing resolves on its own.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        let mut cell = self.slot.cell.lock().unwrap();
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = self.slot.done.wait(cell).unwrap();
        }
    }

    /// Takes the result if the request has already resolved.
    pub fn try_take(&self) -> Option<Result<Prediction, ServeError>> {
        self.slot.cell.lock().unwrap().take()
    }
}

/// Counters describing everything the core has done. Read via
/// [`ServeCore::stats`]; `depth` is the queue depth at the moment of the
/// snapshot, every other field is a monotone counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Requests rejected with an already-expired deadline.
    pub rejected_deadline: u64,
    /// Requests rejected for a row-shape mismatch.
    pub rejected_shape: u64,
    /// Requests shed by the pressure tiers.
    pub shed: u64,
    /// Admitted requests whose deadline expired before dequeue.
    pub expired_in_queue: u64,
    /// Requests resolved with a prediction.
    pub served_requests: u64,
    /// Rows across all served requests.
    pub served_rows: u64,
    /// Admitted requests resolved with a prediction error.
    pub failed: u64,
    /// Admitted requests resolved with [`ServeError::Closed`] at shutdown.
    pub closed_unserved: u64,
    /// Batches executed.
    pub batches: u64,
    /// Successful hot-swaps.
    pub swaps: u64,
    /// Rejected hot-swap candidates.
    pub swaps_rejected: u64,
    /// Queue depth when the snapshot was taken.
    pub depth: u64,
}

/// Outcome of a successful [`ServeCore::swap_in`].
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// Epoch that was serving before the swap.
    pub old_epoch: u64,
    /// Epoch now serving.
    pub new_epoch: u64,
    /// The retired ensemble, weakly held: once every in-flight batch on
    /// the old bundle completes, `retired.upgrade()` returns `None` —
    /// the drain-complete signal.
    pub retired: Weak<FrozenEnsemble>,
}

/// What one [`ServeCore::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Nothing serviceable was queued.
    Idle,
    /// A batch ran.
    Served {
        /// Requests resolved by the batch.
        requests: usize,
        /// Total rows in the batch.
        rows: usize,
    },
}

struct Pending {
    features: Tensor,
    rows: usize,
    deadline: Option<Duration>,
    slot: Arc<ResponseSlot>,
    submitted_at: Duration,
}

struct State {
    queue: VecDeque<Pending>,
    closed: bool,
    /// Trailing (per-row) dims of the first admitted request; later
    /// requests must match so any subset can share a batch.
    row_dims: Option<Vec<usize>>,
    ensemble: Arc<FrozenEnsemble>,
    epoch: u64,
    stats: ServeStats,
}

struct Shared {
    config: ServeConfig,
    clock: Arc<dyn Clock>,
    fault: ServeFaultPlan,
    state: Mutex<State>,
    submitted: Condvar,
}

/// Overload-safe batched serving on a [`FrozenEnsemble`] — see the
/// module docs for the invariants.
pub struct ServeCore {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ServeCore {
    /// A core serving `ensemble` on the wall clock with no fault plan,
    /// spawning [`ServeConfig::workers`] drain threads.
    pub fn new(ensemble: FrozenEnsemble, config: ServeConfig) -> Self {
        Self::with_parts(
            ensemble,
            config,
            Arc::new(MonotonicClock::new()),
            ServeFaultPlan::new(),
        )
    }

    /// Full-control constructor: inject a [`Clock`] (deterministic tests
    /// pass a [`crate::TestClock`]) and a [`ServeFaultPlan`].
    pub fn with_parts(
        ensemble: FrozenEnsemble,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        fault: ServeFaultPlan,
    ) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch_rows > 0, "max batch rows must be positive");
        let shared = Arc::new(Shared {
            config,
            clock,
            fault,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
                row_dims: None,
                ensemble: Arc::new(ensemble),
                epoch: 0,
                stats: ServeStats::default(),
            }),
            submitted: Condvar::new(),
        });
        let mut workers = Vec::new();
        for i in 0..shared.config.workers {
            let s = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("edde-serve-{i}"))
                .spawn(move || worker_loop(s))
                .expect("failed to spawn serve worker");
            workers.push(handle);
        }
        ServeCore {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The core's clock reading — compute absolute deadlines against this.
    pub fn now(&self) -> Duration {
        self.shared.clock.now()
    }

    /// The bundle epoch currently serving.
    pub fn epoch(&self) -> u64 {
        self.shared.state.lock().unwrap().epoch
    }

    /// The ensemble currently serving (a strong handle; holding it does
    /// not block a swap, only the drain signal).
    pub fn ensemble(&self) -> Arc<FrozenEnsemble> {
        Arc::clone(&self.shared.state.lock().unwrap().ensemble)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.state.lock().unwrap();
        let mut stats = st.stats.clone();
        stats.depth = st.queue.len() as u64;
        stats
    }

    /// Submits `features` (`[n, row...]`, `n ≥ 1`) for ensemble
    /// prediction. Admission applies, in order: closed check, row-shape
    /// check, deadline check (already-expired requests are refused, not
    /// buffered), queue-full check, and the pressure shed tiers. On
    /// success the returned [`Handle`] resolves exactly once.
    pub fn submit(&self, features: Tensor, opts: SubmitOptions) -> Result<Handle, ServeError> {
        let dims = features.dims().to_vec();
        let now = self.shared.clock.now();
        let mut st = self.shared.state.lock().unwrap();
        if st.closed {
            return Err(ServeError::Closed);
        }
        if dims.len() < 2 || dims[0] == 0 {
            st.stats.rejected_shape += 1;
            return Err(ServeError::ShapeMismatch {
                expected: st.row_dims.clone().unwrap_or_default(),
                got: dims,
            });
        }
        let row_dims = dims[1..].to_vec();
        if let Some(expected) = st.row_dims.clone() {
            if expected != row_dims {
                st.stats.rejected_shape += 1;
                return Err(ServeError::ShapeMismatch {
                    expected,
                    got: row_dims,
                });
            }
        }
        let deadline = opts.deadline.or_else(|| opts.timeout.map(|t| now + t));
        if deadline.is_some_and(|d| d <= now) {
            st.stats.rejected_deadline += 1;
            return Err(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Admission,
            });
        }
        let capacity = self.shared.config.queue_capacity;
        let depth = st.queue.len();
        if depth >= capacity {
            st.stats.rejected_overloaded += 1;
            return Err(ServeError::Overloaded { depth, capacity });
        }
        let pressure = depth as f64 / capacity as f64;
        let cfg = &self.shared.config;
        let shed = (pressure >= cfg.shed_normal_pressure && opts.priority < Priority::High)
            || (pressure >= cfg.shed_low_pressure && opts.priority == Priority::Low);
        if shed {
            st.stats.shed += 1;
            return Err(ServeError::Shed {
                priority: opts.priority,
            });
        }
        if st.row_dims.is_none() {
            st.row_dims = Some(row_dims);
        }
        let slot = Arc::new(ResponseSlot::new());
        st.queue.push_back(Pending {
            rows: dims[0],
            features,
            deadline,
            slot: Arc::clone(&slot),
            submitted_at: now,
        });
        st.stats.admitted += 1;
        drop(st);
        self.shared.submitted.notify_one();
        Ok(Handle { slot })
    }

    /// Collects one batch without running it: expires dead requests at
    /// the queue head, coalesces whole requests up to
    /// [`ServeConfig::max_batch_rows`], and captures the serving
    /// `Arc<FrozenEnsemble>` + epoch atomically. Returns `None` when
    /// nothing serviceable is queued. Public so deterministic harnesses
    /// can hold a batch in flight across a swap.
    pub fn begin_batch(&self) -> Option<InflightBatch> {
        let mut st = self.shared.state.lock().unwrap();
        collect_batch(&self.shared, &mut st)
    }

    /// Drains one batch synchronously (collect + run). The manual-mode
    /// pump: with [`ServeConfig::workers`]` == 0` this is the only thing
    /// that resolves requests.
    pub fn step(&self) -> StepOutcome {
        match self.begin_batch() {
            None => StepOutcome::Idle,
            Some(batch) => {
                let (requests, rows) = (batch.requests(), batch.rows());
                batch.run();
                StepOutcome::Served { requests, rows }
            }
        }
    }

    /// Atomically replaces the serving ensemble. The candidate is
    /// validated against the live configuration first
    /// ([`FrozenEnsemble::validate_swap`]); a rejected candidate leaves
    /// the current ensemble serving, untouched. In-flight batches finish
    /// on the old bundle — watch [`SwapReport::retired`] for the drain.
    pub fn swap_in(&self, candidate: FrozenEnsemble) -> Result<SwapReport, ServeError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Err(e) = st.ensemble.validate_swap(&candidate) {
            st.stats.swaps_rejected += 1;
            return Err(ServeError::SwapRejected(e));
        }
        let old = std::mem::replace(&mut st.ensemble, Arc::new(candidate));
        let retired = Arc::downgrade(&old);
        drop(old);
        let old_epoch = st.epoch;
        st.epoch += 1;
        st.stats.swaps += 1;
        Ok(SwapReport {
            old_epoch,
            new_epoch: st.epoch,
            retired,
        })
    }

    /// Loads a CRC-sealed bundle (`EEB2`, or legacy `EEB1`) from `store`
    /// and hot-swaps it in. A torn, corrupt, stale-versioned, codec-
    /// rejected, or arch-incompatible bundle is rejected with
    /// [`ServeError::SwapRejected`] carrying the typed cause; serving
    /// continues on the current ensemble uninterrupted.
    ///
    /// Structural incompatibility is caught *before* any member state is
    /// decoded: the bundle header's member count
    /// ([`FrozenEnsemble::peek_member_count`]) is checked against the
    /// live configuration first, so a wrong-shaped candidate costs a
    /// 12-byte peek rather than a full decompress-and-dequantize pass.
    pub fn swap_bundle(
        &self,
        store: &dyn CheckpointStore,
        key: &str,
        build: &dyn Fn(&str, usize) -> edde_core::Result<Network>,
    ) -> Result<SwapReport, ServeError> {
        let reject = |e: edde_core::EnsembleError| {
            self.shared.state.lock().unwrap().stats.swaps_rejected += 1;
            Err(ServeError::SwapRejected(e))
        };
        // Cheap structural pre-check on a 32-byte range read: the `EDC2`
        // frame header (20 bytes) followed by the bundle header (12
        // bytes, with the member count last). A wrong-shaped candidate
        // is rejected on the count alone without transferring the blob.
        // Any irregularity (short file, odd magic, range-read failure)
        // falls through to the full read, so rejection reasons stay
        // precise and the CRC is always verified before a real swap.
        let live = self.shared.state.lock().unwrap().ensemble.len();
        if live > 0 {
            if let Ok(head) = store.get_range(key, 0, 32) {
                if head.len() == 32 && &head[..4] == edde_nn::checkpoint::V2_MAGIC {
                    if let Ok(got) = FrozenEnsemble::peek_member_count(&head[20..32]) {
                        if got != live {
                            return reject(
                                edde_core::BundleError::MemberCountMismatch {
                                    expected: live,
                                    got,
                                }
                                .into(),
                            );
                        }
                    }
                }
            }
        }
        let payload = match store
            .get(key)
            .and_then(edde_nn::checkpoint::unseal)
            .map_err(edde_core::EnsembleError::from)
        {
            Ok(payload) => payload,
            Err(e) => return reject(e),
        };
        let live = self.shared.state.lock().unwrap().ensemble.len();
        match FrozenEnsemble::peek_member_count(&payload) {
            Ok(got) if live > 0 && got != live => {
                return reject(
                    edde_core::BundleError::MemberCountMismatch {
                        expected: live,
                        got,
                    }
                    .into(),
                )
            }
            Ok(_) => {}
            Err(e) => return reject(e),
        }
        let candidate = match FrozenEnsemble::decode(payload, build) {
            Ok(candidate) => candidate,
            Err(e) => return reject(e),
        };
        self.swap_in(candidate)
    }

    /// Opens a sharded bundle (`ESR1` root + per-member `EDS1` index
    /// records) from `store` and hot-swaps it in. Structural validation
    /// — member count and output class count against the live
    /// configuration — runs on the root and index records *alone*: a
    /// wrong-shaped candidate is rejected before a single chunk is read
    /// or decoded. Only a structurally compatible candidate pays the
    /// chunk decode (and any chunk-level corruption then rejects with
    /// the precise [`edde_core::BundleError::Chunk`] cause). A rejected
    /// candidate leaves the live ensemble serving, untouched.
    pub fn swap_sharded(
        &self,
        store: Arc<dyn CheckpointStore>,
        key: &str,
        build: edde_core::NetworkBuilder,
    ) -> Result<SwapReport, ServeError> {
        let reject = |e: edde_core::EnsembleError| {
            self.shared.state.lock().unwrap().stats.swaps_rejected += 1;
            Err(ServeError::SwapRejected(e))
        };
        let sharded = match FrozenEnsemble::open_sharded(store, key, build) {
            Ok(s) => s,
            Err(e) => return reject(e),
        };
        let (live_len, live_classes) = {
            let st = self.shared.state.lock().unwrap();
            (st.ensemble.len(), st.ensemble.num_classes())
        };
        if live_len > 0 && sharded.len() != live_len {
            return reject(
                edde_core::BundleError::MemberCountMismatch {
                    expected: live_len,
                    got: sharded.len(),
                }
                .into(),
            );
        }
        if let (Some(expected), Some(got)) = (live_classes, sharded.num_classes()) {
            if expected != got {
                let arch = sharded
                    .arch_signature()
                    .first()
                    .map(|(a, _)| a.clone())
                    .unwrap_or_default();
                return reject(
                    edde_core::BundleError::ArchMismatch {
                        arch,
                        expected,
                        got,
                    }
                    .into(),
                );
            }
        }
        let candidate = match sharded.materialize() {
            Ok(c) => c,
            Err(e) => return reject(e),
        };
        self.swap_in(candidate)
    }

    /// Shuts the core down: stops admitting, resolves every queued
    /// request with [`ServeError::Closed`] (typed, not dropped), and
    /// joins the workers — in-flight batches finish first. Idempotent.
    pub fn close(&self) {
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        {
            let mut st = self.shared.state.lock().unwrap();
            if !st.closed {
                st.closed = true;
                while let Some(p) = st.queue.pop_front() {
                    st.stats.closed_unserved += 1;
                    p.slot.resolve(Err(ServeError::Closed));
                }
            }
        }
        self.shared.submitted.notify_all();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        self.close();
    }
}

/// A collected batch that has not run yet: it owns its requests and a
/// strong handle on the ensemble + epoch it was collected under, so a
/// swap between collection and [`InflightBatch::run`] does not affect it
/// (and the old bundle cannot drain until it finishes).
pub struct InflightBatch {
    shared: Arc<Shared>,
    ensemble: Arc<FrozenEnsemble>,
    epoch: u64,
    requests: Vec<Pending>,
    rows: usize,
}

impl InflightBatch {
    /// Requests in the batch.
    pub fn requests(&self) -> usize {
        self.requests.len()
    }

    /// Total rows in the batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Epoch the batch was collected under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs the batch and resolves every request in it (prediction or
    /// typed error), then releases the ensemble handle.
    pub fn run(self) {
        let InflightBatch {
            shared,
            ensemble,
            epoch,
            requests,
            rows,
        } = self;
        // Serve workers beyond the first run their member passes inline:
        // caller-level parallelism replaces pool fan-out, so concurrent
        // batches don't contend for the worker pool.
        // Zero env lookups on the hot path: the evaluation batch size is
        // the core's resolved `max_batch_rows`, read from this core's own
        // config rather than the process environment.
        let eval_batch = shared.config.max_batch_rows;
        let result = if shared.config.workers > 1 {
            with_inline_dispatch(|| execute(&ensemble, &requests, rows, eval_batch))
        } else {
            execute(&ensemble, &requests, rows, eval_batch)
        };
        drop(ensemble); // drain signal: release before resolving callers
        let completed_at = shared.clock.now();
        let mut st = shared.state.lock().unwrap();
        match result {
            Ok((soft, classes)) => {
                let k = soft.dims()[1];
                let mut start = 0usize;
                for p in requests {
                    let n = p.rows;
                    let mut chunk = Tensor::zeros(&[n, k]);
                    chunk
                        .data_mut()
                        .copy_from_slice(&soft.data()[start * k..(start + n) * k]);
                    let classes = classes[start..start + n].to_vec();
                    start += n;
                    st.stats.served_requests += 1;
                    st.stats.served_rows += n as u64;
                    p.slot.resolve(Ok(Prediction {
                        soft_targets: chunk,
                        classes,
                        epoch,
                        submitted_at: p.submitted_at,
                        completed_at,
                        batch_rows: rows,
                    }));
                }
            }
            Err(e) => {
                for p in requests {
                    st.stats.failed += 1;
                    p.slot.resolve(Err(ServeError::Predict(e.clone())));
                }
            }
        }
    }
}

/// Concatenate-and-predict for one batch. Row independence of the
/// underlying ops makes each row's result identical to a solo request.
fn execute(
    ensemble: &FrozenEnsemble,
    requests: &[Pending],
    rows: usize,
    eval_batch: usize,
) -> edde_core::Result<(Tensor, Vec<usize>)> {
    let concat_storage;
    let features: &Tensor = if requests.len() == 1 {
        &requests[0].features
    } else {
        let mut dims = requests[0].features.dims().to_vec();
        dims[0] = rows;
        let mut out = Tensor::zeros(&dims);
        let mut offset = 0usize;
        for p in requests {
            let data = p.features.data();
            out.data_mut()[offset..offset + data.len()].copy_from_slice(data);
            offset += data.len();
        }
        concat_storage = out;
        &concat_storage
    };
    let soft = ensemble.soft_targets_batched(features, eval_batch)?;
    let classes = edde_tensor::ops::argmax_rows(&soft)?;
    Ok((soft, classes))
}

/// Expire-then-coalesce under the state lock. Fires the fault plan's
/// batch hook (which may advance a test clock) before the expiry check,
/// so a scheduled stall deterministically expires queued deadlines.
fn collect_batch(shared: &Arc<Shared>, st: &mut State) -> Option<InflightBatch> {
    if st.queue.is_empty() {
        return None;
    }
    shared.fault.on_batch_start(shared.clock.as_ref());
    let now = shared.clock.now();
    let max_rows = shared.config.max_batch_rows;
    let mut requests = Vec::new();
    let mut rows = 0usize;
    while let Some(front) = st.queue.front() {
        if front.deadline.is_some_and(|d| d <= now) {
            let p = st.queue.pop_front().unwrap();
            st.stats.expired_in_queue += 1;
            p.slot.resolve(Err(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Dequeue,
            }));
            continue;
        }
        if !requests.is_empty() && rows + front.rows > max_rows {
            break;
        }
        let p = st.queue.pop_front().unwrap();
        rows += p.rows;
        requests.push(p);
        if rows >= max_rows {
            break;
        }
    }
    if requests.is_empty() {
        return None;
    }
    st.stats.batches += 1;
    Some(InflightBatch {
        shared: Arc::clone(shared),
        ensemble: Arc::clone(&st.ensemble),
        epoch: st.epoch,
        requests,
        rows,
    })
}

/// Worker drain loop: wait for work, optionally hold a coalescing window
/// (skipped under pressure), collect, run. Exits when the core closes.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            while st.queue.is_empty() && !st.closed {
                st = shared.submitted.wait(st).unwrap();
            }
            if st.queue.is_empty() {
                return; // closed and drained
            }
            let cfg = &shared.config;
            let queued_rows: usize = st.queue.iter().map(|p| p.rows).sum();
            let pressure = st.queue.len() as f64 / cfg.queue_capacity as f64;
            if queued_rows < cfg.max_batch_rows
                && cfg.batch_deadline > Duration::ZERO
                && pressure < cfg.pressure_batch_cut
            {
                // Best-effort coalesce: one bounded wait for more rows.
                // Under pressure the window collapses to zero — ship now.
                let (guard, _) = shared
                    .submitted
                    .wait_timeout(st, cfg.batch_deadline)
                    .unwrap();
                st = guard;
            }
            collect_batch(&shared, &mut st)
        };
        if let Some(batch) = batch {
            batch.run();
        }
    }
}
