//! # edde-serve
//!
//! Overload-safe batched serving for frozen EDDE ensembles.
//!
//! [`ServeCore`] wraps an `Arc`-shared [`edde_core::FrozenEnsemble`]
//! behind a **bounded** submission queue with explicit admission control:
//!
//! * requests past the configured capacity are rejected with
//!   [`ServeError::Overloaded`] — the core never buffers unboundedly;
//! * per-request deadlines are enforced at admission *and* at dequeue,
//!   so expired work is shed before it wastes a batch slot;
//! * under rising queue pressure the core degrades gracefully: first the
//!   batching deadline collapses (ship immediately instead of waiting to
//!   coalesce), then low- and normal-[`Priority`] traffic is shed with
//!   typed errors — never a panic, never a silent drop;
//! * queued requests are coalesced into dynamic micro-batches (up to
//!   [`ServeConfig::max_batch_rows`] rows or the batching deadline,
//!   whichever comes first), and every row's result is bit-identical to
//!   a direct [`edde_core::FrozenEnsemble::predict`] call;
//! * a new CRC-sealed `EEB1` bundle can be hot-swapped in atomically
//!   ([`ServeCore::swap_bundle`]): the candidate is validated against
//!   the live configuration, the epoch pointer flips under the lock,
//!   in-flight batches drain on the old ensemble, and a corrupt or
//!   incompatible candidate is rejected with the typed cause while the
//!   old ensemble keeps serving.
//!
//! Determinism hooks — a manual drain mode ([`ServeConfig::manual`] +
//! [`ServeCore::step`]), an injectable [`Clock`], and scheduled faults
//! ([`ServeFaultPlan`]) — make overload, expiry, and swap scenarios
//! exactly reproducible in tests, in the same style as
//! [`edde_core::FaultPlan`].
//!
//! ```
//! use edde_core::FrozenEnsemble;
//! use edde_serve::{ServeConfig, ServeCore, SubmitOptions};
//! use edde_tensor::Tensor;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let mut ensemble = FrozenEnsemble::new();
//! # let mut r = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
//! # ensemble.push(Arc::new(edde_nn::models::mlp(&[4, 8, 3], 0.0, &mut r)), 1.0, "m0");
//! let core = ServeCore::new(ensemble, ServeConfig::default());
//! let handle = core
//!     .submit(
//!         Tensor::ones(&[2, 4]),
//!         SubmitOptions::new().with_timeout(Duration::from_secs(1)),
//!     )
//!     .unwrap();
//! let prediction = handle.wait().unwrap();
//! assert_eq!(prediction.classes.len(), 2);
//! ```

pub mod clock;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod stream;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use config::ServeConfig;
pub use engine::{
    Handle, InflightBatch, Prediction, ServeCore, ServeStats, StepOutcome, SubmitOptions,
    SwapReport,
};
pub use error::{DeadlineStage, Priority, ServeError};
pub use fault::ServeFaultPlan;
pub use stream::StreamReport;
