//! Pull-based batch streams: evaluation without a materialized dataset.
//!
//! Every evaluation consumer in the stack historically demanded a whole
//! [`Dataset`] in memory. A [`BatchSource`] inverts that: it is a
//! pull-based, resettable iterator of [`Batch`]es with a **known class
//! count but unknown (possibly unbounded) length**, which is the shape
//! batches arrive in under the serving path. Downstream reducers fold
//! per-batch statistics, so evaluation memory is bounded by one batch —
//! `O(batch)` regardless of how long the stream runs.
//!
//! Two sources ship here:
//!
//! * [`DatasetStream`] — the lazy streaming twin of [`Batcher::epoch`] /
//!   [`Batcher::sequential`]: it never materializes the epoch, gathering
//!   each batch's rows on demand through the same scratch-arena plumbing
//!   (`BufferPool` / `TypedPool`) the inference context uses, so a
//!   caller that returns batches via [`BatchSource::recycle`] runs with
//!   zero steady-state allocations after warmup
//!   ([`DatasetStream::fresh_allocs`] stops growing).
//! * [`GaussianStream`] — an unbounded synthetic source that synthesizes
//!   each batch from a per-batch derived seed (the `epoch_seed` idiom),
//!   optionally under a [`DriftSpec`]. Its total length is a parameter,
//!   not a buffer: streaming 100k samples holds the same memory as
//!   streaming 100.
//!
//! Batch boundaries never affect reduced results — member passes are
//! row-independent and the reducers accumulate in row order — so a
//! streamed evaluation is bit-identical to the in-memory path.

use crate::batcher::{Batch, Batcher};
use crate::dataset::Dataset;
use crate::synth::{DriftSpec, GaussianBlobsConfig};
use edde_tensor::rng::{normal_deviate, permutation};
use edde_tensor::scratch::{BufferPool, TypedPool};
use edde_tensor::{EddeConfig, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default row count per streamed batch — a thin per-call view over
/// [`EddeConfig::env_stream_batch`] (`EDDE_STREAM_BATCH`, default 256,
/// zero and garbage rejected with a warning), re-read on each call so
/// tests can vary it. Long-lived readers should resolve an
/// [`EddeConfig`] once and use its `stream_batch` field. Like
/// `EDDE_EVAL_BATCH`, the value never affects results — only the memory
/// high-water mark and throughput.
pub fn stream_batch() -> usize {
    EddeConfig::env_stream_batch()
}

/// A pull-based, resettable source of evaluation batches.
///
/// The contract:
///
/// * `num_classes` is known up front (reducers size their state from it);
/// * the length is **not** — callers must pull until `next_batch` returns
///   `None`, and may never assume the stream fits in memory;
/// * `reset` rewinds to the beginning and the replayed batch sequence is
///   **deterministic**: two passes over the same source yield identical
///   batches (shuffled sources re-derive their order from a stored seed,
///   the per-epoch RNG-seed idiom);
/// * `recycle` optionally returns a finished batch's buffers to the
///   source so the next gather is allocation-free; sources that do not
///   pool simply drop the batch.
pub trait BatchSource {
    /// Number of label classes every batch draws from.
    fn num_classes(&self) -> usize;

    /// The next batch, or `None` once the stream is exhausted.
    fn next_batch(&mut self) -> Option<Batch>;

    /// Rewinds to the beginning; the replayed sequence is bit-identical.
    fn reset(&mut self);

    /// Returns a finished batch's buffers for reuse (optional).
    fn recycle(&mut self, batch: Batch) {
        drop(batch);
    }

    /// Pool misses since construction — zero growth in steady state for
    /// pooling sources. Non-pooling sources report 0.
    fn fresh_allocs(&self) -> usize {
        0
    }
}

/// How a [`DatasetStream`] orders its samples.
#[derive(Debug, Clone)]
enum StreamOrder {
    /// `0..n` in order — deterministic evaluation passes.
    Sequential,
    /// A fresh permutation derived from the stored seed on every reset —
    /// the streaming twin of one shuffled [`Batcher::epoch`].
    Shuffled { seed: u64 },
}

/// The lazy streaming twin of [`Batcher::epoch`]: batches over a borrowed
/// [`Dataset`], gathered one batch at a time.
///
/// Unlike [`Batcher::epoch`], which clones every feature row into its
/// `Vec<Batch>` up front, this source holds only the index order (one
/// `usize` per sample) plus pooled gather buffers — the epoch itself is
/// never materialized. Feature rows are copied into a buffer taken from
/// an owned [`BufferPool`] (labels and indices from a [`TypedPool`]), and
/// [`BatchSource::recycle`] returns them, so steady-state iteration
/// performs no fresh allocations ([`DatasetStream::fresh_allocs`] is what
/// the zero-allocation tests pin).
#[derive(Debug)]
pub struct DatasetStream<'a> {
    data: &'a Dataset,
    batch: usize,
    order: StreamOrder,
    /// Sample order for the current pass (`None` = sequential, implicit).
    perm: Option<Vec<usize>>,
    pos: usize,
    feat_pool: BufferPool,
    label_pool: TypedPool<usize>,
}

impl<'a> DatasetStream<'a> {
    /// A sequential stream (samples in dataset order) — the streaming
    /// twin of [`Batcher::sequential`].
    pub fn sequential(data: &'a Dataset, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        DatasetStream {
            data,
            batch,
            order: StreamOrder::Sequential,
            perm: None,
            pos: 0,
            feat_pool: BufferPool::new(),
            label_pool: TypedPool::new(),
        }
    }

    /// A shuffled stream whose permutation is derived from `seed` — the
    /// streaming twin of one [`Batcher::epoch`] call with
    /// `StdRng::seed_from_u64(seed)`. Resetting re-derives the *same*
    /// permutation, so replays are deterministic; feed a fresh
    /// `epoch_seed` per epoch for independent shuffles.
    pub fn shuffled(data: &'a Dataset, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let perm = permutation(data.len(), &mut rng);
        DatasetStream {
            data,
            batch,
            order: StreamOrder::Shuffled { seed },
            perm: Some(perm),
            pos: 0,
            feat_pool: BufferPool::new(),
            label_pool: TypedPool::new(),
        }
    }

    /// Rows gathered per batch.
    pub fn batch_size(&self) -> usize {
        self.batch
    }
}

impl BatchSource for DatasetStream<'_> {
    fn num_classes(&self) -> usize {
        self.data.num_classes()
    }

    fn next_batch(&mut self) -> Option<Batch> {
        let n = self.data.len();
        if self.pos >= n {
            return None;
        }
        let end = (self.pos + self.batch).min(n);
        let rows = end - self.pos;
        let row: usize = self.data.sample_dims().iter().product();
        let src = self.data.features().data();

        let mut feat = self.feat_pool.take(rows * row);
        let mut labels = self.label_pool.take(rows);
        let mut indices = self.label_pool.take(rows);
        for (slot, pos) in (self.pos..end).enumerate() {
            let idx = match &self.perm {
                Some(p) => p[pos],
                None => pos,
            };
            feat[slot * row..(slot + 1) * row].copy_from_slice(&src[idx * row..(idx + 1) * row]);
            labels[slot] = self.data.labels()[idx];
            indices[slot] = idx;
        }
        let mut dims = Vec::with_capacity(1 + self.data.sample_dims().len());
        dims.push(rows);
        dims.extend_from_slice(self.data.sample_dims());
        let features = Tensor::from_vec(feat, &dims).expect("gather preserves row shape");
        self.pos = end;
        Some(Batch {
            features,
            labels,
            indices,
        })
    }

    fn reset(&mut self) {
        self.pos = 0;
        if let StreamOrder::Shuffled { seed } = self.order {
            // Re-derive, don't cache: the contract is that the order is a
            // pure function of the seed, so replays are bit-identical even
            // if the cached permutation were dropped to save memory.
            let mut rng = StdRng::seed_from_u64(seed);
            self.perm = Some(permutation(self.data.len(), &mut rng));
        }
    }

    fn recycle(&mut self, batch: Batch) {
        self.feat_pool.give(batch.features.into_vec());
        self.label_pool.give(batch.labels);
        self.label_pool.give(batch.indices);
    }

    fn fresh_allocs(&self) -> usize {
        self.feat_pool.misses() + self.label_pool.misses()
    }
}

impl Batcher {
    /// The lazy streaming twin of [`Batcher::sequential`]: identical
    /// batches, but gathered one at a time instead of materialized.
    pub fn stream<'a>(&self, data: &'a Dataset) -> DatasetStream<'a> {
        DatasetStream::sequential(data, self.batch_size())
    }

    /// The lazy streaming twin of [`Batcher::epoch`]: yields exactly the
    /// batches `epoch(data, &mut StdRng::seed_from_u64(seed))` would,
    /// without materializing the epoch. Derive `seed` per epoch (e.g.
    /// `edde_core::epoch_seed`) for independent shuffles that remain
    /// individually replayable.
    pub fn stream_epoch<'a>(&self, data: &'a Dataset, seed: u64) -> DatasetStream<'a> {
        DatasetStream::shuffled(data, self.batch_size(), seed)
    }
}

/// Splitmix64 finalizer — derives batch `b`'s generation seed from the
/// stream's root seed, so every batch is an independent pure function of
/// `(seed, b)` and resets replay bit-identically.
fn batch_seed(root: u64, b: usize) -> u64 {
    let mut z = root
        ^ 0x5EED_BA7C_0000_0001u64.rotate_left(23)
        ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An unbounded-style synthetic Gaussian-blob source: class centers are
/// drawn once (exactly like [`crate::synth::gaussian_blobs`] draws them),
/// then each batch is synthesized on demand from a per-batch derived
/// seed. Total length is a plain count — a 100k-sample stream holds the
/// same memory as a 100-sample one, which is what the `O(batch)` eval
/// memory assertions stream through.
///
/// An optional [`DriftSpec`] shifts the generated distribution (unseen
/// center families, corrupted features) for OOD workloads; labels keep
/// the in-distribution class count so drifted batches score through the
/// same ensemble.
#[derive(Debug)]
pub struct GaussianStream {
    centers: Vec<Vec<f32>>,
    dim: usize,
    classes: usize,
    spread: f32,
    samples: usize,
    batch: usize,
    seed: u64,
    drift: DriftSpec,
    pos: usize,
    feat_pool: BufferPool,
    label_pool: TypedPool<usize>,
}

impl GaussianStream {
    /// A stream of `samples` rows in batches of `batch`, drawing class
    /// centers exactly as [`crate::synth::gaussian_blobs`] would for
    /// `(config, seed)` — so the stream is distributionally the same task.
    pub fn new(config: &GaussianBlobsConfig, seed: u64, samples: usize, batch: usize) -> Self {
        Self::with_drift(config, seed, samples, batch, DriftSpec::InDistribution)
    }

    /// Like [`GaussianStream::new`] but generating under `drift`.
    pub fn with_drift(
        config: &GaussianBlobsConfig,
        seed: u64,
        samples: usize,
        batch: usize,
        drift: DriftSpec,
    ) -> Self {
        assert!(config.classes >= 2, "need at least two classes");
        assert!(batch > 0, "batch size must be positive");
        let center_seed = match drift {
            // Unseen families: the centers come from a salted stream the
            // trained ensemble has never seen.
            DriftSpec::UnseenFamilies => crate::synth::drift_seed(seed),
            _ => seed,
        };
        let mut rng = StdRng::seed_from_u64(center_seed);
        let centers: Vec<Vec<f32>> = (0..config.classes)
            .map(|_| {
                (0..config.dim)
                    .map(|_| 2.0 * normal_deviate(&mut rng))
                    .collect()
            })
            .collect();
        GaussianStream {
            centers,
            dim: config.dim,
            classes: config.classes,
            spread: config.spread,
            samples,
            batch,
            seed,
            drift,
            pos: 0,
            feat_pool: BufferPool::new(),
            label_pool: TypedPool::new(),
        }
    }

    /// Total samples the stream will yield before `None`.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// True when the stream yields no samples at all.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

impl BatchSource for GaussianStream {
    fn num_classes(&self) -> usize {
        self.classes
    }

    fn next_batch(&mut self) -> Option<Batch> {
        if self.pos >= self.samples {
            return None;
        }
        let end = (self.pos + self.batch).min(self.samples);
        let rows = end - self.pos;
        let b = self.pos / self.batch;
        let mut rng = StdRng::seed_from_u64(batch_seed(self.seed, b));

        let mut feat = self.feat_pool.take(rows * self.dim);
        let mut labels = self.label_pool.take(rows);
        let mut indices = self.label_pool.take(rows);
        for (slot, i) in (self.pos..end).enumerate() {
            let class = i % self.classes;
            let center = &self.centers[class];
            for d in 0..self.dim {
                feat[slot * self.dim + d] = center[d] + self.spread * normal_deviate(&mut rng);
            }
            if let DriftSpec::FeatureCorruption { severity } = self.drift {
                crate::synth::corrupt_row(
                    &mut feat[slot * self.dim..(slot + 1) * self.dim],
                    severity,
                    &mut rng,
                );
            }
            labels[slot] = class;
            indices[slot] = i;
        }
        let features =
            Tensor::from_vec(feat, &[rows, self.dim]).expect("generator fills exact shape");
        self.pos = end;
        Some(Batch {
            features,
            labels,
            indices,
        })
    }

    fn reset(&mut self) {
        self.pos = 0;
    }

    fn recycle(&mut self, batch: Batch) {
        self.feat_pool.give(batch.features.into_vec());
        self.label_pool.give(batch.labels);
        self.label_pool.give(batch.indices);
    }

    fn fresh_allocs(&self) -> usize {
        self.feat_pool.misses() + self.label_pool.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_vec((0..n * 2).map(|v| v as f32).collect(), &[n, 2]).unwrap();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(features, labels, 3).unwrap()
    }

    fn drain(src: &mut impl BatchSource) -> Vec<Batch> {
        let mut out = Vec::new();
        while let Some(b) = src.next_batch() {
            out.push(b);
        }
        out
    }

    #[test]
    fn sequential_stream_matches_materialized_batches() {
        let d = toy(10);
        let batcher = Batcher::new(3);
        let eager = batcher.sequential(&d);
        let mut stream = batcher.stream(&d);
        let lazy = drain(&mut stream);
        assert_eq!(eager.len(), lazy.len());
        for (a, b) in eager.iter().zip(lazy.iter()) {
            assert_eq!(a.features.data(), b.features.data());
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.indices, b.indices);
        }
    }

    #[test]
    fn shuffled_stream_matches_epoch_under_same_seed() {
        let d = toy(11);
        let batcher = Batcher::new(4);
        let eager = batcher.epoch(&d, &mut StdRng::seed_from_u64(99));
        let mut stream = batcher.stream_epoch(&d, 99);
        let lazy = drain(&mut stream);
        assert_eq!(eager.len(), lazy.len());
        for (a, b) in eager.iter().zip(lazy.iter()) {
            assert_eq!(a.features.data(), b.features.data());
            assert_eq!(a.indices, b.indices);
        }
    }

    #[test]
    fn reset_replays_bit_identically() {
        let d = toy(9);
        let mut stream = DatasetStream::shuffled(&d, 2, 7);
        let first: Vec<Vec<usize>> = drain(&mut stream)
            .iter()
            .map(|b| b.indices.clone())
            .collect();
        stream.reset();
        let second: Vec<Vec<usize>> = drain(&mut stream)
            .iter()
            .map(|b| b.indices.clone())
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let d = toy(32);
        let order = |seed: u64| -> Vec<usize> {
            let mut s = DatasetStream::shuffled(&d, 8, seed);
            drain(&mut s)
                .iter()
                .flat_map(|b| b.indices.clone())
                .collect()
        };
        assert_ne!(order(1), order(2));
    }

    #[test]
    fn recycled_iteration_is_allocation_free_after_warmup() {
        let d = toy(64);
        let mut stream = DatasetStream::sequential(&d, 8);
        // warmup pass grows the pools to their high-water sizes
        while let Some(b) = stream.next_batch() {
            stream.recycle(b);
        }
        let after_warmup = stream.fresh_allocs();
        for _ in 0..3 {
            stream.reset();
            while let Some(b) = stream.next_batch() {
                stream.recycle(b);
            }
        }
        assert_eq!(
            stream.fresh_allocs(),
            after_warmup,
            "steady-state gathers must come entirely from the pools"
        );
    }

    #[test]
    fn gaussian_stream_is_deterministic_and_fixed_memory() {
        let cfg = GaussianBlobsConfig::default();
        let mut a = GaussianStream::new(&cfg, 5, 100, 16);
        let mut b = GaussianStream::new(&cfg, 5, 100, 16);
        let ba = drain(&mut a);
        let bb = drain(&mut b);
        assert_eq!(ba.len(), bb.len());
        assert_eq!(ba.len(), 7); // ceil(100/16)
        for (x, y) in ba.iter().zip(bb.iter()) {
            assert_eq!(x.features.data(), y.features.data());
            assert_eq!(x.labels, y.labels);
        }
        // reset replays the identical stream
        a.reset();
        let again = drain(&mut a);
        assert_eq!(again[3].features.data(), ba[3].features.data());
    }

    #[test]
    fn gaussian_stream_length_does_not_change_allocations() {
        let cfg = GaussianBlobsConfig::default();
        let allocs = |samples: usize| {
            let mut s = GaussianStream::new(&cfg, 3, samples, 32);
            while let Some(b) = s.next_batch() {
                s.recycle(b);
            }
            s.fresh_allocs()
        };
        assert_eq!(allocs(320), allocs(3200));
    }

    #[test]
    fn unseen_family_drift_moves_the_centers() {
        let cfg = GaussianBlobsConfig {
            spread: 0.0,
            ..Default::default()
        };
        let mut id = GaussianStream::new(&cfg, 4, 8, 8);
        let mut ood = GaussianStream::with_drift(&cfg, 4, 8, 8, DriftSpec::UnseenFamilies);
        let a = id.next_batch().unwrap();
        let b = ood.next_batch().unwrap();
        assert_eq!(a.labels, b.labels);
        assert_ne!(a.features.data(), b.features.data());
    }

    #[test]
    fn stream_batch_knob_defaults_and_rejects_junk() {
        std::env::remove_var("EDDE_STREAM_BATCH");
        assert_eq!(stream_batch(), 256);
        std::env::set_var("EDDE_STREAM_BATCH", "0");
        assert_eq!(stream_batch(), 256);
        std::env::set_var("EDDE_STREAM_BATCH", "64");
        assert_eq!(stream_batch(), 64);
        std::env::remove_var("EDDE_STREAM_BATCH");
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_stream_panics() {
        let d = toy(4);
        DatasetStream::sequential(&d, 0);
    }
}
