//! Resampling utilities: bootstrap and weighted sampling with replacement.
//!
//! Bagging trains each member on a uniform bootstrap; AdaBoost.M1 and
//! AdaBoost.NC train on *weight-proportional* resamples of the training set.

use rand::{Rng, RngExt};

/// `n` indices drawn uniformly with replacement from `0..n` — a classic
/// bootstrap sample.
pub fn bootstrap_indices(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(n > 0, "cannot bootstrap an empty set");
    (0..n).map(|_| rng.random_range(0..n)).collect()
}

/// `count` indices drawn with replacement from `0..weights.len()` with
/// probability proportional to `weights` (inverse-CDF sampling over the
/// cumulative weight vector).
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative/non-finite value, or
/// sums to zero.
pub fn weighted_indices(weights: &[f32], count: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut total = 0.0f64;
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
        total += f64::from(w);
        cumulative.push(total);
    }
    assert!(total > 0.0, "weights must not all be zero");
    (0..count)
        .map(|_| {
            let u = rng.random::<f64>() * total;
            // first cumulative element >= u
            match cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
                Ok(i) => i,
                Err(i) => i.min(weights.len() - 1),
            }
        })
        .collect()
}

/// Normalizes a weight vector so it sums to `target_sum` (boosting keeps the
/// sum equal to N so the mean weight stays 1).
pub fn normalize_weights(weights: &mut [f32], target_sum: f32) {
    let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
    assert!(total > 0.0, "cannot normalize all-zero weights");
    let scale = (f64::from(target_sum) / total) as f32;
    for w in weights.iter_mut() {
        *w *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bootstrap_has_right_size_and_range() {
        let mut r = StdRng::seed_from_u64(0);
        let idx = bootstrap_indices(50, &mut r);
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 50));
        // a bootstrap of 50 almost surely repeats something
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < 50);
    }

    #[test]
    fn weighted_sampling_tracks_weights() {
        let mut r = StdRng::seed_from_u64(1);
        let weights = [1.0f32, 0.0, 3.0];
        let idx = weighted_indices(&weights, 40_000, &mut r);
        let c0 = idx.iter().filter(|&&i| i == 0).count() as f32;
        let c1 = idx.iter().filter(|&&i| i == 1).count();
        let c2 = idx.iter().filter(|&&i| i == 2).count() as f32;
        assert_eq!(c1, 0);
        let ratio = c2 / c0;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn normalize_weights_hits_target() {
        let mut w = vec![1.0, 2.0, 3.0];
        normalize_weights(&mut w, 3.0);
        let sum: f32 = w.iter().sum();
        assert!((sum - 3.0).abs() < 1e-5);
        assert!((w[2] / w[0] - 3.0).abs() < 1e-5); // ratios preserved
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_weights_panic() {
        let mut r = StdRng::seed_from_u64(0);
        weighted_indices(&[], 1, &mut r);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn zero_weights_panic() {
        let mut r = StdRng::seed_from_u64(0);
        weighted_indices(&[0.0, 0.0], 1, &mut r);
    }
}
