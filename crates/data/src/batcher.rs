//! Mini-batch iteration.

use crate::dataset::Dataset;
use edde_tensor::rng::permutation;
use edde_tensor::Tensor;
use rand::Rng;

/// One mini-batch: features, labels, and the *original dataset indices* of
/// its samples (needed so training loops can look up per-sample boosting
/// weights and ensemble soft targets).
#[derive(Debug, Clone)]
pub struct Batch {
    /// Feature tensor `[B, ...]`.
    pub features: Tensor,
    /// Labels, length `B`.
    pub labels: Vec<usize>,
    /// Original dataset indices, length `B`.
    pub indices: Vec<usize>,
}

/// Produces shuffled mini-batches over a dataset, one epoch at a time.
#[derive(Debug, Clone)]
pub struct Batcher {
    batch_size: usize,
}

impl Batcher {
    /// A batcher with the given batch size (> 0).
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher { batch_size }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// One epoch of shuffled batches. The last batch may be smaller.
    pub fn epoch(&self, data: &Dataset, rng: &mut impl Rng) -> Vec<Batch> {
        let order = permutation(data.len(), rng);
        self.batches_in_order(data, &order)
    }

    /// Batches following a fixed index order (no shuffling) — used for
    /// deterministic evaluation passes.
    pub fn sequential(&self, data: &Dataset) -> Vec<Batch> {
        let order: Vec<usize> = (0..data.len()).collect();
        self.batches_in_order(data, &order)
    }

    fn batches_in_order(&self, data: &Dataset, order: &[usize]) -> Vec<Batch> {
        order
            .chunks(self.batch_size)
            .map(|chunk| {
                let features = data
                    .features()
                    .index_select0(chunk)
                    .expect("indices come from a permutation of the dataset");
                let labels = chunk.iter().map(|&i| data.labels()[i]).collect();
                Batch {
                    features,
                    labels,
                    indices: chunk.to_vec(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_vec((0..n).map(|v| v as f32).collect(), &[n, 1]).unwrap();
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(features, labels, 2).unwrap()
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let d = toy(10);
        let mut r = StdRng::seed_from_u64(0);
        let batches = Batcher::new(3).epoch(&d, &mut r);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(batches[3].labels.len(), 1);
    }

    #[test]
    fn batch_features_match_indices() {
        let d = toy(6);
        let mut r = StdRng::seed_from_u64(1);
        for b in Batcher::new(2).epoch(&d, &mut r) {
            for (row, &idx) in b.indices.iter().enumerate() {
                assert_eq!(b.features.at(&[row, 0]).unwrap(), idx as f32);
                assert_eq!(b.labels[row], idx % 2);
            }
        }
    }

    #[test]
    fn sequential_is_in_order() {
        let d = toy(5);
        let batches = Batcher::new(2).sequential(&d);
        let seen: Vec<usize> = batches.iter().flat_map(|b| b.indices.clone()).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        Batcher::new(0);
    }
}
