//! In-memory labeled datasets.

use edde_tensor::{Result, Tensor, TensorError};
use rand::Rng;

/// A labeled, in-memory dataset: a feature tensor whose first axis indexes
/// samples, plus one integer label per sample.
///
/// Images are `[N, C, H, W]`, token sequences `[N, L]`, tabular data
/// `[N, D]` — the container does not care.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

/// A train/test split of a dataset.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

impl Dataset {
    /// Builds a dataset, validating that labels match the feature count and
    /// fall inside `[0, num_classes)`.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if features.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        if features.dims()[0] != labels.len() {
            return Err(TensorError::LengthMismatch {
                expected: features.dims()[0],
                actual: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= num_classes) {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![bad],
                shape: vec![num_classes],
            });
        }
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full feature tensor (`[N, ...]`).
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Shape of one sample (feature dims without the leading `N`).
    pub fn sample_dims(&self) -> &[usize] {
        &self.features.dims()[1..]
    }

    /// Gathers the samples at `indices` (repetition allowed — this is how
    /// bootstrap resampling materializes).
    pub fn select(&self, indices: &[usize]) -> Result<Dataset> {
        let features = self.features.index_select0(indices)?;
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Ok(Dataset {
            features,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Splits into `n_folds` contiguous folds of near-equal size, returning
    /// the sample indices of each fold. Use a prior shuffle for random folds.
    pub fn fold_indices(&self, n_folds: usize) -> Vec<Vec<usize>> {
        assert!(n_folds > 0, "need at least one fold");
        let n = self.len();
        let base = n / n_folds;
        let extra = n % n_folds;
        let mut folds = Vec::with_capacity(n_folds);
        let mut start = 0;
        for f in 0..n_folds {
            let size = base + usize::from(f < extra);
            folds.push((start..start + size).collect());
            start += size;
        }
        folds
    }

    /// Randomly shuffles and splits the dataset, keeping `train_fraction` of
    /// samples for training.
    pub fn split(&self, train_fraction: f32, rng: &mut impl Rng) -> Result<TrainTest> {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction must be in [0,1]"
        );
        let perm = edde_tensor::rng::permutation(self.len(), rng);
        let n_train = ((self.len() as f32) * train_fraction).round() as usize;
        let train = self.select(&perm[..n_train])?;
        let test = self.select(&perm[n_train..])?;
        Ok(TrainTest { train, test })
    }

    /// Per-class sample counts — useful for verifying generator balance.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let features = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[6, 2]).unwrap();
        Dataset::new(features, vec![0, 1, 2, 0, 1, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let f = Tensor::zeros(&[3, 2]);
        assert!(Dataset::new(f.clone(), vec![0, 1], 2).is_err()); // count
        assert!(Dataset::new(f.clone(), vec![0, 1, 2], 2).is_err()); // range
        assert!(Dataset::new(f, vec![0, 1, 1], 2).is_ok());
    }

    #[test]
    fn select_gathers_features_and_labels() {
        let d = toy();
        let s = d.select(&[5, 0, 5]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[2, 0, 2]);
        assert_eq!(s.features().row(1).unwrap(), &[0.0, 1.0]);
    }

    #[test]
    fn fold_indices_partition_everything() {
        let d = toy();
        let folds = d.fold_indices(4);
        assert_eq!(folds.len(), 4);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        // sizes differ by at most one
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn split_respects_fraction_and_is_a_partition() {
        let d = toy();
        let mut r = StdRng::seed_from_u64(0);
        let tt = d.split(2.0 / 3.0, &mut r).unwrap();
        assert_eq!(tt.train.len(), 4);
        assert_eq!(tt.test.len(), 2);
        assert_eq!(tt.train.num_classes(), 3);
    }

    #[test]
    fn class_counts() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![2, 2, 2]);
    }

    #[test]
    fn sample_dims_strip_batch_axis() {
        let f = Tensor::zeros(&[4, 3, 8, 8]);
        let d = Dataset::new(f, vec![0; 4], 1).unwrap();
        assert_eq!(d.sample_dims(), &[3, 8, 8]);
    }
}
