//! K-fold splitting, including the paper's β-selection layout (§IV-B,
//! Fig. 4): train the teacher on folds `1..n−1`, the student on `1..n−2`,
//! and compare student accuracy on fold `n−1` (seen by the teacher) vs
//! fold `n` (seen by nobody).

use crate::dataset::Dataset;
use edde_tensor::rng::permutation;
use edde_tensor::Result;
use rand::Rng;

/// A random partition of a dataset into `k` folds.
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

/// The three datasets the β-selection probe of §IV-B trains/evaluates on.
#[derive(Debug, Clone)]
pub struct BetaSplit {
    /// Folds `1..n−1` — the teacher's training set.
    pub teacher_train: Dataset,
    /// Folds `1..n−2` — the student's training set.
    pub student_train: Dataset,
    /// Fold `n−1` — seen by the teacher but not the student.
    pub seen_fold: Dataset,
    /// Fold `n` — seen by neither model.
    pub unseen_fold: Dataset,
}

impl KFold {
    /// Shuffles `0..n` and cuts it into `k` near-equal folds.
    pub fn new(n: usize, k: usize, rng: &mut impl Rng) -> Self {
        assert!(k >= 2, "need at least two folds");
        assert!(n >= k, "need at least one sample per fold");
        let perm = permutation(n, rng);
        let base = n / k;
        let extra = n % k;
        let mut folds = Vec::with_capacity(k);
        let mut start = 0;
        for f in 0..k {
            let size = base + usize::from(f < extra);
            folds.push(perm[start..start + size].to_vec());
            start += size;
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The sample indices of fold `f`.
    pub fn fold(&self, f: usize) -> &[usize] {
        &self.folds[f]
    }

    /// `(train_indices, val_indices)` for cross-validation round `f`
    /// (fold `f` is validation, the rest train).
    pub fn round(&self, f: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(f < self.folds.len(), "fold index out of range");
        let val = self.folds[f].clone();
        let train = self
            .folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != f)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect();
        (train, val)
    }

    /// Materializes the paper's β-selection split (§IV-B): with folds
    /// `0..k`, the teacher trains on `0..k−1`, the student on `0..k−2`,
    /// fold `k−2` is the *seen* probe and fold `k−1` the *unseen* probe.
    pub fn beta_split(&self, data: &Dataset) -> Result<BetaSplit> {
        assert!(self.k() >= 3, "beta split needs at least three folds");
        let k = self.k();
        let teacher_idx: Vec<usize> = self.folds[..k - 1].concat();
        let student_idx: Vec<usize> = self.folds[..k - 2].concat();
        Ok(BetaSplit {
            teacher_train: data.select(&teacher_idx)?,
            student_train: data.select(&student_idx)?,
            seen_fold: data.select(&self.folds[k - 2])?,
            unseen_fold: data.select(&self.folds[k - 1])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let features = Tensor::from_vec((0..n).map(|v| v as f32).collect(), &[n, 1]).unwrap();
        Dataset::new(features, vec![0; n], 1).unwrap()
    }

    #[test]
    fn folds_partition_the_range() {
        let mut r = StdRng::seed_from_u64(0);
        let kf = KFold::new(17, 5, &mut r);
        let mut all: Vec<usize> = (0..5).flat_map(|f| kf.fold(f).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn round_separates_train_and_val() {
        let mut r = StdRng::seed_from_u64(1);
        let kf = KFold::new(10, 5, &mut r);
        let (train, val) = kf.round(2);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
        assert!(val.iter().all(|v| !train.contains(v)));
    }

    #[test]
    fn beta_split_sizes_match_paper_layout() {
        // 6 folds like the paper's CIFAR-100 experiment (n = 6)
        let mut r = StdRng::seed_from_u64(2);
        let d = toy(60);
        let kf = KFold::new(60, 6, &mut r);
        let split = kf.beta_split(&d).unwrap();
        assert_eq!(split.teacher_train.len(), 50); // folds 0..5
        assert_eq!(split.student_train.len(), 40); // folds 0..4
        assert_eq!(split.seen_fold.len(), 10);
        assert_eq!(split.unseen_fold.len(), 10);
    }

    #[test]
    fn seen_fold_is_inside_teacher_but_not_student() {
        let mut r = StdRng::seed_from_u64(3);
        let d = toy(30);
        let kf = KFold::new(30, 3, &mut r);
        let split = kf.beta_split(&d).unwrap();
        // features are the original index, so membership is testable
        let student: Vec<f32> = split.student_train.features().data().to_vec();
        let teacher: Vec<f32> = split.teacher_train.features().data().to_vec();
        for &v in split.seen_fold.features().data() {
            assert!(teacher.contains(&v));
            assert!(!student.contains(&v));
        }
        for &v in split.unseen_fold.features().data() {
            assert!(!teacher.contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn rejects_single_fold() {
        let mut r = StdRng::seed_from_u64(0);
        KFold::new(10, 1, &mut r);
    }
}
