//! Label encoding helpers.

use edde_tensor::{Result, Tensor, TensorError};

/// One-hot encodes `labels` into an `[N, k]` tensor — the `y_i` vectors of
/// the paper's notation (Table I).
pub fn one_hot(labels: &[usize], k: usize) -> Result<Tensor> {
    let mut t = Tensor::zeros(&[labels.len(), k]);
    for (i, &y) in labels.iter().enumerate() {
        if y >= k {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![y],
                shape: vec![k],
            });
        }
        t.data_mut()[i * k + y] = 1.0;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_each_row() {
        let t = one_hot(&[0, 2, 1], 3).unwrap();
        assert_eq!(t.dims(), &[3, 3]);
        assert_eq!(t.data(), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn empty_input_gives_empty_tensor() {
        let t = one_hot(&[], 4).unwrap();
        assert_eq!(t.dims(), &[0, 4]);
    }
}
