//! Distribution-shifted variants of the synthetic generators.
//!
//! OOD detection needs test-time inputs the ensemble was *not* trained
//! on, while keeping the tensor shapes and class count of the
//! in-distribution task so the same frozen ensemble can score them. A
//! [`DriftSpec`] names one shift family:
//!
//! * **Unseen families** — the class-defining parameters (Gaussian blob
//!   centers, image texture prototypes) are redrawn from a salted seed
//!   stream, so every "class" is a family the ensemble has never seen;
//! * **Corrupted pixels** — in-distribution samples whose feature values
//!   are degraded: a severity-scaled fraction of positions is replaced
//!   with uniform noise (dead/hot pixels) and the rest get additive
//!   Gaussian noise;
//! * **Vocab drift** — SynthIMDB token sequences whose background tokens
//!   are remapped (with some probability) into the rare tail of the
//!   vocabulary, shifting the word distribution without leaving the
//!   embedding range.
//!
//! Default severities come from the shared warn-and-fallback knob
//! family via [`EddeConfig`]: `EDDE_DRIFT_SEVERITY_PCT` (corruption
//! severity as a percentage, default 50) and `EDDE_DRIFT_VOCAB_PCT`
//! (background-token remap probability as a percentage, default 30).
//! Both parse as floats (`edde_tensor::env::env_f64`), so fractional
//! percentages like `62.5` are legal.

use crate::dataset::Dataset;
use crate::synth::{
    gaussian_blobs, GaussianBlobsConfig, SynthImages, SynthImagesConfig, SynthText, SynthTextConfig,
};
use edde_tensor::rng::normal_deviate;
use edde_tensor::EddeConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One drift family applied to a synthetic source. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftSpec {
    /// No shift — the in-distribution control.
    InDistribution,
    /// Class-defining parameters redrawn from a salted seed stream.
    UnseenFamilies,
    /// Severity-scaled pixel/feature corruption, `severity` in `[0, 1]`.
    FeatureCorruption {
        /// Corruption strength: the dead-pixel probability is
        /// `0.3 · severity` and the additive noise σ is `0.5 · severity`.
        severity: f32,
    },
    /// Background tokens remapped to the rare vocabulary tail with
    /// probability `fraction`.
    VocabDrift {
        /// Per-token remap probability in `[0, 1]`.
        fraction: f32,
    },
}

impl DriftSpec {
    /// Corruption at the `EDDE_DRIFT_SEVERITY_PCT` severity (default 50%).
    pub fn corruption_from_env() -> Self {
        Self::corruption_from_config(&EddeConfig {
            drift_severity_pct: EddeConfig::env_drift_severity_pct(),
            ..EddeConfig::default()
        })
    }

    /// Corruption at the config's [`EddeConfig::drift_severity_pct`],
    /// clamped to 100%.
    pub fn corruption_from_config(config: &EddeConfig) -> Self {
        DriftSpec::FeatureCorruption {
            severity: (config.drift_severity_pct.min(100.0) / 100.0) as f32,
        }
    }

    /// Vocab drift at the `EDDE_DRIFT_VOCAB_PCT` fraction (default 30%).
    pub fn vocab_from_env() -> Self {
        Self::vocab_from_config(&EddeConfig {
            drift_vocab_pct: EddeConfig::env_drift_vocab_pct(),
            ..EddeConfig::default()
        })
    }

    /// Vocab drift at the config's [`EddeConfig::drift_vocab_pct`],
    /// clamped to 100%.
    pub fn vocab_from_config(config: &EddeConfig) -> Self {
        DriftSpec::VocabDrift {
            fraction: (config.drift_vocab_pct.min(100.0) / 100.0) as f32,
        }
    }

    /// A short display name for tables and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            DriftSpec::InDistribution => "in-distribution",
            DriftSpec::UnseenFamilies => "unseen-families",
            DriftSpec::FeatureCorruption { .. } => "corrupted-pixels",
            DriftSpec::VocabDrift { .. } => "vocab-drift",
        }
    }
}

/// Derives the salted seed unseen-family variants draw from: drifted
/// generation must be deterministic under the run seed yet disjoint from
/// every stream the in-distribution generator consumed.
pub fn drift_seed(seed: u64) -> u64 {
    let mut z = seed ^ 0xD21F_7ED0_0000_0001u64.rotate_left(29);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Corrupts one feature row in place: each position is replaced by
/// uniform noise in `[-1.5, 1.5]` with probability `0.3 · severity`
/// (dead/hot pixels), otherwise perturbed by Gaussian noise with
/// σ = `0.5 · severity`.
pub fn corrupt_row(row: &mut [f32], severity: f32, rng: &mut StdRng) {
    let dead_p = 0.3 * severity;
    let sigma = 0.5 * severity;
    for v in row {
        if rng.random::<f32>() < dead_p {
            *v = -1.5 + 3.0 * rng.random::<f32>();
        } else {
            *v += sigma * normal_deviate(rng);
        }
    }
}

/// Applies [`corrupt_row`] to every sample of a dataset copy.
fn corrupt_dataset(data: &Dataset, severity: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(drift_seed(seed));
    let row: usize = data.sample_dims().iter().product();
    let mut features = data.features().clone();
    for i in 0..data.len() {
        corrupt_row(
            &mut features.data_mut()[i * row..(i + 1) * row],
            severity,
            &mut rng,
        );
    }
    Dataset::new(features, data.labels().to_vec(), data.num_classes())
        .expect("corruption preserves shapes")
}

/// A drifted evaluation set for the Gaussian-blob task: test-split-sized,
/// same shapes and class count as `gaussian_blobs(config, seed).test`.
pub fn drifted_gaussians(config: &GaussianBlobsConfig, seed: u64, spec: DriftSpec) -> Dataset {
    match spec {
        DriftSpec::InDistribution => gaussian_blobs(config, seed).test,
        DriftSpec::UnseenFamilies => gaussian_blobs(config, drift_seed(seed)).test,
        DriftSpec::FeatureCorruption { severity } => {
            corrupt_dataset(&gaussian_blobs(config, seed).test, severity, seed)
        }
        DriftSpec::VocabDrift { .. } => {
            panic!("vocab drift applies to token sequences, not tabular features")
        }
    }
}

/// A drifted evaluation set for the SynthCIFAR task. Unseen families
/// regenerate every class prototype (base color, texture, blob) from the
/// salted stream — whole texture families the ensemble never trained on.
pub fn drifted_images(config: &SynthImagesConfig, seed: u64, spec: DriftSpec) -> Dataset {
    match spec {
        DriftSpec::InDistribution => SynthImages::generate(config, seed).test,
        DriftSpec::UnseenFamilies => SynthImages::generate(config, drift_seed(seed)).test,
        DriftSpec::FeatureCorruption { severity } => {
            corrupt_dataset(&SynthImages::generate(config, seed).test, severity, seed)
        }
        DriftSpec::VocabDrift { .. } => {
            panic!("vocab drift applies to token sequences, not images")
        }
    }
}

/// A drifted evaluation set for the SynthIMDB task. Vocab drift remaps
/// each *background* token (markers keep their sentiment signal) into the
/// rare upper half of the vocabulary with the given probability — a word-
/// distribution shift that stays inside the embedding range.
pub fn drifted_text(config: &SynthTextConfig, seed: u64, spec: DriftSpec) -> Dataset {
    match spec {
        DriftSpec::InDistribution => SynthText::generate(config, seed).test,
        DriftSpec::VocabDrift { fraction } => {
            let data = SynthText::generate(config, seed).test;
            let mut rng = StdRng::seed_from_u64(drift_seed(seed));
            let background_start = 1 + config.classes * config.markers_per_class;
            let tail_start = background_start + (config.vocab - background_start) / 2;
            let mut features = data.features().clone();
            for v in features.data_mut() {
                let token = *v as usize;
                if token >= background_start && rng.random::<f32>() < fraction {
                    *v = rng.random_range(tail_start..config.vocab) as f32;
                }
            }
            Dataset::new(features, data.labels().to_vec(), data.num_classes())
                .expect("remap preserves shapes")
        }
        DriftSpec::UnseenFamilies | DriftSpec::FeatureCorruption { .. } => {
            panic!("unsupported drift family for token sequences: {spec:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifted_sets_are_deterministic_and_shaped_like_the_control() {
        let cfg = GaussianBlobsConfig::default();
        for spec in [
            DriftSpec::InDistribution,
            DriftSpec::UnseenFamilies,
            DriftSpec::FeatureCorruption { severity: 0.5 },
        ] {
            let a = drifted_gaussians(&cfg, 11, spec);
            let b = drifted_gaussians(&cfg, 11, spec);
            assert_eq!(a.features(), b.features(), "{spec:?}");
            assert_eq!(a.len(), cfg.test_per_class * cfg.classes);
            assert_eq!(a.num_classes(), cfg.classes);
        }
    }

    #[test]
    fn unseen_families_differ_from_the_control() {
        let cfg = GaussianBlobsConfig::default();
        let id = drifted_gaussians(&cfg, 3, DriftSpec::InDistribution);
        let ood = drifted_gaussians(&cfg, 3, DriftSpec::UnseenFamilies);
        assert_ne!(id.features(), ood.features());
        let img_cfg = SynthImagesConfig::tiny(3);
        let id = drifted_images(&img_cfg, 3, DriftSpec::InDistribution);
        let ood = drifted_images(&img_cfg, 3, DriftSpec::UnseenFamilies);
        assert_ne!(id.features(), ood.features());
    }

    #[test]
    fn corruption_perturbs_but_zero_severity_is_identity_noise() {
        let cfg = SynthImagesConfig::tiny(2);
        let id = drifted_images(&cfg, 7, DriftSpec::InDistribution);
        let hard = drifted_images(&cfg, 7, DriftSpec::FeatureCorruption { severity: 0.8 });
        assert_ne!(id.features(), hard.features());
        // corrupted values stay in the generator's clamp-adjacent range
        assert!(hard.features().data().iter().all(|v| v.is_finite()));
        // mean absolute perturbation grows with severity
        let mad = |a: &Dataset, b: &Dataset| -> f32 {
            a.features()
                .data()
                .iter()
                .zip(b.features().data())
                .map(|(x, y)| (x - y).abs())
                .sum::<f32>()
                / a.features().data().len() as f32
        };
        let soft = drifted_images(&cfg, 7, DriftSpec::FeatureCorruption { severity: 0.1 });
        assert!(mad(&id, &hard) > mad(&id, &soft));
    }

    #[test]
    fn vocab_drift_stays_in_range_and_spares_markers() {
        let cfg = SynthTextConfig::tiny();
        let id = drifted_text(&cfg, 9, DriftSpec::InDistribution);
        let ood = drifted_text(&cfg, 9, DriftSpec::VocabDrift { fraction: 0.9 });
        assert_ne!(id.features(), ood.features());
        let background_start = 1 + cfg.classes * cfg.markers_per_class;
        for (&a, &b) in id.features().data().iter().zip(ood.features().data()) {
            let (ta, tb) = (a as usize, b as usize);
            assert!(tb < cfg.vocab, "token out of vocab: {tb}");
            if ta < background_start {
                // PAD and markers are never remapped
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn env_knobs_warn_and_fall_back() {
        std::env::remove_var("EDDE_DRIFT_SEVERITY_PCT");
        assert_eq!(
            DriftSpec::corruption_from_env(),
            DriftSpec::FeatureCorruption { severity: 0.5 }
        );
        std::env::set_var("EDDE_DRIFT_SEVERITY_PCT", "junk");
        assert_eq!(
            DriftSpec::corruption_from_env(),
            DriftSpec::FeatureCorruption { severity: 0.5 }
        );
        std::env::set_var("EDDE_DRIFT_SEVERITY_PCT", "80");
        assert_eq!(
            DriftSpec::corruption_from_env(),
            DriftSpec::FeatureCorruption { severity: 0.8 }
        );
        std::env::remove_var("EDDE_DRIFT_SEVERITY_PCT");
        std::env::remove_var("EDDE_DRIFT_VOCAB_PCT");
        assert_eq!(
            DriftSpec::vocab_from_env(),
            DriftSpec::VocabDrift { fraction: 0.3 }
        );
        std::env::remove_var("EDDE_DRIFT_VOCAB_PCT");

        // Fractional/negative/overflow cases share the same variable, so
        // they live in this test rather than racing it from another.
        std::env::set_var("EDDE_DRIFT_SEVERITY_PCT", "62.5");
        assert_eq!(
            DriftSpec::corruption_from_env(),
            DriftSpec::FeatureCorruption { severity: 0.625 }
        );
        std::env::set_var("EDDE_DRIFT_SEVERITY_PCT", "-20");
        assert_eq!(
            DriftSpec::corruption_from_env(),
            DriftSpec::FeatureCorruption { severity: 0.5 }
        );
        std::env::set_var("EDDE_DRIFT_SEVERITY_PCT", "500");
        assert_eq!(
            DriftSpec::corruption_from_env(),
            DriftSpec::FeatureCorruption { severity: 1.0 },
            "over-100 percentages clamp"
        );
        std::env::remove_var("EDDE_DRIFT_SEVERITY_PCT");
    }

    #[test]
    fn drift_specs_resolve_from_an_explicit_config() {
        let cfg = EddeConfig::builder()
            .drift_severity_pct(12.5)
            .drift_vocab_pct(75.0)
            .resolve();
        assert_eq!(
            DriftSpec::corruption_from_config(&cfg),
            DriftSpec::FeatureCorruption { severity: 0.125 }
        );
        assert_eq!(
            DriftSpec::vocab_from_config(&cfg),
            DriftSpec::VocabDrift { fraction: 0.75 }
        );
    }

    #[test]
    #[should_panic(expected = "vocab drift")]
    fn vocab_drift_rejects_tabular_features() {
        drifted_gaussians(
            &GaussianBlobsConfig::default(),
            0,
            DriftSpec::VocabDrift { fraction: 0.5 },
        );
    }
}
