//! A CIFAR-stand-in image generator ("SynthCIFAR").
//!
//! Each class is defined by a structured prototype — a per-channel base
//! color, a sinusoidal texture with class-specific frequency/orientation,
//! and a bright blob at a class-specific position. Samples are the
//! prototype under per-sample geometric jitter, brightness jitter, and
//! pixel noise.
//!
//! This preserves the properties the EDDE experiments depend on:
//!
//! * classes are separable but not trivially so (noise + jitter);
//! * convolutional features genuinely help (textures, blobs, edges);
//! * models can *overfit* individual noisy samples, which is what makes the
//!   β-selection probe of §IV-B (seen-fold vs unseen-fold accuracy gap)
//!   reproduce.

use crate::dataset::{Dataset, TrainTest};
use edde_tensor::rng::normal_deviate;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`SynthImages::generate`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SynthImagesConfig {
    /// Number of classes (10 for the CIFAR-10 stand-in, 20 for a scaled
    /// CIFAR-100 stand-in).
    pub classes: usize,
    /// Image height = width.
    pub size: usize,
    /// Channels (3 = RGB).
    pub channels: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Pixel noise standard deviation (higher = harder, more overfittable).
    pub noise: f32,
    /// Maximum geometric jitter in pixels.
    pub jitter: usize,
    /// Fine-grained class structure: classes are grouped into this many
    /// *families* that share their base color and blob (the coarse,
    /// easy-to-learn cues) and differ only in texture (the fine cue).
    /// `None` keeps every class fully independent.
    ///
    /// Fine-grained structure is what makes ensemble diversity pay off the
    /// way it does on CIFAR-100: under-trained models confuse sibling
    /// classes *differently*, so soft-voting across diverse members fixes
    /// errors no single model avoids.
    pub families: Option<usize>,
}

impl SynthImagesConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny(classes: usize) -> Self {
        SynthImagesConfig {
            classes,
            size: 8,
            channels: 3,
            train_per_class: 12,
            test_per_class: 6,
            noise: 0.15,
            jitter: 1,
            families: None,
        }
    }

    /// The CIFAR-10 stand-in used by the benchmark harness.
    pub fn cifar10_like() -> Self {
        SynthImagesConfig {
            classes: 10,
            size: 16,
            channels: 3,
            train_per_class: 200,
            test_per_class: 60,
            noise: 0.25,
            jitter: 2,
            families: None,
        }
    }

    /// The CIFAR-100 stand-in: more classes, fewer samples per class, so
    /// per-class generalization is harder — mirroring why CIFAR-100
    /// accuracies are far below CIFAR-10 ones.
    pub fn cifar100_like() -> Self {
        SynthImagesConfig {
            classes: 20,
            size: 16,
            channels: 3,
            train_per_class: 100,
            test_per_class: 30,
            noise: 0.35,
            jitter: 2,
            families: None,
        }
    }
}

/// Per-class prototype parameters.
struct ClassProto {
    base: Vec<f32>, // per-channel base intensity
    freq_y: f32,    // texture frequency (rows)
    freq_x: f32,    // texture frequency (cols)
    phase: f32,     // texture phase
    blob_y: f32,    // blob center (fraction of height)
    blob_x: f32,    // blob center (fraction of width)
    blob_r: f32,    // blob radius (fraction of size)
    blob_channel: usize,
}

/// The CIFAR-stand-in generator. See the module docs.
pub struct SynthImages;

impl SynthImages {
    /// Generates a deterministic train/test pair for `config` and `seed`.
    /// Pixel values are roughly zero-centered (in `[-1, 1]`).
    pub fn generate(config: &SynthImagesConfig, seed: u64) -> TrainTest {
        assert!(config.classes >= 2, "need at least two classes");
        assert!(config.size >= 4, "images must be at least 4x4");
        assert!(config.channels >= 1, "need at least one channel");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_families = config.families.unwrap_or(config.classes).max(1);
        // Shared (coarse) cues per family: base color and blob geometry.
        struct Family {
            base: Vec<f32>,
            freq_y: f32,
            freq_x: f32,
            blob_y: f32,
            blob_x: f32,
            blob_r: f32,
            blob_channel: usize,
        }
        let families: Vec<Family> = (0..n_families)
            .map(|_| Family {
                base: (0..config.channels)
                    .map(|_| 0.2 + 0.6 * rng.random::<f32>())
                    .collect(),
                freq_y: 1.0 + rng.random::<f32>() * 2.0,
                freq_x: 1.0 + rng.random::<f32>() * 2.0,
                blob_y: 0.2 + 0.6 * rng.random::<f32>(),
                blob_x: 0.2 + 0.6 * rng.random::<f32>(),
                blob_r: 0.12 + 0.18 * rng.random::<f32>(),
                blob_channel: rng.random_range(0..config.channels),
            })
            .collect();
        let per_family = config.classes.div_ceil(n_families).max(1);
        let protos: Vec<ClassProto> = (0..config.classes)
            .map(|c| {
                let fam = &families[c * n_families / config.classes.max(1)];
                if config.families.is_some() {
                    // Fine-grained: siblings share every coarse cue (base
                    // color, blob, texture frequency) and differ only in the
                    // texture *phase* plus a small frequency offset — the
                    // within-family index spaces phases evenly so siblings
                    // are confusable but separable.
                    let within = c % per_family;
                    ClassProto {
                        base: fam.base.clone(),
                        freq_y: fam.freq_y + 0.3 * within as f32,
                        freq_x: fam.freq_x,
                        phase: within as f32 * std::f32::consts::TAU / per_family as f32
                            + 0.2 * rng.random::<f32>(),
                        blob_y: fam.blob_y,
                        blob_x: fam.blob_x,
                        blob_r: fam.blob_r,
                        blob_channel: fam.blob_channel,
                    }
                } else {
                    ClassProto {
                        base: fam.base.clone(),
                        freq_y: 1.0 + rng.random::<f32>() * 3.0,
                        freq_x: 1.0 + rng.random::<f32>() * 3.0,
                        phase: rng.random::<f32>() * std::f32::consts::TAU,
                        blob_y: fam.blob_y,
                        blob_x: fam.blob_x,
                        blob_r: fam.blob_r,
                        blob_channel: fam.blob_channel,
                    }
                }
            })
            .collect();

        let train = Self::render_split(config, &protos, config.train_per_class, &mut rng);
        let test = Self::render_split(config, &protos, config.test_per_class, &mut rng);
        TrainTest { train, test }
    }

    fn render_split(
        config: &SynthImagesConfig,
        protos: &[ClassProto],
        per_class: usize,
        rng: &mut StdRng,
    ) -> Dataset {
        let n = per_class * config.classes;
        let (c, s) = (config.channels, config.size);
        let mut features = Tensor::zeros(&[n, c, s, s]);
        let mut labels = Vec::with_capacity(n);
        let mut sample_idx = 0usize;
        for (class, proto) in protos.iter().enumerate() {
            for _ in 0..per_class {
                let dy = rng.random_range(0..=2 * config.jitter) as f32 - config.jitter as f32;
                let dx = rng.random_range(0..=2 * config.jitter) as f32 - config.jitter as f32;
                let brightness = 1.0 + 0.2 * normal_deviate(rng);
                let start = sample_idx * c * s * s;
                for ch in 0..c {
                    for y in 0..s {
                        for x in 0..s {
                            let fy = (y as f32 + dy) / s as f32;
                            let fx = (x as f32 + dx) / s as f32;
                            let texture = 0.25
                                * (std::f32::consts::TAU * (proto.freq_y * fy + proto.freq_x * fx)
                                    + proto.phase)
                                    .sin();
                            let mut v = proto.base[ch] + texture;
                            if ch == proto.blob_channel {
                                let ry = fy - proto.blob_y;
                                let rx = fx - proto.blob_x;
                                if (ry * ry + rx * rx).sqrt() < proto.blob_r {
                                    v += 0.5;
                                }
                            }
                            v = v * brightness + config.noise * normal_deviate(rng);
                            // zero-center into roughly [-1, 1]
                            features.data_mut()[start + (ch * s + y) * s + x] =
                                (v - 0.5).clamp(-1.5, 1.5);
                        }
                    }
                }
                labels.push(class);
                sample_idx += 1;
            }
        }
        Dataset::new(features, labels, config.classes)
            .expect("generator produces consistent shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let cfg = SynthImagesConfig::tiny(4);
        let data = SynthImages::generate(&cfg, 1);
        assert_eq!(data.train.len(), 48);
        assert_eq!(data.test.len(), 24);
        assert_eq!(data.train.sample_dims(), &[3, 8, 8]);
        assert_eq!(data.train.class_counts(), vec![12; 4]);
        assert_eq!(data.test.class_counts(), vec![6; 4]);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthImagesConfig::tiny(3);
        let a = SynthImages::generate(&cfg, 7);
        let b = SynthImages::generate(&cfg, 7);
        assert_eq!(a.train.features(), b.train.features());
        let c = SynthImages::generate(&cfg, 8);
        assert_ne!(a.train.features(), c.train.features());
    }

    #[test]
    fn values_are_bounded_and_finite() {
        let cfg = SynthImagesConfig::tiny(2);
        let data = SynthImages::generate(&cfg, 3);
        assert!(data.train.features().all_finite());
        assert!(data
            .train
            .features()
            .data()
            .iter()
            .all(|v| (-1.5..=1.5).contains(v)));
    }

    #[test]
    fn classes_are_statistically_distinguishable() {
        // nearest-centroid classification on raw pixels should beat chance
        // comfortably — the classes carry real signal.
        let cfg = SynthImagesConfig {
            classes: 4,
            size: 8,
            channels: 3,
            train_per_class: 30,
            test_per_class: 15,
            noise: 0.2,
            jitter: 1,
            families: None,
        };
        let data = SynthImages::generate(&cfg, 5);
        let dim: usize = data.train.sample_dims().iter().product();
        let mut centroids = vec![vec![0.0f32; dim]; 4];
        let counts = data.train.class_counts();
        for (i, &y) in data.train.labels().iter().enumerate() {
            let row = &data.train.features().data()[i * dim..(i + 1) * dim];
            for (cj, &v) in centroids[y].iter_mut().zip(row.iter()) {
                *cj += v;
            }
        }
        for (c, cnt) in centroids.iter_mut().zip(counts.iter()) {
            for v in c.iter_mut() {
                *v /= *cnt as f32;
            }
        }
        let mut correct = 0usize;
        for (i, &y) in data.test.labels().iter().enumerate() {
            let row = &data.test.features().data()[i * dim..(i + 1) * dim];
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, c) in centroids.iter().enumerate() {
                let d: f32 = row
                    .iter()
                    .zip(c.iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            correct += usize::from(best == y);
        }
        let acc = correct as f32 / data.test.len() as f32;
        assert!(acc > 0.6, "nearest-centroid accuracy only {acc}");
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn rejects_single_class() {
        let mut cfg = SynthImagesConfig::tiny(2);
        cfg.classes = 1;
        SynthImages::generate(&cfg, 0);
    }
}
