//! Gaussian-blob tabular data for quick demos and tests.

use crate::dataset::{Dataset, TrainTest};
use edde_tensor::rng::normal_deviate;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`gaussian_blobs`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaussianBlobsConfig {
    /// Number of classes (one blob each).
    pub classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Within-class standard deviation (higher = more overlap).
    pub spread: f32,
}

impl Default for GaussianBlobsConfig {
    fn default() -> Self {
        GaussianBlobsConfig {
            classes: 3,
            dim: 8,
            train_per_class: 50,
            test_per_class: 20,
            spread: 0.8,
        }
    }
}

/// Generates `classes` Gaussian clusters with unit-scale random centers.
pub fn gaussian_blobs(config: &GaussianBlobsConfig, seed: u64) -> TrainTest {
    assert!(config.classes >= 2, "need at least two classes");
    assert!(config.dim >= 1, "need at least one feature");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..config.classes)
        .map(|_| {
            (0..config.dim)
                .map(|_| 2.0 * normal_deviate(&mut rng))
                .collect()
        })
        .collect();
    let render = |per_class: usize, rng: &mut StdRng| -> Dataset {
        let n = per_class * config.classes;
        let mut features = Tensor::zeros(&[n, config.dim]);
        let mut labels = Vec::with_capacity(n);
        let mut i = 0usize;
        for (class, center) in centers.iter().enumerate() {
            for _ in 0..per_class {
                for (d, &c) in center.iter().enumerate() {
                    features.data_mut()[i * config.dim + d] =
                        c + config.spread * normal_deviate(rng);
                }
                labels.push(class);
                i += 1;
            }
        }
        Dataset::new(features, labels, config.classes).expect("consistent shapes")
    };
    let train = render(config.train_per_class, &mut rng);
    let test = render(config.test_per_class, &mut rng);
    TrainTest { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let cfg = GaussianBlobsConfig::default();
        let a = gaussian_blobs(&cfg, 4);
        assert_eq!(a.train.len(), 150);
        assert_eq!(a.test.len(), 60);
        assert_eq!(a.train.sample_dims(), &[8]);
        let b = gaussian_blobs(&cfg, 4);
        assert_eq!(a.train.features(), b.train.features());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn tight_blobs_are_nearly_separable() {
        let cfg = GaussianBlobsConfig {
            spread: 0.1,
            ..Default::default()
        };
        let data = gaussian_blobs(&cfg, 5);
        // nearest-centroid on train centroids classifies test nearly perfectly
        let dim = cfg.dim;
        let mut centroids = vec![vec![0.0f32; dim]; cfg.classes];
        for (i, &y) in data.train.labels().iter().enumerate() {
            for d in 0..dim {
                centroids[y][d] += data.train.features().data()[i * dim + d];
            }
        }
        for c in &mut centroids {
            for v in c.iter_mut() {
                *v /= cfg.train_per_class as f32;
            }
        }
        let mut correct = 0;
        for (i, &y) in data.test.labels().iter().enumerate() {
            let row = &data.test.features().data()[i * dim..(i + 1) * dim];
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = row
                        .iter()
                        .zip(a.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    let db: f32 = row
                        .iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(k, _)| k)
                .unwrap();
            correct += usize::from(best == y);
        }
        assert!(correct as f32 / data.test.len() as f32 > 0.95);
    }
}
