//! Synthetic dataset generators standing in for the paper's datasets.
//!
//! | Paper dataset | Generator | Task shape preserved |
//! |---|---|---|
//! | CIFAR-10/100 | [`SynthImages`] | multi-class images, intra-class variation, overfittable noise |
//! | IMDB / MR | [`SynthText`] | binary token-sequence sentiment with distributional class signal |
//! | (unit tests / demos) | [`gaussian_blobs`] | linearly-separable-ish tabular clusters |

mod drift;
mod gaussians;
mod images;
mod text;

pub use drift::{
    corrupt_row, drift_seed, drifted_gaussians, drifted_images, drifted_text, DriftSpec,
};
pub use gaussians::{gaussian_blobs, GaussianBlobsConfig};
pub use images::{SynthImages, SynthImagesConfig};
pub use text::{SynthText, SynthTextConfig};
