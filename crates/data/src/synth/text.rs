//! An IMDB/MR stand-in text generator ("SynthIMDB" / "SynthMR").
//!
//! Sentences are token-id sequences. Every class shares a Zipf-like
//! background vocabulary; each class additionally owns a small set of
//! *marker* tokens that appear with class-dependent probability — the
//! distributional analogue of sentiment-bearing words. Sequences have
//! variable length and are zero-padded/truncated exactly like the paper's
//! IMDB preprocessing (max length 120, top-5000 vocabulary).

use crate::dataset::{Dataset, TrainTest};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`SynthText::generate`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SynthTextConfig {
    /// Number of classes (2 for sentiment).
    pub classes: usize,
    /// Vocabulary size, including the padding token 0.
    pub vocab: usize,
    /// Maximum (padded) sequence length.
    pub max_len: usize,
    /// Minimum true sequence length, before padding.
    pub min_len: usize,
    /// Marker tokens per class.
    pub markers_per_class: usize,
    /// Probability that a position emits a class marker instead of a
    /// background token (higher = easier).
    pub marker_prob: f32,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
}

impl SynthTextConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        SynthTextConfig {
            classes: 2,
            vocab: 60,
            max_len: 16,
            min_len: 8,
            markers_per_class: 3,
            marker_prob: 0.15,
            train_per_class: 30,
            test_per_class: 10,
        }
    }

    /// The IMDB stand-in (longer reviews, larger vocabulary).
    pub fn imdb_like() -> Self {
        SynthTextConfig {
            classes: 2,
            vocab: 400,
            max_len: 40,
            min_len: 20,
            markers_per_class: 8,
            marker_prob: 0.10,
            train_per_class: 400,
            test_per_class: 150,
        }
    }

    /// The MR stand-in (one-sentence reviews: shorter, noisier).
    pub fn mr_like() -> Self {
        SynthTextConfig {
            classes: 2,
            vocab: 300,
            max_len: 20,
            min_len: 8,
            markers_per_class: 6,
            marker_prob: 0.08,
            train_per_class: 300,
            test_per_class: 120,
        }
    }
}

/// The text stand-in generator. See the module docs.
pub struct SynthText;

impl SynthText {
    /// Generates a deterministic train/test pair. Features are `[N, max_len]`
    /// token-id tensors (padding id 0).
    pub fn generate(config: &SynthTextConfig, seed: u64) -> TrainTest {
        assert!(config.classes >= 2, "need at least two classes");
        assert!(
            config.vocab > 1 + config.classes * config.markers_per_class,
            "vocabulary too small for the marker sets"
        );
        assert!(
            config.min_len >= 1 && config.min_len <= config.max_len,
            "need 1 <= min_len <= max_len"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // token 0 = PAD; tokens 1..=classes*markers are class markers
        let marker_sets: Vec<Vec<usize>> = (0..config.classes)
            .map(|c| {
                (0..config.markers_per_class)
                    .map(|m| 1 + c * config.markers_per_class + m)
                    .collect()
            })
            .collect();
        let background_start = 1 + config.classes * config.markers_per_class;

        let train = Self::render_split(
            config,
            &marker_sets,
            background_start,
            config.train_per_class,
            &mut rng,
        );
        let test = Self::render_split(
            config,
            &marker_sets,
            background_start,
            config.test_per_class,
            &mut rng,
        );
        TrainTest { train, test }
    }

    /// Draws a background token with a Zipf-ish (1/rank) profile.
    fn background_token(start: usize, vocab: usize, rng: &mut StdRng) -> usize {
        let span = vocab - start;
        // inverse-CDF of a truncated 1/(r+1) distribution, cheap approximation:
        let u: f32 = rng.random();
        let r = ((span as f32 + 1.0).powf(u) - 1.0) as usize;
        start + r.min(span - 1)
    }

    fn render_split(
        config: &SynthTextConfig,
        marker_sets: &[Vec<usize>],
        background_start: usize,
        per_class: usize,
        rng: &mut StdRng,
    ) -> Dataset {
        let n = per_class * config.classes;
        let mut features = Tensor::zeros(&[n, config.max_len]);
        let mut labels = Vec::with_capacity(n);
        let mut sample = 0usize;
        for class in 0..config.classes {
            for _ in 0..per_class {
                let len = rng.random_range(config.min_len..=config.max_len);
                for t in 0..len {
                    let token = if rng.random::<f32>() < config.marker_prob {
                        marker_sets[class][rng.random_range(0..marker_sets[class].len())]
                    } else {
                        Self::background_token(background_start, config.vocab, rng)
                    };
                    features.data_mut()[sample * config.max_len + t] = token as f32;
                }
                labels.push(class);
                sample += 1;
            }
        }
        Dataset::new(features, labels, config.classes)
            .expect("generator produces consistent shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_balance_and_padding() {
        let cfg = SynthTextConfig::tiny();
        let data = SynthText::generate(&cfg, 1);
        assert_eq!(data.train.len(), 60);
        assert_eq!(data.test.len(), 20);
        assert_eq!(data.train.sample_dims(), &[16]);
        assert_eq!(data.train.class_counts(), vec![30, 30]);
        // every sequence ends in padding or a valid token; all ids in range
        assert!(data
            .train
            .features()
            .data()
            .iter()
            .all(|&v| v >= 0.0 && (v as usize) < cfg.vocab && v.fract() == 0.0));
    }

    #[test]
    fn sequences_have_variable_length() {
        let cfg = SynthTextConfig::tiny();
        let data = SynthText::generate(&cfg, 2);
        let lens: Vec<usize> = (0..data.train.len())
            .map(|i| {
                let row = &data.train.features().data()[i * 16..(i + 1) * 16];
                row.iter().take_while(|&&v| v != 0.0).count()
            })
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min >= 8 && max <= 16 && min < max, "lens {min}..{max}");
    }

    #[test]
    fn markers_separate_the_classes() {
        let cfg = SynthTextConfig::tiny();
        let data = SynthText::generate(&cfg, 3);
        // count class-0 markers (tokens 1..=3) per class
        let count_markers = |class: usize| -> (usize, usize) {
            let mut c0 = 0;
            let mut c1 = 0;
            for (i, &y) in data.train.labels().iter().enumerate() {
                if y != class {
                    continue;
                }
                for &v in &data.train.features().data()[i * 16..(i + 1) * 16] {
                    let t = v as usize;
                    if (1..=3).contains(&t) {
                        c0 += 1;
                    } else if (4..=6).contains(&t) {
                        c1 += 1;
                    }
                }
            }
            (c0, c1)
        };
        let (a0, a1) = count_markers(0);
        let (b0, b1) = count_markers(1);
        assert!(a0 > 10 && a1 == 0, "class 0 markers {a0}/{a1}");
        assert!(b1 > 10 && b0 == 0, "class 1 markers {b0}/{b1}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthTextConfig::tiny();
        let a = SynthText::generate(&cfg, 9);
        let b = SynthText::generate(&cfg, 9);
        assert_eq!(a.train.features(), b.train.features());
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn rejects_vocab_smaller_than_markers() {
        let mut cfg = SynthTextConfig::tiny();
        cfg.vocab = 5;
        SynthText::generate(&cfg, 0);
    }
}
