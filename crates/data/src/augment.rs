//! Image batch augmentation: the "widely used data augmentation scheme"
//! the paper applies to CIFAR — random crop with zero padding and random
//! horizontal flip (He et al., 2016).

use edde_tensor::{Result, Tensor, TensorError};
use rand::{Rng, RngExt};

/// Configuration for [`augment_batch`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AugmentConfig {
    /// Zero-padding margin before a random crop back to the original size.
    /// CIFAR recipes use 4; the scaled-down experiments use 2.
    pub pad: usize,
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            pad: 2,
            flip_prob: 0.5,
        }
    }
}

/// Applies random crop + horizontal flip to an `[N, C, H, W]` batch,
/// returning a new tensor of the same shape. Each sample gets its own
/// random offsets, as in standard training pipelines.
pub fn augment_batch(batch: &Tensor, config: &AugmentConfig, rng: &mut impl Rng) -> Result<Tensor> {
    if batch.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: batch.rank(),
        });
    }
    let (n, c, h, w) = (
        batch.dims()[0],
        batch.dims()[1],
        batch.dims()[2],
        batch.dims()[3],
    );
    let pad = config.pad;
    let mut out = Tensor::zeros(batch.dims());
    for s in 0..n {
        // crop offsets into the padded image: shift in [-pad, pad]
        let dy = rng.random_range(0..=2 * pad) as isize - pad as isize;
        let dx = rng.random_range(0..=2 * pad) as isize - pad as isize;
        let flip = rng.random::<f32>() < config.flip_prob;
        for ch in 0..c {
            let src = &batch.data()[(s * c + ch) * h * w..][..h * w];
            let dst = &mut out.data_mut()[(s * c + ch) * h * w..][..h * w];
            for y in 0..h {
                let sy = y as isize + dy;
                if sy < 0 || sy >= h as isize {
                    continue; // zero padding
                }
                for x in 0..w {
                    let sx0 = if flip { w - 1 - x } else { x };
                    let sx = sx0 as isize + dx;
                    if sx < 0 || sx >= w as isize {
                        continue;
                    }
                    dst[y * w + x] = src[sy as usize * w + sx as usize];
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_pad_no_flip_is_identity() {
        let mut r = StdRng::seed_from_u64(0);
        let batch = edde_tensor::rng::rand_uniform(&[2, 3, 4, 4], -1.0, 1.0, &mut r);
        let cfg = AugmentConfig {
            pad: 0,
            flip_prob: 0.0,
        };
        let out = augment_batch(&batch, &cfg, &mut r).unwrap();
        assert_eq!(out, batch);
    }

    #[test]
    fn deterministic_flip_mirrors_width() {
        let mut r = StdRng::seed_from_u64(0);
        let batch = Tensor::from_vec((0..4).map(|v| v as f32).collect(), &[1, 1, 1, 4]).unwrap();
        let cfg = AugmentConfig {
            pad: 0,
            flip_prob: 1.0,
        };
        let out = augment_batch(&batch, &cfg, &mut r).unwrap();
        assert_eq!(out.data(), &[3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn crop_shifts_content_and_pads_with_zero() {
        let mut r = StdRng::seed_from_u64(3);
        let batch = Tensor::ones(&[8, 1, 6, 6]);
        let cfg = AugmentConfig {
            pad: 2,
            flip_prob: 0.0,
        };
        let out = augment_batch(&batch, &cfg, &mut r).unwrap();
        assert_eq!(out.dims(), batch.dims());
        // with shifts of up to 2, some zero padding almost surely appears
        // somewhere across 8 samples...
        let zeros = out.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0);
        // ...but most content survives
        let ones = out.data().iter().filter(|&&v| v == 1.0).count();
        assert!(ones > out.len() / 2);
    }

    #[test]
    fn rejects_non_image_input() {
        let mut r = StdRng::seed_from_u64(0);
        let bad = Tensor::zeros(&[2, 3]);
        assert!(augment_batch(&bad, &AugmentConfig::default(), &mut r).is_err());
    }
}
