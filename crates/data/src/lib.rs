//! # edde-data
//!
//! Datasets, sampling, and synthetic data generators for the EDDE
//! reproduction.
//!
//! The paper evaluates on CIFAR-10/100 (vision) and IMDB/MR (text). Neither
//! is redistributable inside this repository, so [`synth`] provides
//! generators that preserve the *shape* of those tasks: multi-class image
//! classification with intra-class variation ([`synth::SynthImages`]) and
//! binary sentiment-style token-sequence classification
//! ([`synth::SynthText`]). Everything is deterministic under a seed.
//!
//! ```
//! use edde_data::synth::{SynthImages, SynthImagesConfig};
//!
//! let cfg = SynthImagesConfig::tiny(4); // 4 classes
//! let data = SynthImages::generate(&cfg, 42);
//! assert_eq!(data.train.len(), cfg.train_per_class * 4);
//! ```

pub mod augment;
pub mod batcher;
pub mod dataset;
pub mod encode;
pub mod kfold;
pub mod sampler;
pub mod stream;
pub mod synth;

pub use batcher::Batcher;
pub use dataset::{Dataset, TrainTest};
pub use kfold::KFold;
pub use stream::{stream_batch, BatchSource, DatasetStream, GaussianStream};
