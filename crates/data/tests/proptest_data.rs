//! Property-based tests for dataset handling, sampling, and generators.

use edde_data::encode::one_hot;
use edde_data::sampler::{bootstrap_indices, normalize_weights, weighted_indices};
use edde_data::synth::{SynthImages, SynthImagesConfig, SynthText, SynthTextConfig};
use edde_data::{Batcher, Dataset, KFold};
use edde_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n: usize, k: usize) -> Dataset {
    let features = Tensor::from_vec((0..n * 2).map(|v| v as f32).collect(), &[n, 2]).unwrap();
    let labels = (0..n).map(|i| i % k).collect();
    Dataset::new(features, labels, k).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batcher_epochs_partition_the_dataset(n in 1usize..60, bs in 1usize..16, seed in 0u64..50) {
        let d = dataset(n, 2.min(n));
        let mut rng = StdRng::seed_from_u64(seed);
        let batches = Batcher::new(bs).epoch(&d, &mut rng);
        let mut seen: Vec<usize> = batches.iter().flat_map(|b| b.indices.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        for b in &batches {
            prop_assert!(b.features.dims()[0] == b.labels.len());
            prop_assert!(b.labels.len() <= bs);
        }
    }

    #[test]
    fn kfold_rounds_partition(n in 6usize..80, k in 2usize..6, seed in 0u64..50) {
        prop_assume!(n >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let kf = KFold::new(n, k, &mut rng);
        for f in 0..k {
            let (train, val) = kf.round(f);
            prop_assert_eq!(train.len() + val.len(), n);
            let mut all: Vec<usize> = train.iter().chain(val.iter()).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bootstrap_stays_in_range(n in 1usize..200, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = bootstrap_indices(n, &mut rng);
        prop_assert_eq!(idx.len(), n);
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    #[test]
    fn weighted_sampling_never_picks_zero_weight(
        weights in prop::collection::vec(0.0f32..5.0, 2..20),
        seed in 0u64..50,
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = weighted_indices(&weights, 200, &mut rng);
        for &i in &idx {
            prop_assert!(weights[i] > 0.0, "picked index {i} with zero weight");
        }
    }

    #[test]
    fn normalize_weights_preserves_ratios(
        mut weights in prop::collection::vec(0.01f32..5.0, 2..12),
        target in 0.5f32..50.0,
    ) {
        let ratio_before = weights[1] / weights[0];
        normalize_weights(&mut weights, target);
        let sum: f32 = weights.iter().sum();
        prop_assert!((sum - target).abs() < 1e-3 * target);
        let ratio_after = weights[1] / weights[0];
        prop_assert!((ratio_before - ratio_after).abs() < 1e-3 * (1.0 + ratio_before.abs()));
    }

    #[test]
    fn one_hot_rows_are_unit_vectors(labels in prop::collection::vec(0usize..7, 1..30)) {
        let t = one_hot(&labels, 7).unwrap();
        for (i, &y) in labels.iter().enumerate() {
            let row = &t.data()[i * 7..(i + 1) * 7];
            prop_assert_eq!(row.iter().sum::<f32>(), 1.0);
            prop_assert_eq!(row[y], 1.0);
        }
    }

    #[test]
    fn dataset_select_preserves_labels(n in 2usize..40, seed in 0u64..50) {
        let d = dataset(n, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = bootstrap_indices(n, &mut rng);
        let s = d.select(&idx).unwrap();
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(s.labels()[pos], d.labels()[i]);
        }
    }

    #[test]
    fn image_generator_is_seed_deterministic(seed in 0u64..30) {
        let cfg = SynthImagesConfig::tiny(3);
        let a = SynthImages::generate(&cfg, seed);
        let b = SynthImages::generate(&cfg, seed);
        prop_assert_eq!(a.train.features(), b.train.features());
        prop_assert_eq!(a.test.labels(), b.test.labels());
        prop_assert!(a.train.features().all_finite());
    }

    #[test]
    fn text_generator_ids_are_always_in_vocab(seed in 0u64..30) {
        let cfg = SynthTextConfig::tiny();
        let data = SynthText::generate(&cfg, seed);
        for &v in data.train.features().data() {
            prop_assert!(v >= 0.0 && (v as usize) < cfg.vocab && v.fract() == 0.0);
        }
    }

    #[test]
    fn fine_grained_families_share_base_statistics(seed in 0u64..10) {
        // classes in the same family share base color; verify via channel
        // means being closer within families than across, on average
        let cfg = SynthImagesConfig {
            classes: 4,
            size: 8,
            channels: 3,
            train_per_class: 10,
            test_per_class: 2,
            noise: 0.05,
            jitter: 0,
            families: Some(2),
        };
        let data = SynthImages::generate(&cfg, seed);
        let dim: usize = data.train.sample_dims().iter().product();
        let mean_of = |class: usize| -> f32 {
            let mut sum = 0.0;
            let mut count = 0;
            for (i, &y) in data.train.labels().iter().enumerate() {
                if y == class {
                    sum += data.train.features().data()[i * dim..(i + 1) * dim]
                        .iter()
                        .sum::<f32>();
                    count += dim;
                }
            }
            sum / count as f32
        };
        // classes 0,1 = family A; classes 2,3 = family B
        let within = (mean_of(0) - mean_of(1)).abs() + (mean_of(2) - mean_of(3)).abs();
        let across = (mean_of(0) - mean_of(2)).abs() + (mean_of(1) - mean_of(3)).abs();
        // weak statistical property: hold on average, allow slack per seed
        prop_assert!(within <= across + 0.15, "within {within} vs across {across}");
    }
}
