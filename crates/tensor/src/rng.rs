//! Seeded random tensor fills.
//!
//! The `rand_distr` crate is not part of the sanctioned dependency set, so
//! normal deviates are generated with an in-crate Box–Muller transform.
//! Everything takes an explicit `&mut impl Rng`, which keeps the entire
//! reproduction deterministic under a single seed.

use crate::tensor::Tensor;
use rand::{Rng, RngExt};

/// Draws one standard-normal deviate via the Box–Muller transform.
#[inline]
pub fn normal_deviate(rng: &mut impl Rng) -> f32 {
    // u1 in (0, 1]: avoid ln(0).
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A tensor with i.i.d. `N(mean, std^2)` entries.
pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = mean + std * normal_deviate(rng);
    }
    t
}

/// A tensor with i.i.d. `U[low, high)` entries.
pub fn rand_uniform(dims: &[usize], low: f32, high: f32, rng: &mut impl Rng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = low + (high - low) * rng.random::<f32>();
    }
    t
}

/// He (Kaiming) normal initialization for a weight tensor with `fan_in`
/// incoming connections — the standard choice for ReLU networks and the one
/// the paper's ResNet/DenseNet models use.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn(dims, 0.0, std, rng)
}

/// Glorot (Xavier) uniform initialization, used for the Text-CNN embedding
/// and dense layers.
pub fn glorot_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    rand_uniform(dims, -limit, limit, rng)
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut r = rng();
        let t = randn(&[10_000], 1.0, 2.0, &mut r);
        let mean = t.data().iter().sum::<f32>() / t.len() as f32;
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(t.all_finite());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        let t = rand_uniform(&[5_000], -0.5, 0.25, &mut r);
        assert!(t.data().iter().all(|&x| (-0.5..0.25).contains(&x)));
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut r = rng();
        let wide = he_normal(&[20_000], 800, &mut r);
        let narrow = he_normal(&[20_000], 2, &mut r);
        assert!(wide.l2_norm() < narrow.l2_norm());
    }

    #[test]
    fn glorot_uniform_within_limit() {
        let mut r = rng();
        let t = glorot_uniform(&[1_000], 10, 20, &mut r);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = rng();
        let mut p = permutation(100, &mut r);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_fills_are_reproducible() {
        let a = randn(&[64], 0.0, 1.0, &mut rng());
        let b = randn(&[64], 0.0, 1.0, &mut rng());
        assert_eq!(a, b);
    }
}
