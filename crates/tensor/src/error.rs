//! Error types shared across the tensor crate.

use std::fmt;

/// Convenience alias used by every fallible operation in this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors raised by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer it was paired with.
    LengthMismatch { expected: usize, actual: usize },
    /// Two tensors that must agree on shape do not.
    ShapeMismatch { left: Vec<usize>, right: Vec<usize> },
    /// An operation received a tensor of the wrong rank.
    RankMismatch { expected: usize, actual: usize },
    /// Matrix multiply inner dimensions disagree.
    MatmulDimMismatch { left: Vec<usize>, right: Vec<usize> },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        index: Vec<usize>,
        shape: Vec<usize>,
    },
    /// An axis argument exceeded the tensor's rank.
    AxisOutOfBounds { axis: usize, rank: usize },
    /// Reshape target has a different element count than the source.
    ReshapeMismatch { from: Vec<usize>, to: Vec<usize> },
    /// Convolution / pooling geometry is inconsistent (e.g. kernel larger
    /// than padded input).
    InvalidGeometry(String),
    /// A serialized tensor could not be decoded.
    Deserialize(String),
    /// Concatenation received tensors whose non-axis dimensions disagree.
    ConcatMismatch {
        axis: usize,
        shapes: Vec<Vec<usize>>,
    },
    /// An operation that requires a non-empty input received an empty one.
    Empty(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::MatmulDimMismatch { left, right } => {
                write!(f, "matmul dimension mismatch: {left:?} x {right:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::AxisOutOfBounds { axis, rank } => {
                write!(f, "axis {axis} out of bounds for rank {rank}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::Deserialize(msg) => write!(f, "deserialize error: {msg}"),
            TensorError::ConcatMismatch { axis, shapes } => {
                write!(f, "cannot concatenate along axis {axis}: shapes {shapes:?}")
            }
            TensorError::Empty(what) => write!(f, "operation requires non-empty input: {what}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        let msg = err.to_string();
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = TensorError::AxisOutOfBounds { axis: 3, rank: 2 };
        let b = TensorError::AxisOutOfBounds { axis: 3, rank: 2 };
        assert_eq!(a, b);
    }

    #[test]
    fn error_trait_object() {
        let err: Box<dyn std::error::Error> = Box::new(TensorError::Empty("mean of zero elements"));
        assert!(err.to_string().contains("non-empty"));
    }
}
