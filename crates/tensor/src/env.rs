//! The `EnvSource` layer: every environment-variable tuning knob in the
//! stack is read through this module, and nowhere else.
//!
//! [`crate::config::EddeConfig`] resolves knobs as *builder override >
//! environment > default*; the environment leg of that resolution is the
//! parser family below ([`env_usize`], [`env_f64`], [`env_bool`]), all of
//! which share the same warn-and-fallback contract: a variable that is
//! present but unusable is rejected with a one-line stderr warning naming
//! the variable, the offending value, and the fallback, so a typo in a
//! deployment script degrades to documented defaults instead of silently
//! misconfiguring the process.
//!
//! Every lookup funnels through [`env_lookup`], the single
//! `std::env::var` call site for `EDDE_*` knobs in the workspace. It
//! increments a process-wide counter ([`env_read_count`]) that the
//! steady-state tests use to assert the hot paths (batched eval, the
//! serve drain loop) perform **zero** environment reads once their
//! owning objects are constructed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of environment lookups made through this layer.
static ENV_READS: AtomicU64 = AtomicU64::new(0);

/// Reads `var` from the process environment. This is the only
/// `std::env::var` call site for `EDDE_*` knobs — every parser below and
/// the `EDDE_SIMD` backend probe go through it — so [`env_read_count`]
/// observes every knob read in the process.
///
/// Returns `None` when the variable is unset or not valid unicode.
pub fn env_lookup(var: &str) -> Option<String> {
    ENV_READS.fetch_add(1, Ordering::Relaxed);
    std::env::var(var).ok()
}

/// The number of environment lookups performed through [`env_lookup`]
/// since the process started. Hot-path tests snapshot this before and
/// after a steady-state loop and assert the delta is zero — knobs must
/// be resolved once at construction, never per call.
pub fn env_read_count() -> u64 {
    ENV_READS.load(Ordering::Relaxed)
}

/// Reads a positive integer tuning knob from the environment, falling back
/// to `default` when the variable is unset. A value that is present but
/// unusable — not an integer, or zero, which every `EDDE_*` knob (batch
/// sizes, queue depths, worker counts, chunk sizes) treats as nonsensical —
/// is rejected with a one-line warning on stderr.
///
/// Shared by `edde_core::eval_batch`, every `EDDE_SERVE_*` knob in
/// `edde-serve`, and `edde_nn::chunkstore`'s `EDDE_CHUNK_BYTES`, so all
/// knobs reject garbage the same way.
pub fn env_usize(var: &str, default: usize) -> usize {
    match env_lookup(var) {
        None => default,
        Some(raw) => {
            match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("warning: ignoring {var}={raw:?} (want a positive integer); using {default}");
                    default
                }
            }
        }
    }
}

/// Reads a positive finite float tuning knob from the environment with the
/// same warn-and-fallback contract as [`env_usize`]: unset falls back
/// silently; garbage, zero, negative, NaN, and infinities are rejected
/// with a warning. Used by the `EDDE_DRIFT_*` percentage knobs, which are
/// meaningless at or below zero.
pub fn env_f64(var: &str, default: f64) -> f64 {
    match env_lookup(var) {
        None => default,
        Some(raw) => match raw.trim().parse::<f64>() {
            Ok(x) if x > 0.0 && x.is_finite() => x,
            _ => {
                eprintln!("warning: ignoring {var}={raw:?} (want a positive finite number); using {default}");
                default
            }
        },
    }
}

/// Reads a boolean tuning knob from the environment with the same
/// warn-and-fallback contract as [`env_usize`]. Accepts (trimmed,
/// case-insensitive) `1`/`true`/`yes`/`on` and `0`/`false`/`no`/`off`;
/// anything else present is rejected with a warning.
pub fn env_bool(var: &str, default: bool) -> bool {
    match env_lookup(var) {
        None => default,
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "yes" | "on" => true,
            "0" | "false" | "no" | "off" => false,
            _ => {
                eprintln!("warning: ignoring {var}={raw:?} (want a boolean: 1/0, true/false, yes/no, on/off); using {default}");
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_usize_rejects_zero_and_garbage() {
        // dedicated variable names: env vars are process-global and tests
        // run concurrently, so each case owns its own variable
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_UNSET", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_ZERO", "0");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_ZERO", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_GARBAGE", "fast");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_GARBAGE", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_OK", " 12 ");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_OK", 7), 12);
    }

    #[test]
    fn env_usize_rejects_negative_and_whitespace_only() {
        std::env::set_var("EDDE_TENSOR_KNOB_NEG", "-3");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_NEG", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_WS", "   ");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_WS", 7), 7);
    }

    #[test]
    fn env_f64_rejects_zero_garbage_negative_whitespace() {
        assert_eq!(env_f64("EDDE_TENSOR_F64_UNSET", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_ZERO", "0");
        assert_eq!(env_f64("EDDE_TENSOR_F64_ZERO", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_GARBAGE", "half");
        assert_eq!(env_f64("EDDE_TENSOR_F64_GARBAGE", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_NEG", "-1.5");
        assert_eq!(env_f64("EDDE_TENSOR_F64_NEG", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_WS", "  ");
        assert_eq!(env_f64("EDDE_TENSOR_F64_WS", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_NAN", "NaN");
        assert_eq!(env_f64("EDDE_TENSOR_F64_NAN", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_INF", "inf");
        assert_eq!(env_f64("EDDE_TENSOR_F64_INF", 0.5), 0.5);
        std::env::set_var("EDDE_TENSOR_F64_OK", " 62.5 ");
        assert_eq!(env_f64("EDDE_TENSOR_F64_OK", 0.5), 62.5);
    }

    #[test]
    fn env_bool_accepts_spellings_and_rejects_garbage() {
        assert!(env_bool("EDDE_TENSOR_BOOL_UNSET", true));
        assert!(!env_bool("EDDE_TENSOR_BOOL_UNSET", false));
        std::env::set_var("EDDE_TENSOR_BOOL_ONE", "1");
        assert!(env_bool("EDDE_TENSOR_BOOL_ONE", false));
        std::env::set_var("EDDE_TENSOR_BOOL_TRUE", " True ");
        assert!(env_bool("EDDE_TENSOR_BOOL_TRUE", false));
        std::env::set_var("EDDE_TENSOR_BOOL_ON", "on");
        assert!(env_bool("EDDE_TENSOR_BOOL_ON", false));
        std::env::set_var("EDDE_TENSOR_BOOL_ZERO", "0");
        assert!(!env_bool("EDDE_TENSOR_BOOL_ZERO", true));
        std::env::set_var("EDDE_TENSOR_BOOL_OFF", "OFF");
        assert!(!env_bool("EDDE_TENSOR_BOOL_OFF", true));
        std::env::set_var("EDDE_TENSOR_BOOL_GARBAGE", "maybe");
        assert!(env_bool("EDDE_TENSOR_BOOL_GARBAGE", true));
        assert!(!env_bool("EDDE_TENSOR_BOOL_GARBAGE", false));
        std::env::set_var("EDDE_TENSOR_BOOL_WS", "  ");
        assert!(env_bool("EDDE_TENSOR_BOOL_WS", true));
    }

    #[test]
    fn env_lookup_increments_the_read_counter() {
        let before = env_read_count();
        let _ = env_lookup("EDDE_TENSOR_COUNTER_PROBE");
        let _ = env_usize("EDDE_TENSOR_COUNTER_PROBE", 1);
        assert!(env_read_count() >= before + 2);
    }
}
