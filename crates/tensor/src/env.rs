//! Environment-variable tuning knobs shared across the stack.

/// Reads a positive integer tuning knob from the environment, falling back
/// to `default` when the variable is unset. A value that is present but
/// unusable — not an integer, or zero, which every `EDDE_*` knob (batch
/// sizes, queue depths, worker counts, chunk sizes) treats as nonsensical —
/// is rejected with a one-line warning on stderr naming the variable, the
/// offending value, and the fallback, so a typo in a deployment script
/// degrades to documented defaults instead of silently misconfiguring the
/// process.
///
/// Shared by `edde_core::eval_batch`, every `EDDE_SERVE_*` knob in
/// `edde-serve`, and `edde_nn::chunkstore`'s `EDDE_CHUNK_BYTES`, so all
/// knobs reject garbage the same way.
pub fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) => {
            match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("warning: ignoring {var}={raw:?} (want a positive integer); using {default}");
                    default
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_usize_rejects_zero_and_garbage() {
        // dedicated variable names: env vars are process-global and tests
        // run concurrently, so each case owns its own variable
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_UNSET", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_ZERO", "0");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_ZERO", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_GARBAGE", "fast");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_GARBAGE", 7), 7);
        std::env::set_var("EDDE_TENSOR_KNOB_OK", " 12 ");
        assert_eq!(env_usize("EDDE_TENSOR_KNOB_OK", 7), 12);
    }
}
