//! Compact binary serialization for tensors and parameter sets.
//!
//! Checkpoints and the β-transfer machinery need to snapshot model
//! parameters. The format is deliberately trivial:
//!
//! ```text
//! magic  : b"EDT1"
//! rank   : u32 LE
//! dims   : rank × u64 LE
//! data   : num_elements × f32 LE
//! ```

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"EDT1";

/// Serializes one tensor into a byte buffer.
pub fn encode_tensor(t: &Tensor, buf: &mut BytesMut) {
    buf.put_slice(MAGIC);
    buf.put_u32_le(t.rank() as u32);
    for &d in t.dims() {
        buf.put_u64_le(d as u64);
    }
    put_f32s_le(buf, t.data());
}

/// Appends `data` as little-endian `f32`s, staging blocks through a stack
/// buffer so the payload lands in a handful of bulk copies rather than one
/// four-byte append per element. Epoch-granular checkpointing pushes
/// hundreds of kilobytes through here every epoch boundary, where the
/// element-at-a-time loop was the dominant cost.
fn put_f32s_le(buf: &mut BytesMut, data: &[f32]) {
    let mut tmp = [0u8; 4096];
    for chunk in data.chunks(1024) {
        for (dst, &v) in tmp.chunks_exact_mut(4).zip(chunk) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        buf.put_slice(&tmp[..chunk.len() * 4]);
    }
}

/// Deserializes one tensor, advancing `buf` past it.
pub fn decode_tensor(buf: &mut Bytes) -> Result<Tensor> {
    if buf.remaining() < 8 {
        return Err(TensorError::Deserialize("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TensorError::Deserialize(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(TensorError::Deserialize(format!("implausible rank {rank}")));
    }
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Deserialize("truncated dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        let d = buf.get_u64_le();
        if d > usize::MAX as u64 {
            return Err(TensorError::Deserialize(format!("dim {d} exceeds usize")));
        }
        dims.push(d as usize);
    }
    // A hostile header can claim astronomically large dims; use checked
    // arithmetic so the element count never wraps around to something small.
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| {
            TensorError::Deserialize(format!("dim product overflows usize: {dims:?}"))
        })?;
    let need = n.checked_mul(4).ok_or_else(|| {
        TensorError::Deserialize(format!("byte count overflows usize for {n} elements"))
    })?;
    if buf.remaining() < need {
        return Err(TensorError::Deserialize(format!(
            "truncated data: need {} bytes, have {}",
            need,
            buf.remaining()
        )));
    }
    // `n` is now bounded by `buf.remaining() / 4`, so this pre-allocation
    // cannot be abused to exhaust memory from a short hostile buffer. The
    // chunked map compiles to a bulk copy on little-endian targets.
    let data: Vec<f32> = buf[..need]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    buf.advance(need);
    Tensor::from_vec(data, &dims)
}

/// Serializes a whole named parameter list (a model checkpoint).
pub fn encode_params(params: &[(String, Tensor)]) -> Bytes {
    let exact: usize = params
        .iter()
        .map(|(name, t)| 8 + name.len() + 8 * t.rank() + 4 * t.data().len())
        .sum();
    let mut buf = BytesMut::with_capacity(4 + exact);
    buf.put_u32_le(params.len() as u32);
    for (name, t) in params {
        let name_bytes = name.as_bytes();
        buf.put_u32_le(name_bytes.len() as u32);
        buf.put_slice(name_bytes);
        encode_tensor(t, &mut buf);
    }
    buf.freeze()
}

/// Deserializes a parameter list written by [`encode_params`].
///
/// Every parameter value must be finite: model parameters are only ever
/// produced by training loops that reject non-finite values, so `NaN`/`inf`
/// here means corruption (or a hostile file) and is surfaced as an error
/// rather than silently loaded into a network.
pub fn decode_params(mut buf: Bytes) -> Result<Vec<(String, Tensor)>> {
    if buf.remaining() < 4 {
        return Err(TensorError::Deserialize("truncated param count".into()));
    }
    let count = buf.get_u32_le() as usize;
    // Each entry needs at least a name length (4) plus a tensor header (8),
    // so cap the pre-allocation by what the buffer could possibly hold.
    let mut out = Vec::with_capacity(count.min(buf.remaining() / 12));
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(TensorError::Deserialize("truncated name length".into()));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(TensorError::Deserialize("truncated name".into()));
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes)
            .map_err(|e| TensorError::Deserialize(format!("name not utf-8: {e}")))?;
        let t = decode_tensor(&mut buf)?;
        if !t.data().iter().all(|v| v.is_finite()) {
            return Err(TensorError::Deserialize(format!(
                "parameter {name:?} contains non-finite values"
            )));
        }
        out.push((name, t));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 3.125, 0.0, 5.0, -6.5], &[2, 3]).unwrap();
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_tensor(&mut bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(std::f32::consts::PI);
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let back = decode_tensor(&mut buf.freeze()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn params_round_trip() {
        let params = vec![
            ("layer0.weight".to_string(), Tensor::ones(&[4, 2])),
            ("layer0.bias".to_string(), Tensor::zeros(&[2])),
        ];
        let bytes = encode_params(&params);
        let back = decode_params(bytes).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"NOPE");
        buf.put_u32_le(0);
        assert!(decode_tensor(&mut buf.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let t = Tensor::ones(&[100]);
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(0..full.len() - 10);
        assert!(decode_tensor(&mut cut).is_err());
    }

    #[test]
    fn rejects_overflowing_dim_product() {
        // A hostile header claiming dims whose product wraps usize must be
        // rejected cleanly, not trigger a huge (or tiny, post-wrap)
        // allocation.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(2);
        buf.put_u64_le(u64::MAX / 2);
        buf.put_u64_le(16);
        let err = decode_tensor(&mut buf.freeze()).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn huge_claimed_count_does_not_preallocate() {
        // count = u32::MAX with an empty payload: must error, not reserve
        // gigabytes up front.
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(decode_params(buf.freeze()).is_err());
    }

    #[test]
    fn params_reject_non_finite_values() {
        let params = vec![(
            "w".to_string(),
            Tensor::from_vec(vec![1.0, f32::NAN, 3.0], &[3]).unwrap(),
        )];
        let bytes = encode_params(&params);
        let err = decode_params(bytes).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn plain_tensors_may_carry_non_finite_values() {
        // decode_tensor itself stays permissive — only *parameter* loading
        // enforces finiteness.
        let t = Tensor::from_vec(vec![f32::INFINITY, 0.0], &[2]).unwrap();
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let back = decode_tensor(&mut buf.freeze()).unwrap();
        assert_eq!(back.data()[1], 0.0);
        assert!(back.data()[0].is_infinite());
    }
}
