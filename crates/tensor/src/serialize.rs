//! Compact binary serialization for tensors and parameter sets.
//!
//! Checkpoints and the β-transfer machinery need to snapshot model
//! parameters. The format is deliberately trivial:
//!
//! ```text
//! magic  : b"EDT1"
//! rank   : u32 LE
//! dims   : rank × u64 LE
//! data   : num_elements × f32 LE
//! ```

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"EDT1";

/// Serializes one tensor into a byte buffer.
pub fn encode_tensor(t: &Tensor, buf: &mut BytesMut) {
    buf.put_slice(MAGIC);
    buf.put_u32_le(t.rank() as u32);
    for &d in t.dims() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.data() {
        buf.put_f32_le(v);
    }
}

/// Deserializes one tensor, advancing `buf` past it.
pub fn decode_tensor(buf: &mut Bytes) -> Result<Tensor> {
    if buf.remaining() < 8 {
        return Err(TensorError::Deserialize("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TensorError::Deserialize(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(TensorError::Deserialize(format!(
            "implausible rank {rank}"
        )));
    }
    if buf.remaining() < rank * 8 {
        return Err(TensorError::Deserialize("truncated dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u64_le() as usize);
    }
    let n: usize = dims.iter().product();
    if buf.remaining() < n * 4 {
        return Err(TensorError::Deserialize(format!(
            "truncated data: need {} bytes, have {}",
            n * 4,
            buf.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(data, &dims)
}

/// Serializes a whole named parameter list (a model checkpoint).
pub fn encode_params(params: &[(String, Tensor)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(params.len() as u32);
    for (name, t) in params {
        let name_bytes = name.as_bytes();
        buf.put_u32_le(name_bytes.len() as u32);
        buf.put_slice(name_bytes);
        encode_tensor(t, &mut buf);
    }
    buf.freeze()
}

/// Deserializes a parameter list written by [`encode_params`].
pub fn decode_params(mut buf: Bytes) -> Result<Vec<(String, Tensor)>> {
    if buf.remaining() < 4 {
        return Err(TensorError::Deserialize("truncated param count".into()));
    }
    let count = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(TensorError::Deserialize("truncated name length".into()));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(TensorError::Deserialize("truncated name".into()));
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes)
            .map_err(|e| TensorError::Deserialize(format!("name not utf-8: {e}")))?;
        let t = decode_tensor(&mut buf)?;
        out.push((name, t));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 3.125, 0.0, 5.0, -6.5], &[2, 3]).unwrap();
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_tensor(&mut bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(std::f32::consts::PI);
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let back = decode_tensor(&mut buf.freeze()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn params_round_trip() {
        let params = vec![
            ("layer0.weight".to_string(), Tensor::ones(&[4, 2])),
            ("layer0.bias".to_string(), Tensor::zeros(&[2])),
        ];
        let bytes = encode_params(&params);
        let back = decode_params(bytes).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"NOPE");
        buf.put_u32_le(0);
        assert!(decode_tensor(&mut buf.freeze()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let t = Tensor::ones(&[100]);
        let mut buf = BytesMut::new();
        encode_tensor(&t, &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(0..full.len() - 10);
        assert!(decode_tensor(&mut cut).is_err());
    }
}
