//! CRC-32 (IEEE 802.3 polynomial), used to checksum serialized tensors,
//! checkpoints, and run manifests.
//!
//! Implemented in-crate because the sanctioned dependency set has no
//! checksum crate. The table is built at compile time; throughput is far
//! beyond what checkpoint I/O needs.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 hasher for checksumming data produced in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"split across several updates";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..12]);
        h.update(&data[12..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            data[i] ^= 0x10;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 0x10;
        }
    }
}
