//! CRC-32 (IEEE 802.3 polynomial), used to checksum serialized tensors,
//! checkpoints, and run manifests.
//!
//! Implemented in-crate because the sanctioned dependency set has no
//! checksum crate. Uses slicing-by-8: eight compile-time tables let the
//! hot loop fold 8 input bytes per iteration with no inter-byte
//! dependency chain, a several-fold throughput gain over the classic
//! byte-at-a-time table walk. That matters since epoch-granular training
//! checkpoints now checksum a few hundred kilobytes every epoch boundary.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    // Table 0 is the classic one-byte table.
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // Table k advances a byte's contribution k extra positions:
    // t[k][i] = one more table-0 step applied to t[k-1][i].
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

const TABLES: [[u32; 256]; 8] = build_tables();

/// A streaming CRC-32 hasher for checksumming data produced in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLES[0][idx];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference the sliced implementation must match.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLES[0][idx];
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length_and_alignment() {
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) ^ 7) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"split across several updates";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..12]);
        h.update(&data[12..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn streaming_split_mid_chunk_matches() {
        let data: Vec<u8> = (0..64u8).collect();
        for split in 0..data.len() {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            data[i] ^= 0x10;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 0x10;
        }
    }
}
