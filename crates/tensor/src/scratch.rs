//! Reusable thread-local scratch buffers for kernel working sets.
//!
//! im2col convolution needs a column matrix per sample, transposed matmul
//! variants need a repacked operand, and both used to allocate (and zero)
//! a fresh `Vec` per call. This arena keeps a small per-thread free list
//! of `f32` buffers instead: `take` hands out the best-fitting retained
//! buffer (or allocates on a miss) and the guard returns it on drop.
//! Thread-locality means pool workers each have their own arena, so
//! sample-parallel convolution stays allocation-free in the steady state
//! without any locking.
//!
//! Buffer contents are **unspecified** on acquisition — callers must
//! write before reading (use [`take_zeroed`] when a cleared buffer is
//! required).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buffers retained per thread. More than this and the smallest is
/// dropped; keeps the arena bounded while covering the forward + backward
/// working sets of one layer.
const MAX_RETAINED: usize = 6;

thread_local! {
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A scratch buffer on loan from the thread-local arena; returned on drop.
pub struct ScratchBuf {
    buf: Vec<f32>,
    len: usize,
}

impl Deref for ScratchBuf {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        &self.buf[..self.len]
    }
}

impl DerefMut for ScratchBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf[..self.len]
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 {
            return;
        }
        // Thread-local state can already be torn down during process exit;
        // in that case just let the buffer free normally.
        let _ = ARENA.try_with(|arena| {
            let mut arena = arena.borrow_mut();
            arena.push(buf);
            if arena.len() > MAX_RETAINED {
                // Drop the smallest buffer: big ones are the expensive
                // ones to reallocate.
                if let Some((idx, _)) = arena.iter().enumerate().min_by_key(|(_, b)| b.capacity()) {
                    arena.swap_remove(idx);
                }
            }
        });
    }
}

/// Borrows a scratch buffer of exactly `len` elements with unspecified
/// contents.
pub fn take(len: usize) -> ScratchBuf {
    let buf = ARENA
        .try_with(|arena| {
            let mut arena = arena.borrow_mut();
            // Best fit: the smallest retained buffer that is big enough.
            let best = arena
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            best.map(|i| arena.swap_remove(i))
        })
        .ok()
        .flatten();
    let mut buf = buf.unwrap_or_default();
    // Contents are unspecified per contract, so resize without clearing.
    buf.resize(len.max(buf.len()), 0.0);
    ScratchBuf { buf, len }
}

/// Borrows a scratch buffer of `len` zeros.
pub fn take_zeroed(len: usize) -> ScratchBuf {
    let mut s = take(len);
    s.fill(0.0);
    s
}

/// An *owned* free list of `f32` buffers, the allocation source behind a
/// per-thread inference context.
///
/// The thread-local [`take`] arena is bounded (it backs transient kernel
/// working sets), but an inference pass holds several live activations at
/// once and cycles through the same sequence of sizes every batch. A
/// `BufferPool` therefore retains every returned buffer: after the first
/// batch has grown each slot to its high-water size, every subsequent
/// `take` is a hit and the pass runs allocation-free. [`BufferPool::misses`]
/// counts the takes that had to touch the heap (empty free list, or no
/// retained buffer with enough capacity), which is what the zero
/// steady-state-allocation tests pin.
///
/// Contents are **unspecified** on acquisition, exactly like [`take`].
///
/// By default retention is unbounded; [`BufferPool::set_retain_limit`]
/// caps the free list (`EDDE_POOL_RETAIN` via the inference context),
/// bounding worst-case idle memory on a long-lived serving process at
/// the cost of re-allocating if a pass ever holds more live buffers than
/// the cap.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    hits: usize,
    misses: usize,
    retain: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool {
            free: Vec::new(),
            hits: 0,
            misses: 0,
            retain: usize::MAX,
        }
    }
}

impl BufferPool {
    /// An empty pool with unbounded retention.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Caps the free list at `limit` buffers: when a `give` would exceed
    /// it, the smallest retained buffer is dropped (keeping the largest
    /// allocations, which are the expensive ones to rebuild).
    pub fn set_retain_limit(&mut self, limit: usize) {
        self.retain = limit.max(1);
        shrink_to_retain(&mut self.free, self.retain);
    }

    /// Hands out a buffer of exactly `len` elements with unspecified
    /// contents, reusing the best-fitting retained allocation when one is
    /// large enough.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match best {
            Some(i) => {
                self.hits += 1;
                self.free.swap_remove(i)
            }
            None => {
                self.misses += 1;
                // Reuse the largest retained allocation as the base so
                // growth converges instead of thrashing.
                match self
                    .free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
                {
                    Some(i) => self.free.swap_remove(i),
                    None => Vec::new(),
                }
            }
        };
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
            shrink_to_retain(&mut self.free, self.retain);
        }
    }

    /// Takes that were served from the free list.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Takes that had to allocate (or grow) — zero in steady state.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Drops every retained buffer and resets the counters.
    pub fn clear(&mut self) {
        self.free.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

/// A [`BufferPool`]-style owned free list for non-`f32` element types —
/// the staging source for quantized inference (`i8` activation buffers,
/// `i32` accumulators). Same contract: contents unspecified on `take`,
/// every returned buffer retained, [`TypedPool::misses`] is zero in
/// steady state.
#[derive(Debug)]
pub struct TypedPool<T> {
    free: Vec<Vec<T>>,
    misses: usize,
    retain: usize,
}

impl<T> Default for TypedPool<T> {
    fn default() -> Self {
        TypedPool {
            free: Vec::new(),
            misses: 0,
            retain: usize::MAX,
        }
    }
}

impl<T: Copy + Default> TypedPool<T> {
    /// An empty pool with unbounded retention.
    pub fn new() -> Self {
        TypedPool::default()
    }

    /// Caps the free list like [`BufferPool::set_retain_limit`].
    pub fn set_retain_limit(&mut self, limit: usize) {
        self.retain = limit.max(1);
        shrink_to_retain(&mut self.free, self.retain);
    }

    /// Hands out a buffer of exactly `len` elements with unspecified
    /// contents.
    pub fn take(&mut self, len: usize) -> Vec<T> {
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match best {
            Some(i) => self.free.swap_remove(i),
            None => {
                self.misses += 1;
                match self
                    .free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
                {
                    Some(i) => self.free.swap_remove(i),
                    None => Vec::new(),
                }
            }
        };
        buf.resize(len, T::default());
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<T>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
            shrink_to_retain(&mut self.free, self.retain);
        }
    }

    /// Takes that had to allocate (or grow) — zero in steady state.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

/// Evicts smallest-capacity buffers until at most `retain` remain.
fn shrink_to_retain<T>(free: &mut Vec<Vec<T>>, retain: usize) {
    while free.len() > retain {
        if let Some((idx, _)) = free.iter().enumerate().min_by_key(|(_, b)| b.capacity()) {
            free.swap_remove(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_hands_out_requested_length() {
        let s = take(100);
        assert_eq!(s.len(), 100);
        let z = take_zeroed(64);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn buffers_are_reused_after_drop() {
        let first = take(4096);
        let ptr = first.as_ptr();
        drop(first);
        let second = take(1024);
        // Same backing allocation: the arena handed the retained buffer back.
        assert_eq!(second.as_ptr(), ptr);
    }

    #[test]
    fn arena_stays_bounded() {
        let guards: Vec<ScratchBuf> = (0..2 * MAX_RETAINED).map(|i| take(64 + i)).collect();
        drop(guards);
        ARENA.with(|a| assert!(a.borrow().len() <= MAX_RETAINED));
    }

    #[test]
    fn zero_len_take_is_fine() {
        let s = take(0);
        assert!(s.is_empty());
    }

    #[test]
    fn pool_reuses_returned_buffers() {
        let mut pool = BufferPool::new();
        let a = pool.take(256);
        assert_eq!(pool.misses(), 1);
        let ptr = a.as_ptr();
        pool.give(a);
        let b = pool.take(128);
        assert_eq!(b.as_ptr(), ptr, "best-fit reuse of the retained buffer");
        assert_eq!(b.len(), 128);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn typed_pool_reuses_and_counts_misses() {
        let mut pool: TypedPool<i32> = TypedPool::new();
        let a = pool.take(64);
        assert_eq!(pool.misses(), 1);
        pool.give(a);
        for _ in 0..3 {
            let b = pool.take(32);
            assert_eq!(b.len(), 32);
            pool.give(b);
        }
        assert_eq!(pool.misses(), 1, "steady state allocates nothing");
    }

    #[test]
    fn pool_steady_state_is_allocation_free() {
        let mut pool = BufferPool::new();
        // Warm-up batch: one buffer per distinct size.
        for &len in &[64usize, 512, 64, 10] {
            let b = pool.take(len);
            pool.give(b);
        }
        let warm_misses = pool.misses();
        // Steady state: the same size sequence again, all hits.
        for _ in 0..3 {
            for &len in &[64usize, 512, 64, 10] {
                let b = pool.take(len);
                pool.give(b);
            }
        }
        assert_eq!(pool.misses(), warm_misses);
    }

    #[test]
    fn retain_limit_evicts_smallest_and_keeps_largest() {
        let mut pool = BufferPool::new();
        pool.set_retain_limit(2);
        for &len in &[16usize, 512, 64, 256] {
            let b = pool.take(len);
            pool.give(b);
        }
        // Only the two largest allocations survive: a 256-element take
        // must hit, a 16-element take also hits (served by a big buffer).
        let before = pool.misses();
        let b = pool.take(256);
        assert_eq!(pool.misses(), before, "largest buffers were retained");
        pool.give(b);

        let mut typed: TypedPool<i8> = TypedPool::new();
        typed.set_retain_limit(1);
        let a = typed.take(128);
        let b = typed.take(8);
        typed.give(a);
        typed.give(b); // evicts the smaller of the two
        let before = typed.misses();
        let c = typed.take(128);
        assert_eq!(typed.misses(), before, "the 128-capacity buffer survived");
        typed.give(c);
    }
}
