//! The core contiguous, row-major `f32` tensor type.

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, contiguous, row-major `f32` n-dimensional array.
///
/// `Tensor` is deliberately simple: no views, no strides other than the
/// canonical row-major layout. This keeps every operation cache-friendly and
/// easy to reason about, which matters more than zero-copy slicing at the
/// scale of the EDDE experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Builds a tensor from an existing buffer, validating the element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.num_elements() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.num_elements(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    // ------------------------------------------------------------ accessors

    /// Dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// The value of a rank-0 or single-element tensor.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() != 1 {
            return Err(TensorError::LengthMismatch {
                expected: 1,
                actual: self.data.len(),
            });
        }
        Ok(self.data[0])
    }

    // -------------------------------------------------------------- reshape

    /// Returns a tensor with the same data and a new shape.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.num_elements() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// In-place reshape (no data movement).
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let new_shape = Shape::new(dims);
        if new_shape.num_elements() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::new(&[self.data.len()]),
            data: self.data.clone(),
        }
    }

    // ----------------------------------------------------------- rank-2 ops

    /// Transposes a rank-2 tensor.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; rows * cols];
        // Blocked transpose keeps both read and write streams within cache
        // lines for large matrices.
        const BLOCK: usize = 32;
        for rb in (0..rows).step_by(BLOCK) {
            for cb in (0..cols).step_by(BLOCK) {
                for r in rb..(rb + BLOCK).min(rows) {
                    for c in cb..(cb + BLOCK).min(cols) {
                        out[c * rows + r] = self.data[r * cols + c];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[cols, rows])
    }

    /// Borrows row `r` of a rank-2 tensor.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![r],
                shape: self.dims().to_vec(),
            });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Mutably borrows row `r` of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![r],
                shape: self.dims().to_vec(),
            });
        }
        Ok(&mut self.data[r * cols..(r + 1) * cols])
    }

    /// Copies the rows of a rank-≥1 tensor selected by `indices` (with
    /// repetition allowed) into a new tensor. "Row" means the sub-tensor at
    /// axis 0, so this works for batches of images as well as matrices.
    pub fn index_select0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let n = self.dims()[0];
        let row_len: usize = self.dims()[1..].iter().product();
        let mut out = Vec::with_capacity(indices.len() * row_len);
        for &i in indices {
            if i >= n {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: self.dims().to_vec(),
                });
            }
            out.extend_from_slice(&self.data[i * row_len..(i + 1) * row_len]);
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(out, &dims)
    }

    /// Concatenates tensors along axis 0. All trailing dimensions must agree.
    pub fn concat0(tensors: &[&Tensor]) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::Empty("concat0 of zero tensors"));
        }
        let tail = &tensors[0].dims()[1..];
        let mut total0 = 0usize;
        for t in tensors {
            if t.rank() == 0 || &t.dims()[1..] != tail {
                return Err(TensorError::ConcatMismatch {
                    axis: 0,
                    shapes: tensors.iter().map(|t| t.dims().to_vec()).collect(),
                });
            }
            total0 += t.dims()[0];
        }
        let mut data = Vec::with_capacity(total0 * tail.iter().product::<usize>());
        for t in tensors {
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![total0];
        dims.extend_from_slice(tail);
        Tensor::from_vec(data, &dims)
    }

    // ----------------------------------------------------------- utilities

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// True when every element is finite (no NaN / infinity). Training loops
    /// use this as a cheap divergence check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// The Euclidean (L2) norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).data(), &[0.0; 6]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).data(), &[7.5, 7.5]);
        assert_eq!(Tensor::eye(2).data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::scalar(3.0).item().unwrap(), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn at_and_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose2d_round_trip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let tt = t.transpose2d().unwrap();
        assert_eq!(tt.dims(), &[4, 3]);
        assert_eq!(tt.at(&[2, 1]).unwrap(), t.at(&[1, 2]).unwrap());
        assert_eq!(tt.transpose2d().unwrap(), t);
    }

    #[test]
    fn rows() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn index_select0_gathers_rows() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let g = t.index_select0(&[2, 0, 2]).unwrap();
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        assert!(t.index_select0(&[3]).is_err());
    }

    #[test]
    fn index_select0_works_on_higher_rank() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]).unwrap();
        let g = t.index_select0(&[1]).unwrap();
        assert_eq!(g.dims(), &[1, 2, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn concat0_stacks() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = Tensor::concat0(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat0_rejects_mismatched_tails() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        assert!(Tensor::concat0(&[&a, &b]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_slice(&[1.0, -2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        assert_eq!(a.map(|x| x.abs()).data(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).unwrap().data(), &[11.0, 18.0]);
        let c = Tensor::from_slice(&[1.0]);
        assert!(a.zip_map(&c, |x, _| x).is_err());
    }

    #[test]
    fn finiteness_and_norms() {
        let t = Tensor::from_slice(&[3.0, 4.0]);
        assert!(t.all_finite());
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.max_abs(), 4.0);
        let bad = Tensor::from_slice(&[f32::NAN]);
        assert!(!bad.all_finite());
    }
}
