//! Shape arithmetic: element counts, strides, and flat-index conversion.

use crate::error::{Result, TensorError};

/// An owned tensor shape (row-major).
///
/// `Shape` is a thin wrapper over `Vec<usize>` that centralizes the index
/// arithmetic every operation needs: element counts, row-major strides, and
/// conversion between multi-dimensional and flat indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension slice. A zero-length slice is the
    /// scalar shape.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank). Scalars have rank 0.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements. The scalar shape has one element.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    ///
    /// For shape `[a, b, c]` the strides are `[b*c, c, 1]`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset, validating bounds.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (i, (&idx, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            if idx >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            flat += idx * strides[i];
        }
        Ok(flat)
    }

    /// Converts a flat offset back into a multi-dimensional index.
    pub fn unflatten_index(&self, mut flat: usize) -> Result<Vec<usize>> {
        if flat >= self.num_elements() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![flat],
                shape: self.dims.clone(),
            });
        }
        let strides = self.strides();
        let mut index = vec![0usize; self.dims.len()];
        for (i, &stride) in strides.iter().enumerate() {
            index[i] = flat / stride;
            flat %= stride;
        }
        Ok(index)
    }

    /// True when the two shapes are compatible for elementwise ops (equal).
    #[inline]
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.num_elements(), 24);
        let scalar = Shape::new(&[]);
        assert_eq!(scalar.rank(), 0);
        assert_eq!(scalar.num_elements(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let v = Shape::new(&[5]);
        assert_eq!(v.strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.num_elements() {
            let idx = s.unflatten_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flat_index_bounds_checked() {
        let s = Shape::new(&[2, 2]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
        assert!(s.unflatten_index(4).is_err());
    }

    #[test]
    fn zero_sized_dimension() {
        let s = Shape::new(&[0, 3]);
        assert_eq!(s.num_elements(), 0);
    }
}
