//! Tensor operations.
//!
//! Split by family:
//!
//! * [`elementwise`] — arithmetic, broadcasting, in-place updates;
//! * [`matmul`] — register-tiled dense matrix products (plain /
//!   transposed) parallelized on the persistent worker pool;
//! * [`reduce`] — sums, means, softmax, argmax;
//! * [`conv`] — im2col 2-D and 1-D convolution with backward passes;
//! * [`pool`] — max / average pooling with backward passes;
//! * [`stats`] — per-axis moments and standardization.

pub mod conv;
pub mod elementwise;
pub mod matmul;
pub mod pool;
pub mod reduce;
pub mod stats;

pub use conv::{
    conv1d, conv1d_backward, conv1d_into, conv2d, conv2d_backward, conv2d_into, out_dim,
    Conv1dGrads, Conv2dGrads,
};
pub use elementwise::{
    add, add_row_broadcast, add_row_broadcast_inplace, add_scalar, axpy, div, mul, scale, sub,
};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b, matmul_into};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_into, global_avg_pool, global_avg_pool_backward,
    global_avg_pool_into, max_over_time, max_over_time_backward, max_over_time_into, max_pool2d,
    max_pool2d_backward, max_pool2d_into,
};
pub use reduce::{
    argmax_rows, log_softmax_rows, max_rows, mean_all, softmax_rows, softmax_rows_in_place,
    sum_all, sum_axis0, sum_sq,
};
pub use stats::{mean_axis0, standardize_axis0, var_axis0};
