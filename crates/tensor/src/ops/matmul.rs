//! Dense matrix products on register-tiled micro-kernels, parallelized
//! over output rows on the persistent worker pool.
//!
//! Three variants cover everything backprop needs without materializing
//! transposes at the API level:
//!
//! * [`matmul`]       — `C = A·B`
//! * [`matmul_at_b`]  — `C = Aᵀ·B`   (weight gradients)
//! * [`matmul_a_bt`]  — `C = A·Bᵀ`   (input gradients; `B` is repacked
//!   transposed into arena scratch so the same streaming kernel applies)
//!
//! # Kernel shape
//!
//! The micro-kernel computes an `MR×NR` output tile in registers: `MR`
//! output rows by `NR` (16, with 8/4/scalar tails) output columns, looping
//! the reduction dimension innermost. Each tile makes one pass over a
//! `K×NR` column band of `B` while it is hot in L1, touches its `C` tile
//! exactly once, and keeps `MR×NR` independent accumulators in registers.
//! The micro-kernels themselves live in [`crate::simd`], which dispatches
//! at runtime between explicit AVX2+FMA intrinsics and a portable scalar
//! backend; this module owns the band/tail structure and the row-chunk
//! parallelism.
//!
//! # Determinism contract
//!
//! Every output element is accumulated by exactly one tile, in ascending
//! reduction order, into a single accumulator of correctly-rounded fused
//! multiply-adds. Tile and chunk boundaries change which elements are
//! computed *together* but never the order of additions *within* an
//! element, so results are bit-identical across thread counts, tile
//! shapes, SIMD backends, and repeated calls.

use crate::error::{Result, TensorError};
use crate::parallel::for_each_row_chunk;
use crate::scratch;
use crate::simd;
use crate::tensor::Tensor;

fn check_rank2(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Serial `C += A·B` for row-major `A[m,k]`, `B[k,n]`, `C[m,n]`.
///
/// This is the building block the parallel wrappers and the convolution
/// kernels feed row chunks into; it never dispatches to the pool itself.
/// The vectorizable 16/8/4 column bands run on the active
/// [`simd`] backend; the `n % 4` tail columns below are shared by both
/// backends (deliberately *unfused* — the historical tail rounding).
pub(crate) fn gemm_ab_into(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(a.len() >= m * k);
    debug_assert_eq!(b.len(), k * n);
    let jb = simd::gemm_ab_bands(c, a, b, m, k, n);
    // Scalar tail columns: same ascending-k single-accumulator order.
    for j in jb..n {
        for i in 0..m {
            let mut acc = c[i * n + j];
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Serial `C += Aᵀ·B` for `A[m,k]`, `B[m,n]`, writing output rows
/// `kb0..kb0+rows` of `C[k,n]`. `c` is the chunk slice whose first row is
/// output row `kb0` (the chunk a pool worker owns). Band/tail split as in
/// [`gemm_ab_into`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_atb_into(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
) {
    debug_assert_eq!(c.len(), rows * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    let jb = simd::gemm_atb_bands(c, a, b, m, k, n, kb0, rows);
    // Scalar tail columns: same ascending-i single-accumulator order.
    for j in jb..n {
        for row in 0..rows {
            let kk = kb0 + row;
            let mut acc = c[row * n + j];
            for i in 0..m {
                acc += a[i * k + kk] * b[i * n + j];
            }
            c[row * n + j] = acc;
        }
    }
}

/// Blocked `dst[cols, rows] = srcᵀ` for row-major `src[rows, cols]`.
pub(crate) fn transpose_into(dst: &mut [f32], src: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(dst.len(), rows * cols);
    debug_assert_eq!(src.len(), rows * cols);
    const TB: usize = 32;
    let mut i0 = 0;
    while i0 < rows {
        let i1 = (i0 + TB).min(rows);
        let mut j0 = 0;
        while j0 < cols {
            let j1 = (j0 + TB).min(cols);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a)?;
    let (kb, n) = check_rank2(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    run_matmul(out.data_mut(), a.data(), b.data(), m, ka, n);
    Ok(out)
}

/// [`matmul`] writing into a caller-provided `[m, n]` tensor: same kernels,
/// same pool chunking, bit-identical output. `dst` is fully overwritten, so
/// inference contexts can recycle activation buffers without re-zeroing.
pub fn matmul_into(a: &Tensor, b: &Tensor, dst: &mut Tensor) -> Result<()> {
    let (m, ka) = check_rank2(a)?;
    let (kb, n) = check_rank2(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    if dst.dims() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            left: vec![m, n],
            right: dst.dims().to_vec(),
        });
    }
    dst.data_mut().fill(0.0);
    run_matmul(dst.data_mut(), a.data(), b.data(), m, ka, n);
    Ok(())
}

/// Shared `A[m,k]·B[k,n]` dispatch over a zeroed output slice.
fn run_matmul(out: &mut [f32], ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    for_each_row_chunk(out, n, |first_row, chunk| {
        let rows = chunk.len() / n;
        gemm_ab_into(
            chunk,
            &ad[first_row * k..(first_row + rows) * k],
            bd,
            rows,
            k,
            n,
        );
    });
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` for `A[m,k]`, `B[m,n]` — without building `Aᵀ`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ma, k) = check_rank2(a)?;
    let (mb, n) = check_rank2(b)?;
    if ma != mb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[k, n]);
    if k == 0 || n == 0 {
        return Ok(out);
    }
    let (ad, bd) = (a.data(), b.data());
    for_each_row_chunk(out.data_mut(), n, |first_row, chunk| {
        let rows = chunk.len() / n;
        gemm_atb_into(chunk, ad, bd, ma, k, n, first_row, rows);
    });
    Ok(out)
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` for `B[k,n]` — `B` is repacked transposed
/// into arena scratch so the streaming [`gemm_ab_into`] kernel applies.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, na) = check_rank2(a)?;
    let (k, nb) = check_rank2(b)?;
    if na != nb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let n = na;
    let mut out = Tensor::zeros(&[m, k]);
    if m == 0 || k == 0 {
        return Ok(out);
    }
    let ad = a.data();
    if n == 0 {
        return Ok(out);
    }
    let mut bt = scratch::take(n * k);
    transpose_into(&mut bt, b.data(), k, n);
    let btd: &[f32] = &bt;
    for_each_row_chunk(out.data_mut(), k, |first_row, chunk| {
        let rows = chunk.len() / k;
        gemm_ab_into(
            chunk,
            &ad[first_row * n..(first_row + rows) * n],
            btd,
            rows,
            n,
            k,
        );
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = StdRng::seed_from_u64(1);
        let a = rand_uniform(&[7, 7], -1.0, 1.0, &mut r);
        let i = Tensor::eye(7);
        assert_close(&matmul(&a, &i).unwrap(), &a, 1e-6);
        assert_close(&matmul(&i, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut r = StdRng::seed_from_u64(7);
        // Sizes straddle every tile-width tail path (16/8/4/scalar) and
        // the MR row tails.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 9, 23),
            (64, 32, 48),
            (5, 7, 19),
            (4, 11, 37),
            (33, 16, 65),
        ] {
            let a = rand_uniform(&[m, k], -1.0, 1.0, &mut r);
            let b = rand_uniform(&[k, n], -1.0, 1.0, &mut r);
            assert_close(&matmul(&a, &b).unwrap(), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut r = StdRng::seed_from_u64(9);
        for &(m, k, n) in &[(11usize, 6usize, 4usize), (23, 17, 31), (8, 16, 16)] {
            let a = rand_uniform(&[m, k], -1.0, 1.0, &mut r);
            let b = rand_uniform(&[m, n], -1.0, 1.0, &mut r);
            let at_b = matmul_at_b(&a, &b).unwrap();
            let explicit = matmul(&a.transpose2d().unwrap(), &b).unwrap();
            assert_close(&at_b, &explicit, 1e-4);

            let c = rand_uniform(&[m, n], -1.0, 1.0, &mut r);
            let d = rand_uniform(&[k, n], -1.0, 1.0, &mut r);
            let c_dt = matmul_a_bt(&c, &d).unwrap();
            let explicit2 = matmul(&c, &d.transpose2d().unwrap()).unwrap();
            assert_close(&c_dt, &explicit2, 1e-4);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_at_b(&a, &Tensor::zeros(&[3, 2])).is_err());
        assert!(matmul_a_bt(&a, &Tensor::zeros(&[4, 4])).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &b).is_err());
    }

    #[test]
    fn large_parallel_product_matches_naive() {
        let mut r = StdRng::seed_from_u64(11);
        // Big enough to cross the parallel threshold (200*160 = 32k elems).
        let a = rand_uniform(&[200, 90], -1.0, 1.0, &mut r);
        let b = rand_uniform(&[90, 160], -1.0, 1.0, &mut r);
        assert_close(&matmul(&a, &b).unwrap(), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn transpose_into_round_trips() {
        let mut r = StdRng::seed_from_u64(13);
        let t = rand_uniform(&[37, 53], -1.0, 1.0, &mut r);
        let mut once = vec![0.0f32; t.len()];
        transpose_into(&mut once, t.data(), 37, 53);
        let mut twice = vec![0.0f32; t.len()];
        transpose_into(&mut twice, &once, 53, 37);
        assert_eq!(&twice, t.data());
    }
}
