//! Dense matrix products, parallelized over output rows.
//!
//! Three variants cover everything backprop needs without materializing
//! transposes:
//!
//! * [`matmul`]       — `C = A·B`
//! * [`matmul_at_b`]  — `C = Aᵀ·B`   (weight gradients)
//! * [`matmul_a_bt`]  — `C = A·Bᵀ`   (input gradients)
//!
//! All kernels use an `i-k-j` loop order so the innermost loop streams
//! through contiguous rows of both the accumulator and the right operand.

use crate::error::{Result, TensorError};
use crate::parallel::for_each_row_chunk;
use crate::tensor::Tensor;

fn check_rank2(t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a)?;
    let (kb, n) = check_rank2(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    for_each_row_chunk(out.data_mut(), n.max(1), |first_row, chunk| {
        for (local_i, crow) in chunk.chunks_mut(n.max(1)).enumerate() {
            let i = first_row + local_i;
            let arow = &ad[i * ka..(i + 1) * ka];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue; // ReLU activations make zero common.
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *c += aik * bv;
                }
            }
        }
    });
    Ok(out)
}

/// `C[k,n] = Aᵀ[k,m] · B[m,n]` for `A[m,k]`, `B[m,n]` — without building `Aᵀ`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ma, k) = check_rank2(a)?;
    let (mb, n) = check_rank2(b)?;
    if ma != mb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    // C[kk][j] = Σ_i A[i][kk] * B[i][j]. Parallelize over C's rows (kk):
    // each worker scans all of A and B but owns disjoint output rows.
    let mut out = Tensor::zeros(&[k, n]);
    let (ad, bd) = (a.data(), b.data());
    for_each_row_chunk(out.data_mut(), n.max(1), |first_row, chunk| {
        for (local, crow) in chunk.chunks_mut(n.max(1)).enumerate() {
            let kk = first_row + local;
            for i in 0..ma {
                let aik = ad[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &bd[i * n..(i + 1) * n];
                for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *c += aik * bv;
                }
            }
        }
    });
    Ok(out)
}

/// `C[m,k] = A[m,n] · Bᵀ[n,k]` for `B[k,n]` — without building `Bᵀ`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, na) = check_rank2(a)?;
    let (k, nb) = check_rank2(b)?;
    if na != nb {
        return Err(TensorError::MatmulDimMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let n = na;
    let mut out = Tensor::zeros(&[m, k]);
    let (ad, bd) = (a.data(), b.data());
    for_each_row_chunk(out.data_mut(), k.max(1), |first_row, chunk| {
        for (local, crow) in chunk.chunks_mut(k.max(1)).enumerate() {
            let i = first_row + local;
            let arow = &ad[i * n..(i + 1) * n];
            for (j, c) in crow.iter_mut().enumerate() {
                let brow = &bd[j * n..(j + 1) * n];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                *c += acc;
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = StdRng::seed_from_u64(1);
        let a = rand_uniform(&[7, 7], -1.0, 1.0, &mut r);
        let i = Tensor::eye(7);
        assert_close(&matmul(&a, &i).unwrap(), &a, 1e-6);
        assert_close(&matmul(&i, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut r = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 23), (64, 32, 48)] {
            let a = rand_uniform(&[m, k], -1.0, 1.0, &mut r);
            let b = rand_uniform(&[k, n], -1.0, 1.0, &mut r);
            assert_close(&matmul(&a, &b).unwrap(), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut r = StdRng::seed_from_u64(9);
        let a = rand_uniform(&[11, 6], -1.0, 1.0, &mut r);
        let b = rand_uniform(&[11, 4], -1.0, 1.0, &mut r);
        let at_b = matmul_at_b(&a, &b).unwrap();
        let explicit = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        assert_close(&at_b, &explicit, 1e-4);

        let c = rand_uniform(&[5, 8], -1.0, 1.0, &mut r);
        let d = rand_uniform(&[3, 8], -1.0, 1.0, &mut r);
        let c_dt = matmul_a_bt(&c, &d).unwrap();
        let explicit2 = matmul(&c, &d.transpose2d().unwrap()).unwrap();
        assert_close(&c_dt, &explicit2, 1e-4);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_at_b(&a, &Tensor::zeros(&[3, 2])).is_err());
        assert!(matmul_a_bt(&a, &Tensor::zeros(&[4, 4])).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &b).is_err());
    }

    #[test]
    fn large_parallel_product_matches_naive() {
        let mut r = StdRng::seed_from_u64(11);
        // Big enough to cross the parallel threshold (200*160 = 32k elems).
        let a = rand_uniform(&[200, 90], -1.0, 1.0, &mut r);
        let b = rand_uniform(&[90, 160], -1.0, 1.0, &mut r);
        assert_close(&matmul(&a, &b).unwrap(), &naive_matmul(&a, &b), 1e-3);
    }
}
