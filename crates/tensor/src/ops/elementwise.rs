//! Elementwise arithmetic and simple broadcasting.
//!
//! Binary ops clone the left operand and mutate it in chunks across the
//! persistent worker pool (large buffers only — see
//! [`crate::parallel::for_each_zip_chunk`]). Each element is transformed
//! independently, so chunking never changes results.

use crate::error::{Result, TensorError};
use crate::parallel::{for_each_row_chunk, for_each_zip_chunk};
use crate::tensor::Tensor;

/// Clones `a` and applies `f(out_elem, b_elem)` chunk-parallel.
fn zip_into_clone(a: &Tensor, b: &Tensor, f: impl Fn(&mut f32, f32) + Sync) -> Tensor {
    let mut out = a.clone();
    for_each_zip_chunk(out.data_mut(), b.data(), |xs, ys| {
        for (x, &y) in xs.iter_mut().zip(ys.iter()) {
            f(x, y);
        }
    });
    out
}

fn check_same_shape(a: &Tensor, b: &Tensor) -> Result<()> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// `a + b` (same shape).
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b)?;
    Ok(zip_into_clone(a, b, |x, y| *x += y))
}

/// `a - b` (same shape).
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b)?;
    Ok(zip_into_clone(a, b, |x, y| *x -= y))
}

/// `a * b` elementwise (same shape).
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b)?;
    Ok(zip_into_clone(a, b, |x, y| *x *= y))
}

/// `a / b` elementwise (same shape). Division by zero follows IEEE 754.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b)?;
    Ok(zip_into_clone(a, b, |x, y| *x /= y))
}

/// `a + s` for a scalar `s`.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x + s)
}

/// `a * s` for a scalar `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place `a += alpha * b` — the workhorse of SGD updates. Chunks run
/// the [`crate::simd`] axpy kernel (unfused rounding on both backends).
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) -> Result<()> {
    check_same_shape(a, b)?;
    for_each_zip_chunk(a.data_mut(), b.data(), |xs, ys| {
        crate::simd::axpy(xs, ys, alpha);
    });
    Ok(())
}

/// Adds a length-`n` row vector to every row of an `[m, n]` matrix —
/// the bias-add pattern of dense layers.
pub fn add_row_broadcast(matrix: &Tensor, row: &Tensor) -> Result<Tensor> {
    if matrix.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: matrix.rank(),
        });
    }
    if row.rank() != 1 || row.dims()[0] != matrix.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            left: matrix.dims().to_vec(),
            right: row.dims().to_vec(),
        });
    }
    let mut out = matrix.clone();
    add_row_broadcast_inplace(&mut out, row)?;
    Ok(out)
}

/// In-place variant of [`add_row_broadcast`] — the dense-layer forward
/// uses this on the freshly computed matmul output to avoid cloning it.
pub fn add_row_broadcast_inplace(matrix: &mut Tensor, row: &Tensor) -> Result<()> {
    if matrix.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: matrix.rank(),
        });
    }
    if row.rank() != 1 || row.dims()[0] != matrix.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            left: matrix.dims().to_vec(),
            right: row.dims().to_vec(),
        });
    }
    let n = matrix.dims()[1];
    let bias = row.data();
    for_each_row_chunk(matrix.data_mut(), n, |_, chunk| {
        for r in chunk.chunks_mut(n) {
            for (v, &b) in r.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn basic_arithmetic() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(div(&b, &a).unwrap().data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -1.0]);
        assert_eq!(add_scalar(&a, 2.0).data(), &[3.0, 1.0]);
        assert_eq!(scale(&a, -3.0).data(), &[-3.0, 3.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(&[1.0, 2.0]);
        let g = t(&[10.0, 20.0]);
        axpy(&mut a, -0.1, &g).unwrap();
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0]);
        assert!(add(&a, &b).is_err());
        let mut c = a.clone();
        assert!(axpy(&mut c, 1.0, &b).is_err());
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let bias = t(&[10.0, 20.0]);
        let out = add_row_broadcast(&m, &bias).unwrap();
        assert_eq!(out.data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn row_broadcast_validates_shapes() {
        let m = Tensor::zeros(&[2, 3]);
        assert!(add_row_broadcast(&m, &t(&[1.0, 2.0])).is_err());
        assert!(add_row_broadcast(&t(&[1.0]), &t(&[1.0])).is_err());
    }
}
