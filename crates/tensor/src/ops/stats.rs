//! Statistical utilities: per-axis moments and standardization.
//!
//! Used by analysis code (bias/variance style studies) and handy for
//! downstream users preprocessing tabular features.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Per-column mean of an `[m, n]` matrix.
pub fn mean_axis0(t: &Tensor) -> Result<Tensor> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    let (m, n) = (t.dims()[0], t.dims()[1]);
    if m == 0 {
        return Err(TensorError::Empty("mean over zero rows"));
    }
    let mut out = Tensor::zeros(&[n]);
    for i in 0..m {
        for (o, &v) in out.data_mut().iter_mut().zip(t.row(i)?.iter()) {
            *o += v;
        }
    }
    let inv = 1.0 / m as f32;
    out.map_in_place(|v| v * inv);
    Ok(out)
}

/// Per-column (population) variance of an `[m, n]` matrix.
pub fn var_axis0(t: &Tensor) -> Result<Tensor> {
    let mean = mean_axis0(t)?;
    let (m, n) = (t.dims()[0], t.dims()[1]);
    let mut out = Tensor::zeros(&[n]);
    for i in 0..m {
        let row = t.row(i)?;
        for (j, &x) in row.iter().enumerate() {
            let d = x - mean.data()[j];
            out.data_mut()[j] += d * d;
        }
    }
    let inv = 1.0 / m as f32;
    out.map_in_place(|v| v * inv);
    Ok(out)
}

/// Standardizes the columns of an `[m, n]` matrix to zero mean and unit
/// variance (columns with near-zero variance are left centered only).
pub fn standardize_axis0(t: &Tensor) -> Result<Tensor> {
    let mean = mean_axis0(t)?;
    let var = var_axis0(t)?;
    let (m, n) = (t.dims()[0], t.dims()[1]);
    let mut out = t.clone();
    for i in 0..m {
        let row = &mut out.data_mut()[i * n..(i + 1) * n];
        for (j, rv) in row.iter_mut().enumerate() {
            let centered = *rv - mean.data()[j];
            let v = var.data()[j];
            *rv = if v > 1e-12 {
                centered / v.sqrt()
            } else {
                centered
            };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Tensor {
        Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0, 5.0, 30.0], &[3, 2]).unwrap()
    }

    #[test]
    fn mean_axis0_is_column_mean() {
        let m = mean_axis0(&toy()).unwrap();
        assert_eq!(m.data(), &[3.0, 20.0]);
    }

    #[test]
    fn var_axis0_is_population_variance() {
        let v = var_axis0(&toy()).unwrap();
        // column 0: values 1,3,5 -> var 8/3
        assert!((v.data()[0] - 8.0 / 3.0).abs() < 1e-5);
        // column 1: values 10,20,30 -> var 200/3
        assert!((v.data()[1] - 200.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn standardize_produces_zero_mean_unit_var() {
        let s = standardize_axis0(&toy()).unwrap();
        let m = mean_axis0(&s).unwrap();
        let v = var_axis0(&s).unwrap();
        for j in 0..2 {
            assert!(m.data()[j].abs() < 1e-5);
            assert!((v.data()[j] - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_column_is_centered_not_divided() {
        let t = Tensor::from_vec(vec![5.0, 5.0, 5.0, 5.0], &[4, 1]).unwrap();
        let s = standardize_axis0(&t).unwrap();
        assert!(s.data().iter().all(|&v| v == 0.0));
        assert!(s.all_finite());
    }

    #[test]
    fn rank_and_emptiness_checked() {
        assert!(mean_axis0(&Tensor::zeros(&[3])).is_err());
        assert!(mean_axis0(&Tensor::zeros(&[0, 3])).is_err());
    }
}
