//! Pooling operations with backward passes.
//!
//! * [`max_pool2d`] / [`avg_pool2d`] — spatial pooling for CNN stages;
//! * [`global_avg_pool`] — the ResNet/DenseNet head;
//! * [`max_over_time`] — Text-CNN's max-over-time pooling.

use crate::error::{Result, TensorError};
use crate::ops::conv::out_dim;
use crate::tensor::Tensor;

fn check_rank4(t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

/// Max pooling over `[N,C,H,W]` with a square `k`×`k` window and stride `s`.
///
/// Returns the pooled tensor and the flat input index of each selected
/// maximum (needed by [`max_pool2d_backward`]).
pub fn max_pool2d(input: &Tensor, k: usize, s: usize) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = check_rank4(input)?;
    let oh = out_dim(h, k, s, 0)?;
    let ow = out_dim(w, k, s, 0)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    run_max_pool2d(
        out.data_mut(),
        Some(&mut argmax),
        input.data(),
        (n, c, h, w),
        k,
        s,
        (oh, ow),
    );
    Ok((out, argmax))
}

/// [`max_pool2d`] writing the pooled values into a caller-provided
/// `[N,C,OH,OW]` tensor without materializing the argmax — the
/// inference-only variant. Bit-identical values.
pub fn max_pool2d_into(input: &Tensor, k: usize, s: usize, dst: &mut Tensor) -> Result<()> {
    let (n, c, h, w) = check_rank4(input)?;
    let oh = out_dim(h, k, s, 0)?;
    let ow = out_dim(w, k, s, 0)?;
    if dst.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, oh, ow],
            right: dst.dims().to_vec(),
        });
    }
    run_max_pool2d(
        dst.data_mut(),
        None,
        input.data(),
        (n, c, h, w),
        k,
        s,
        (oh, ow),
    );
    Ok(())
}

/// Shared max-pool forward: one comparison chain per output element, the
/// same whether or not the argmax is recorded.
fn run_max_pool2d(
    out: &mut [f32],
    mut argmax: Option<&mut [usize]>,
    data: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    k: usize,
    s: usize,
    (oh, ow): (usize, usize),
) {
    let mut oi = 0usize;
    for sample in 0..n {
        for ch in 0..c {
            let base = (sample * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_v = f32::NEG_INFINITY;
                    let mut best_i = base;
                    for ky in 0..k {
                        let iy = oy * s + ky;
                        for kx in 0..k {
                            let ix = ox * s + kx;
                            let idx = base + iy * w + ix;
                            let v = data[idx];
                            if v > best_v {
                                best_v = v;
                                best_i = idx;
                            }
                        }
                    }
                    out[oi] = best_v;
                    if let Some(arg) = argmax.as_deref_mut() {
                        arg[oi] = best_i;
                    }
                    oi += 1;
                }
            }
        }
    }
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// position that won the max.
pub fn max_pool2d_backward(
    input_dims: &[usize],
    grad_out: &Tensor,
    argmax: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_out.len(),
        });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    let n = grad_in.len();
    for (&idx, &g) in argmax.iter().zip(grad_out.data().iter()) {
        if idx >= n {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![idx],
                shape: input_dims.to_vec(),
            });
        }
        grad_in.data_mut()[idx] += g;
    }
    Ok(grad_in)
}

/// Average pooling over `[N,C,H,W]` with a square `k`×`k` window and stride `s`.
pub fn avg_pool2d(input: &Tensor, k: usize, s: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_rank4(input)?;
    let oh = out_dim(h, k, s, 0)?;
    let ow = out_dim(w, k, s, 0)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    run_avg_pool2d(out.data_mut(), input.data(), (n, c, h, w), k, s, (oh, ow));
    Ok(out)
}

/// [`avg_pool2d`] writing into a caller-provided `[N,C,OH,OW]` tensor;
/// bit-identical values.
pub fn avg_pool2d_into(input: &Tensor, k: usize, s: usize, dst: &mut Tensor) -> Result<()> {
    let (n, c, h, w) = check_rank4(input)?;
    let oh = out_dim(h, k, s, 0)?;
    let ow = out_dim(w, k, s, 0)?;
    if dst.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, oh, ow],
            right: dst.dims().to_vec(),
        });
    }
    run_avg_pool2d(dst.data_mut(), input.data(), (n, c, h, w), k, s, (oh, ow));
    Ok(())
}

/// Shared average-pool forward: per-window ascending accumulation.
fn run_avg_pool2d(
    out: &mut [f32],
    data: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    k: usize,
    s: usize,
    (oh, ow): (usize, usize),
) {
    let inv = 1.0 / (k * k) as f32;
    let mut oi = 0usize;
    for sample in 0..n {
        for ch in 0..c {
            let base = (sample * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        let iy = oy * s + ky;
                        let row = base + iy * w + ox * s;
                        for kx in 0..k {
                            acc += data[row + kx];
                        }
                    }
                    out[oi] = acc * inv;
                    oi += 1;
                }
            }
        }
    }
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
pub fn avg_pool2d_backward(
    input_dims: &[usize],
    grad_out: &Tensor,
    k: usize,
    s: usize,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let oh = out_dim(h, k, s, 0)?;
    let ow = out_dim(w, k, s, 0)?;
    if grad_out.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c, oh, ow],
            right: grad_out.dims().to_vec(),
        });
    }
    let inv = 1.0 / (k * k) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let god = grad_out.data();
    let mut oi = 0usize;
    for sample in 0..n {
        for ch in 0..c {
            let base = (sample * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = god[oi] * inv;
                    oi += 1;
                    for ky in 0..k {
                        let iy = oy * s + ky;
                        let row = base + iy * w + ox * s;
                        for kx in 0..k {
                            grad_in.data_mut()[row + kx] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

/// Global average pooling: `[N,C,H,W] -> [N,C]`.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_rank4(input)?;
    if h * w == 0 {
        return Err(TensorError::Empty("global average over empty plane"));
    }
    let mut out = Tensor::zeros(&[n, c]);
    run_global_avg_pool(out.data_mut(), input.data(), (n, c, h, w));
    Ok(out)
}

/// [`global_avg_pool`] writing into a caller-provided `[N,C]` tensor;
/// bit-identical values.
pub fn global_avg_pool_into(input: &Tensor, dst: &mut Tensor) -> Result<()> {
    let (n, c, h, w) = check_rank4(input)?;
    if h * w == 0 {
        return Err(TensorError::Empty("global average over empty plane"));
    }
    if dst.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c],
            right: dst.dims().to_vec(),
        });
    }
    run_global_avg_pool(dst.data_mut(), input.data(), (n, c, h, w));
    Ok(())
}

/// Shared global-average forward: one in-order plane sum per channel.
fn run_global_avg_pool(out: &mut [f32], data: &[f32], (n, c, h, w): (usize, usize, usize, usize)) {
    let inv = 1.0 / (h * w) as f32;
    for s in 0..n {
        for ch in 0..c {
            let plane = &data[(s * c + ch) * h * w..][..h * w];
            out[s * c + ch] = plane.iter().sum::<f32>() * inv;
        }
    }
}

/// Backward pass of [`global_avg_pool`].
pub fn global_avg_pool_backward(input_dims: &[usize], grad_out: &Tensor) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_out.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c],
            right: grad_out.dims().to_vec(),
        });
    }
    let inv = 1.0 / (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    for s in 0..n {
        for ch in 0..c {
            let g = grad_out.data()[s * c + ch] * inv;
            let plane = &mut grad_in.data_mut()[(s * c + ch) * h * w..][..h * w];
            plane.fill(g);
        }
    }
    Ok(grad_in)
}

/// Max-over-time pooling: `[N,C,L] -> [N,C]`, plus the winning time index
/// per `(sample, channel)` for the backward pass.
pub fn max_over_time(input: &Tensor) -> Result<(Tensor, Vec<usize>)> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    let (n, c, l) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    if l == 0 {
        return Err(TensorError::Empty("max over zero time steps"));
    }
    let mut out = Tensor::zeros(&[n, c]);
    let mut arg = vec![0usize; n * c];
    run_max_over_time(out.data_mut(), Some(&mut arg), input.data(), (n, c, l));
    Ok((out, arg))
}

/// [`max_over_time`] writing the pooled values into a caller-provided
/// `[N,C]` tensor without the argmax; bit-identical values.
pub fn max_over_time_into(input: &Tensor, dst: &mut Tensor) -> Result<()> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    let (n, c, l) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    if l == 0 {
        return Err(TensorError::Empty("max over zero time steps"));
    }
    if dst.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c],
            right: dst.dims().to_vec(),
        });
    }
    run_max_over_time(dst.data_mut(), None, input.data(), (n, c, l));
    Ok(())
}

/// Shared max-over-time forward: first-max-wins scan per channel.
fn run_max_over_time(
    out: &mut [f32],
    mut argmax: Option<&mut [usize]>,
    data: &[f32],
    (n, c, l): (usize, usize, usize),
) {
    for s in 0..n {
        for ch in 0..c {
            let seq = &data[(s * c + ch) * l..][..l];
            let mut best = 0usize;
            for (t, &v) in seq.iter().enumerate() {
                if v > seq[best] {
                    best = t;
                }
            }
            out[s * c + ch] = seq[best];
            if let Some(arg) = argmax.as_deref_mut() {
                arg[s * c + ch] = best;
            }
        }
    }
}

/// Backward pass of [`max_over_time`].
#[allow(clippy::needless_range_loop)] // indexing argmax and grad rows in lockstep
pub fn max_over_time_backward(
    input_dims: &[usize],
    grad_out: &Tensor,
    argmax: &[usize],
) -> Result<Tensor> {
    if input_dims.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input_dims.len(),
        });
    }
    let (n, c, l) = (input_dims[0], input_dims[1], input_dims[2]);
    if grad_out.dims() != [n, c] || argmax.len() != n * c {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, c],
            right: grad_out.dims().to_vec(),
        });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    for i in 0..n * c {
        grad_in.data_mut()[i * l + argmax[i]] = grad_out.data()[i];
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        // 1 sample, 1 channel, 4x4
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, 9.0, 0.25, 0.125,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, arg) = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, 9.0, 0.5]);
        assert_eq!(arg, vec![5, 7, 13, 11]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn max_pool_backward_routes_to_winner() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let (_, arg) = max_pool2d(&input, 2, 2).unwrap();
        let g = Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]).unwrap();
        let gi = max_pool2d_backward(input.dims(), &g, &arg).unwrap();
        assert_eq!(gi.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avg_pool_and_backward_are_adjoint() {
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let out = avg_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.data(), &[2.5, 4.5, 10.5, 12.5]);
        let g = Tensor::ones(out.dims());
        let gi = avg_pool2d_backward(input.dims(), &g, 2, 2).unwrap();
        // every input position contributes to exactly one window
        assert!(gi.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_averages_planes() {
        let input = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[1.5, 5.5]);
        let g = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gi = global_avg_pool_backward(input.dims(), &g).unwrap();
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn max_over_time_selects_peak() {
        let input = Tensor::from_vec(vec![0.0, 3.0, 1.0, -5.0, -1.0, -2.0], &[1, 2, 3]).unwrap();
        let (out, arg) = max_over_time(&input).unwrap();
        assert_eq!(out.data(), &[3.0, -1.0]);
        assert_eq!(arg, vec![1, 1]);
        let g = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let gi = max_over_time_backward(input.dims(), &g, &arg).unwrap();
        assert_eq!(gi.data(), &[0.0, 1.0, 0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn pooling_shape_validation() {
        let t3 = Tensor::zeros(&[1, 2, 3]);
        assert!(max_pool2d(&t3, 2, 2).is_err());
        assert!(global_avg_pool(&t3).is_err());
        let t4 = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(max_pool2d(&t4, 3, 1).is_err()); // kernel > input
        assert!(max_over_time(&t4).is_err());
    }

    #[test]
    fn stride_one_overlapping_windows() {
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        )
        .unwrap();
        let (out, _) = max_pool2d(&input, 2, 1).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 6.0, 8.0, 9.0]);
    }
}
