//! im2col-based 2-D and 1-D convolution with full backward passes.
//!
//! Layout conventions (all row-major):
//!
//! * 2-D inputs are `[N, C, H, W]`, kernels `[OC, C, KH, KW]`;
//! * 1-D inputs are `[N, C, L]`, kernels `[OC, C, K]` (used by Text-CNN).
//!
//! Each sample's receptive fields are unrolled into a column matrix
//! (`im2col`) borrowed from the thread-local [`crate::scratch`] arena,
//! turning convolution into serial tiled matmuls per sample while the
//! batch fans out across the persistent worker pool.
//!
//! # Determinism
//!
//! Forward outputs and `grad_input` are per-sample-disjoint, so batch
//! parallelism cannot affect them. The reduced gradients (`grad_weight`,
//! `grad_bias`) are summed via *fixed-size sample groups*
//! ([`SAMPLE_GROUP`]): group boundaries depend only on the batch size,
//! each group accumulates its samples in ascending order, and the group
//! partials are reduced serially in ascending group order — so the
//! floating-point summation tree is identical at every thread count.

use crate::error::{Result, TensorError};
use crate::ops::matmul::{gemm_ab_into, gemm_atb_into, transpose_into};
use crate::parallel::{for_each_row_chunk, run_chunks};
use crate::scratch;
use crate::tensor::Tensor;

/// Samples per backward reduction group. Fixed (not derived from the
/// thread count) so `grad_weight`/`grad_bias` summation order — and hence
/// their bit patterns — never depend on parallelism.
const SAMPLE_GROUP: usize = 8;

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// `dL/d input`, shaped like the forward input `[N, C, H, W]`.
    pub grad_input: Tensor,
    /// `dL/d weight`, shaped `[OC, C, KH, KW]`.
    pub grad_weight: Tensor,
    /// `dL/d bias`, shaped `[OC]`.
    pub grad_bias: Tensor,
}

/// Gradients produced by [`conv1d_backward`].
#[derive(Debug, Clone)]
pub struct Conv1dGrads {
    /// `dL/d input`, shaped `[N, C, L]`.
    pub grad_input: Tensor,
    /// `dL/d weight`, shaped `[OC, C, K]`.
    pub grad_weight: Tensor,
    /// `dL/d bias`, shaped `[OC]`.
    pub grad_bias: Tensor,
}

/// Output spatial size of a convolution/pooling dimension.
#[inline]
pub fn out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize> {
    let padded = input + 2 * pad;
    if kernel == 0 || stride == 0 {
        return Err(TensorError::InvalidGeometry(
            "kernel and stride must be positive".into(),
        ));
    }
    if padded < kernel {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel {kernel} larger than padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Unrolls one `[C, H, W]` sample into a `[C*KH*KW, OH*OW]` column matrix.
#[allow(clippy::too_many_arguments)]
fn im2col_sample(
    sample: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    col: &mut [f32],
) {
    let l = oh * ow;
    debug_assert_eq!(col.len(), c * kh * kw * l);
    for ch in 0..c {
        let plane = &sample[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &mut col[(ch * kh * kw + ky * kw + kx) * l..][..l];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let dst = &mut row[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        *d = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters a `[C*KH*KW, OH*OW]` column-gradient matrix back into a
/// `[C, H, W]` input-gradient sample (the adjoint of `im2col_sample`).
#[allow(clippy::too_many_arguments)]
fn col2im_sample(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    grad_sample: &mut [f32],
) {
    let l = oh * ow;
    for ch in 0..c {
        let plane = &mut grad_sample[ch * h * w..(ch + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = &col[(ch * kh * kw + ky * kw + kx) * l..][..l];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = &mut plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst_row[ix as usize] += row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

fn conv2d_geometry(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
        });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: weight.rank(),
        });
    }
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oc, wc, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    let oh = out_dim(h, kh, stride, pad)?;
    let ow = out_dim(w, kw, stride, pad)?;
    let _ = (n, oc);
    Ok((n, c, h, w, oc, oh, ow))
}

/// 2-D convolution: `input [N,C,H,W] * weight [OC,C,KH,KW] (+ bias [OC])
/// -> [N,OC,OH,OW]`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (n, c, h, w, oc, oh, ow) = conv2d_geometry(input, weight, stride, pad)?;
    let (kh, kw) = (weight.dims()[2], weight.dims()[3]);
    if let Some(b) = bias {
        if b.dims() != [oc] {
            return Err(TensorError::ShapeMismatch {
                left: vec![oc],
                right: b.dims().to_vec(),
            });
        }
    }
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let geo = ConvGeo {
        c,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        oc,
        oh,
        ow,
    };
    run_conv2d(
        out.data_mut(),
        input.data(),
        weight.data(),
        bias.map(|b| b.data()),
        &geo,
    );
    Ok(out)
}

/// [`conv2d`] writing into a caller-provided `[N,OC,OH,OW]` tensor: same
/// im2col + gemm path, same pool chunking, bit-identical output. `dst` is
/// fully overwritten.
pub fn conv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    dst: &mut Tensor,
) -> Result<()> {
    let (n, c, h, w, oc, oh, ow) = conv2d_geometry(input, weight, stride, pad)?;
    let (kh, kw) = (weight.dims()[2], weight.dims()[3]);
    if let Some(b) = bias {
        if b.dims() != [oc] {
            return Err(TensorError::ShapeMismatch {
                left: vec![oc],
                right: b.dims().to_vec(),
            });
        }
    }
    if dst.dims() != [n, oc, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, oc, oh, ow],
            right: dst.dims().to_vec(),
        });
    }
    dst.data_mut().fill(0.0);
    let geo = ConvGeo {
        c,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        oc,
        oh,
        ow,
    };
    run_conv2d(
        dst.data_mut(),
        input.data(),
        weight.data(),
        bias.map(|b| b.data()),
        &geo,
    );
    Ok(())
}

/// Per-sample convolution geometry shared by the allocating and `_into`
/// entry points.
struct ConvGeo {
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oc: usize,
    oh: usize,
    ow: usize,
}

/// Shared forward dispatch over a zeroed `[N,OC,OH,OW]` output slice.
fn run_conv2d(
    out: &mut [f32],
    in_data: &[f32],
    wd: &[f32],
    bias_data: Option<&[f32]>,
    g: &ConvGeo,
) {
    let ckk = g.c * g.kh * g.kw;
    let l = g.oh * g.ow;
    // One "row" per sample: samples are independent, so the batch fans out
    // across the pool while each sample runs one serial tiled matmul on a
    // scratch column matrix.
    for_each_row_chunk(out, g.oc * l, |s0, chunk| {
        let mut col = scratch::take(ckk * l);
        for (si, dst) in chunk.chunks_mut(g.oc * l).enumerate() {
            let s = s0 + si;
            let sample = &in_data[s * g.c * g.h * g.w..(s + 1) * g.c * g.h * g.w];
            im2col_sample(
                sample, g.c, g.h, g.w, g.kh, g.kw, g.stride, g.pad, g.oh, g.ow, &mut col,
            );
            // dst is zeroed, so += gives W[oc,ckk] · col[ckk,l].
            gemm_ab_into(dst, wd, &col, g.oc, ckk, l);
            if let Some(bd) = bias_data {
                for (o, row) in dst.chunks_mut(l).enumerate() {
                    let bv = bd[o];
                    for v in row.iter_mut() {
                        *v += bv;
                    }
                }
            }
        }
    });
}

/// Backward pass of [`conv2d`]. `grad_out` must be `[N, OC, OH, OW]`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Conv2dGrads> {
    let (n, c, h, w, oc, oh, ow) = conv2d_geometry(input, weight, stride, pad)?;
    let (kh, kw) = (weight.dims()[2], weight.dims()[3]);
    if grad_out.dims() != [n, oc, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, oc, oh, ow],
            right: grad_out.dims().to_vec(),
        });
    }
    let ckk = c * kh * kw;
    let l = oh * ow;
    let wd = weight.data(); // [oc, ckk] row-major
    let in_data = input.data();
    let go_data = grad_out.data();
    let mut grad_w = Tensor::zeros(&[oc, ckk]);
    let mut grad_b = Tensor::zeros(&[oc]);
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);

    // Each group owns a private partial for the reduced gradients (stored
    // transposed, [ckk, oc], so the per-sample gemm reduces over the
    // spatial axis with contiguous loads) plus the `oc` bias slots.
    let groups = n.div_ceil(SAMPLE_GROUP);
    let part_stride = ckk * oc + oc;
    let mut partials = vec![0.0f32; groups * part_stride];
    let part_base = partials.as_mut_ptr() as usize;
    let gi_base = grad_in.data_mut().as_mut_ptr() as usize;
    let chw = c * h * w;
    run_chunks(groups, |g| {
        // SAFETY: group `g` touches only its own partial slice and the
        // `grad_input` slices of its own samples; groups are disjoint and
        // the dispatch blocks until all complete.
        let part = unsafe {
            std::slice::from_raw_parts_mut(
                (part_base as *mut f32).add(g * part_stride),
                part_stride,
            )
        };
        let (gwt, gb) = part.split_at_mut(ckk * oc);
        let mut col = scratch::take(ckk * l);
        let mut gcol = scratch::take(ckk * l);
        let mut got = scratch::take(l * oc);
        for s in g * SAMPLE_GROUP..((g + 1) * SAMPLE_GROUP).min(n) {
            let sample = &in_data[s * chw..(s + 1) * chw];
            im2col_sample(sample, c, h, w, kh, kw, stride, pad, oh, ow, &mut col);
            let go = &go_data[s * oc * l..(s + 1) * oc * l]; // [oc, l]
                                                             // dWᵀ += col[ckk,l] · dYᵀ[l,oc]  (transpose dY, the smaller
                                                             // operand, so the gemm streams both inputs row-contiguously)
            transpose_into(&mut got, go, oc, l);
            gemm_ab_into(gwt, &col, &got, ckk, l, oc);
            // db += row sums of dY
            for (o, gbo) in gb.iter_mut().enumerate() {
                *gbo += go[o * l..(o + 1) * l].iter().sum::<f32>();
            }
            // d(col) = Wᵀ[ckk,oc] · dY[oc,l], scattered back through col2im
            gcol.fill(0.0);
            gemm_atb_into(&mut gcol, wd, go, oc, ckk, l, 0, ckk);
            let gs =
                unsafe { std::slice::from_raw_parts_mut((gi_base as *mut f32).add(s * chw), chw) };
            col2im_sample(&gcol, c, h, w, kh, kw, stride, pad, oh, ow, gs);
        }
    });
    // Serial reduction in ascending group order (see module docs), undoing
    // the [ckk, oc] transposition of the weight-gradient partials.
    for g in 0..groups {
        let part = &partials[g * part_stride..(g + 1) * part_stride];
        let gwd = grad_w.data_mut();
        for q in 0..ckk {
            for o in 0..oc {
                gwd[o * ckk + q] += part[q * oc + o];
            }
        }
        for o in 0..oc {
            grad_b.data_mut()[o] += part[ckk * oc + o];
        }
    }
    Ok(Conv2dGrads {
        grad_input: grad_in,
        grad_weight: grad_w.reshape(&[oc, c, kh, kw])?,
        grad_bias: grad_b,
    })
}

/// 1-D convolution: `input [N,C,L] * weight [OC,C,K] (+ bias [OC])
/// -> [N,OC,OL]` with the given stride and symmetric zero padding along L.
///
/// Padding only applies along the length axis (height stays 1 after lifting
/// to 2-D), so it is baked into the lifted input explicitly rather than
/// passed to `conv2d`'s symmetric pad.
pub fn conv1d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Result<Tensor> {
    let (i4, w4) = lift_1d(input, weight, pad)?;
    let out = conv2d(&i4, &w4, bias, stride, 0)?;
    // [N, OC, 1, OL] -> [N, OC, OL]
    let d = out.dims().to_vec();
    out.reshape(&[d[0], d[1], d[3]])
}

/// [`conv1d`] writing into a caller-provided `[N,OC,OL]` tensor:
/// bit-identical to [`conv1d`], but the length-axis padding goes through a
/// scratch buffer and the `[OC,C,K]` weight is used in place (it is already
/// `[OC,C,1,K]` row-major), so nothing is allocated in steady state.
pub fn conv1d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    dst: &mut Tensor,
) -> Result<()> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    if weight.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: weight.rank(),
        });
    }
    let (n, c, l) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (oc, wc, k) = (weight.dims()[0], weight.dims()[1], weight.dims()[2]);
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            left: input.dims().to_vec(),
            right: weight.dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.dims() != [oc] {
            return Err(TensorError::ShapeMismatch {
                left: vec![oc],
                right: b.dims().to_vec(),
            });
        }
    }
    let ol = out_dim(l, k, stride, pad)?;
    if dst.dims() != [n, oc, ol] {
        return Err(TensorError::ShapeMismatch {
            left: vec![n, oc, ol],
            right: dst.dims().to_vec(),
        });
    }
    let lp = l + 2 * pad;
    let geo = ConvGeo {
        c,
        h: 1,
        w: lp,
        kh: 1,
        kw: k,
        stride,
        pad: 0,
        oc,
        oh: 1,
        ow: ol,
    };
    dst.data_mut().fill(0.0);
    if pad == 0 {
        run_conv2d(
            dst.data_mut(),
            input.data(),
            weight.data(),
            bias.map(|b| b.data()),
            &geo,
        );
    } else {
        // Same zero-padded layout lift_1d builds, in scratch.
        let mut padded = scratch::take_zeroed(n * c * lp);
        for s in 0..n {
            for ch in 0..c {
                let src = &input.data()[(s * c + ch) * l..][..l];
                padded[(s * c + ch) * lp + pad..][..l].copy_from_slice(src);
            }
        }
        run_conv2d(
            dst.data_mut(),
            &padded,
            weight.data(),
            bias.map(|b| b.data()),
            &geo,
        );
    }
    Ok(())
}

/// Backward pass of [`conv1d`].
pub fn conv1d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
) -> Result<Conv1dGrads> {
    let (i4, w4) = lift_1d(input, weight, pad)?;
    let gd = grad_out.dims();
    if grad_out.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: grad_out.rank(),
        });
    }
    let go4 = grad_out.reshape(&[gd[0], gd[1], 1, gd[2]])?;
    let grads = conv2d_backward(&i4, &w4, &go4, stride, 0)?;
    let id = input.dims();
    let wd = weight.dims();
    // Strip the explicit length padding out of the input gradient.
    let (n, c, l) = (id[0], id[1], id[2]);
    let lp = l + 2 * pad;
    let gi_padded = grads.grad_input; // [n, c, 1, lp]
    let mut grad_input = Tensor::zeros(&[n, c, l]);
    for s in 0..n {
        for ch in 0..c {
            let src = &gi_padded.data()[(s * c + ch) * lp..][pad..pad + l];
            grad_input.data_mut()[(s * c + ch) * l..][..l].copy_from_slice(src);
        }
    }
    Ok(Conv1dGrads {
        grad_input,
        grad_weight: grads.grad_weight.reshape(&[wd[0], wd[1], wd[2]])?,
        grad_bias: grads.grad_bias,
    })
}

/// Lifts `[N,C,L]` / `[OC,C,K]` to 4-D, zero-padding the length axis by
/// `pad` on both sides.
fn lift_1d(input: &Tensor, weight: &Tensor, pad: usize) -> Result<(Tensor, Tensor)> {
    if input.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: input.rank(),
        });
    }
    if weight.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: weight.rank(),
        });
    }
    let id = input.dims();
    let wd = weight.dims();
    let (n, c, l) = (id[0], id[1], id[2]);
    let i4 = if pad == 0 {
        input.reshape(&[n, c, 1, l])?
    } else {
        let lp = l + 2 * pad;
        let mut padded = Tensor::zeros(&[n, c, 1, lp]);
        for s in 0..n {
            for ch in 0..c {
                let src = &input.data()[(s * c + ch) * l..][..l];
                padded.data_mut()[(s * c + ch) * lp + pad..][..l].copy_from_slice(src);
            }
        }
        padded
    };
    let w4 = weight.reshape(&[wd[0], wd[1], 1, wd[2]])?;
    Ok((i4, w4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rand_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct (quadruple-loop) convolution used as the test oracle.
    fn naive_conv2d(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oc, _, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (w + 2 * pad - kw) / stride + 1;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map_or(0.0, |b| b.data()[o]);
                        for ch in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                        let iv =
                                            input.at(&[s, ch, iy as usize, ix as usize]).unwrap();
                                        let wv = weight.at(&[o, ch, ky, kx]).unwrap();
                                        acc += iv * wv;
                                    }
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn conv2d_matches_naive() {
        let mut r = StdRng::seed_from_u64(3);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let input = rand_uniform(&[2, 3, 6, 5], -1.0, 1.0, &mut r);
            let weight = rand_uniform(&[4, 3, 3, 3], -1.0, 1.0, &mut r);
            let bias = rand_uniform(&[4], -0.5, 0.5, &mut r);
            let got = conv2d(&input, &weight, Some(&bias), stride, pad).unwrap();
            let want = naive_conv2d(&input, &weight, Some(&bias), stride, pad);
            assert_close(&got, &want, 1e-4);
        }
    }

    #[test]
    fn conv2d_1x1_kernel_is_channel_mix() {
        let mut r = StdRng::seed_from_u64(5);
        let input = rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, &mut r);
        let weight = rand_uniform(&[5, 2, 1, 1], -1.0, 1.0, &mut r);
        let got = conv2d(&input, &weight, None, 1, 0).unwrap();
        let want = naive_conv2d(&input, &weight, None, 1, 0);
        assert_close(&got, &want, 1e-5);
        assert_eq!(got.dims(), &[1, 5, 3, 3]);
    }

    /// Numerical gradient check: perturb each coordinate and compare the
    /// finite-difference quotient against the analytic backward pass, with
    /// loss L = Σ out ⊙ G for a fixed random G (so dL/dout = G).
    #[test]
    fn conv2d_backward_matches_numerical_gradient() {
        let mut r = StdRng::seed_from_u64(17);
        let input = rand_uniform(&[1, 2, 5, 4], -1.0, 1.0, &mut r);
        let weight = rand_uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut r);
        let (stride, pad) = (1, 1);
        let out = conv2d(&input, &weight, None, stride, pad).unwrap();
        let g = rand_uniform(out.dims(), -1.0, 1.0, &mut r);
        let grads = conv2d_backward(&input, &weight, &g, stride, pad).unwrap();

        let loss = |inp: &Tensor, wt: &Tensor| -> f32 {
            let o = conv2d(inp, wt, None, stride, pad).unwrap();
            o.data()
                .iter()
                .zip(g.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        // check a sample of input coordinates
        for &i in &[0usize, 7, 19, input.len() - 1] {
            let mut p = input.clone();
            p.data_mut()[i] += eps;
            let mut m = input.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p, &weight) - loss(&m, &weight)) / (2.0 * eps);
            let ana = grads.grad_input.data()[i];
            assert!(
                (num - ana).abs() < 2e-2,
                "input[{i}]: num {num} vs ana {ana}"
            );
        }
        // and weight coordinates
        for &i in &[0usize, 5, 11, weight.len() - 1] {
            let mut p = weight.clone();
            p.data_mut()[i] += eps;
            let mut m = weight.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&input, &p) - loss(&input, &m)) / (2.0 * eps);
            let ana = grads.grad_weight.data()[i];
            assert!(
                (num - ana).abs() < 2e-2,
                "weight[{i}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn conv2d_backward_bias_is_grad_sum() {
        let mut r = StdRng::seed_from_u64(23);
        let input = rand_uniform(&[2, 1, 4, 4], -1.0, 1.0, &mut r);
        let weight = rand_uniform(&[2, 1, 3, 3], -1.0, 1.0, &mut r);
        let out = conv2d(&input, &weight, None, 1, 0).unwrap();
        let g = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &g, 1, 0).unwrap();
        let per_channel = (out.len() / 2) as f32; // N * OH * OW per channel
        assert_close(
            &grads.grad_bias,
            &Tensor::from_slice(&[per_channel, per_channel]),
            1e-4,
        );
    }

    #[test]
    fn conv1d_matches_lifted_conv2d_semantics() {
        let mut r = StdRng::seed_from_u64(29);
        let input = rand_uniform(&[2, 3, 10], -1.0, 1.0, &mut r);
        let weight = rand_uniform(&[4, 3, 3], -1.0, 1.0, &mut r);
        let bias = rand_uniform(&[4], -0.1, 0.1, &mut r);
        let out = conv1d(&input, &weight, Some(&bias), 1, 0).unwrap();
        assert_eq!(out.dims(), &[2, 4, 8]);
        // spot check one output element against the direct sum
        let mut acc = bias.data()[1];
        for c in 0..3 {
            for k in 0..3 {
                acc += input.at(&[0, c, 2 + k]).unwrap() * weight.at(&[1, c, k]).unwrap();
            }
        }
        assert!((out.at(&[0, 1, 2]).unwrap() - acc).abs() < 1e-4);
    }

    #[test]
    fn conv1d_backward_shapes_and_gradient() {
        let mut r = StdRng::seed_from_u64(31);
        let input = rand_uniform(&[1, 2, 8], -1.0, 1.0, &mut r);
        let weight = rand_uniform(&[3, 2, 3], -1.0, 1.0, &mut r);
        let out = conv1d(&input, &weight, None, 1, 0).unwrap();
        let g = rand_uniform(out.dims(), -1.0, 1.0, &mut r);
        let grads = conv1d_backward(&input, &weight, &g, 1, 0).unwrap();
        assert_eq!(grads.grad_input.dims(), input.dims());
        assert_eq!(grads.grad_weight.dims(), weight.dims());
        assert_eq!(grads.grad_bias.dims(), &[3]);

        let loss = |wt: &Tensor| -> f32 {
            let o = conv1d(&input, wt, None, 1, 0).unwrap();
            o.data()
                .iter()
                .zip(g.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        let i = 4;
        let mut p = weight.clone();
        p.data_mut()[i] += eps;
        let mut m = weight.clone();
        m.data_mut()[i] -= eps;
        let num = (loss(&p) - loss(&m)) / (2.0 * eps);
        assert!((num - grads.grad_weight.data()[i]).abs() < 2e-2);
    }

    #[test]
    fn conv1d_padding_preserves_length_and_gradients() {
        let mut r = StdRng::seed_from_u64(37);
        let input = rand_uniform(&[2, 2, 9], -1.0, 1.0, &mut r);
        let weight = rand_uniform(&[3, 2, 3], -1.0, 1.0, &mut r);
        let out = conv1d(&input, &weight, None, 1, 1).unwrap();
        assert_eq!(out.dims(), &[2, 3, 9]); // "same" padding for k=3, pad=1

        // first output position only sees positions 0..2 with a leading zero
        let mut acc = 0.0;
        for c in 0..2 {
            for k in 1..3 {
                acc += input.at(&[0, c, k - 1]).unwrap() * weight.at(&[0, c, k]).unwrap();
            }
        }
        assert!((out.at(&[0, 0, 0]).unwrap() - acc).abs() < 1e-4);

        // gradient check through the padded path
        let g = rand_uniform(out.dims(), -1.0, 1.0, &mut r);
        let grads = conv1d_backward(&input, &weight, &g, 1, 1).unwrap();
        assert_eq!(grads.grad_input.dims(), input.dims());
        let loss = |inp: &Tensor| -> f32 {
            let o = conv1d(inp, &weight, None, 1, 1).unwrap();
            o.data()
                .iter()
                .zip(g.data().iter())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 8, 17] {
            let mut p = input.clone();
            p.data_mut()[i] += eps;
            let mut m = input.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p) - loss(&m)) / (2.0 * eps);
            let ana = grads.grad_input.data()[i];
            assert!(
                (num - ana).abs() < 2e-2,
                "input[{i}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn geometry_errors() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(conv2d(&input, &weight, None, 1, 0).is_err()); // kernel > input
        let weight2 = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(conv2d(&input, &weight2, None, 1, 0).is_err()); // channel mismatch
        let bad_bias = Tensor::zeros(&[3]);
        let weight3 = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(conv2d(&input, &weight3, Some(&bad_bias), 1, 0).is_err());
    }
}
