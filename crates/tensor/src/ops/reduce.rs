//! Reductions and row-wise softmax utilities.
//!
//! The softmax variants are row-independent, so large matrices fan rows
//! out over the persistent worker pool; every row is computed by the same
//! serial code wherever it lands, keeping results bit-identical across
//! thread counts. Full reductions (`sum_all`, `sum_axis0`) stay serial —
//! their accumulation order *is* their determinism contract.

use crate::error::{Result, TensorError};
use crate::parallel::for_each_row_chunk;
use crate::tensor::Tensor;

/// Sum of all elements.
pub fn sum_all(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// Mean of all elements. Errors on an empty tensor.
pub fn mean_all(t: &Tensor) -> Result<f32> {
    if t.is_empty() {
        return Err(TensorError::Empty("mean of empty tensor"));
    }
    Ok(sum_all(t) / t.len() as f32)
}

/// Column sums of an `[m, n]` matrix → length-`n` vector. This is the bias
/// gradient of a dense layer.
pub fn sum_axis0(t: &Tensor) -> Result<Tensor> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    let (m, n) = (t.dims()[0], t.dims()[1]);
    let mut out = Tensor::zeros(&[n]);
    for i in 0..m {
        let row = &t.data()[i * n..(i + 1) * n];
        for (o, &v) in out.data_mut().iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
    Ok(out)
}

/// Sum of squared elements, computed in the [`crate::simd`] fixed-lane
/// fused layout (bit-identical across backends). This is the building
/// block of the Eq. 2 diversity norm; see [`crate::simd::sq_l2_dist`] for
/// the two-operand distance form.
pub fn sum_sq(t: &Tensor) -> f32 {
    crate::simd::sum_sq(t.data())
}

/// Row-wise maxima of an `[m, n]` matrix → length-`m` vector.
pub fn max_rows(t: &Tensor) -> Result<Tensor> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    let (m, n) = (t.dims()[0], t.dims()[1]);
    if n == 0 {
        return Err(TensorError::Empty("max over zero columns"));
    }
    let mut out = Tensor::zeros(&[m]);
    for i in 0..m {
        let row = &t.data()[i * n..(i + 1) * n];
        out.data_mut()[i] = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    }
    Ok(out)
}

/// Row-wise argmax of an `[m, n]` matrix. Ties break toward the lower index,
/// matching the usual "first max" convention of classification heads.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    let (m, n) = (t.dims()[0], t.dims()[1]);
    if n == 0 {
        return Err(TensorError::Empty("argmax over zero columns"));
    }
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        let row = &t.data()[i * n..(i + 1) * n];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// Numerically-stable row-wise softmax of an `[m, n]` logits matrix.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        });
    }
    let n = logits.dims()[1];
    if n == 0 {
        return Err(TensorError::Empty("softmax over zero classes"));
    }
    let mut out = logits.clone();
    run_softmax_rows(out.data_mut(), n);
    Ok(out)
}

/// [`softmax_rows`] applied in place to an `[m, n]` logits matrix — the
/// allocation-free variant for buffers an inference context already owns.
/// Bit-identical to the allocating path (rows are independent, so chunk
/// boundaries cannot change any value).
pub fn softmax_rows_in_place(logits: &mut Tensor) -> Result<()> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        });
    }
    let n = logits.dims()[1];
    if n == 0 {
        return Err(TensorError::Empty("softmax over zero classes"));
    }
    run_softmax_rows(logits.data_mut(), n);
    Ok(())
}

/// Shared row-softmax kernel over a `[m, n]` slice.
fn run_softmax_rows(out: &mut [f32], n: usize) {
    for_each_row_chunk(out, n, |_, chunk| {
        for row in chunk.chunks_mut(n) {
            // SIMD row max and final scale; the exp + ascending sum stays
            // scalar — its sequential order is the training-numerics
            // contract and it is transcendental-bound anyway.
            let max = crate::simd::row_max(row);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            crate::simd::scale_in_place(row, 1.0 / sum);
        }
    });
}

/// Numerically-stable row-wise log-softmax (`log p`) of a logits matrix.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
        });
    }
    let n = logits.dims()[1];
    if n == 0 {
        return Err(TensorError::Empty("log-softmax over zero classes"));
    }
    let mut out = logits.clone();
    for_each_row_chunk(out.data_mut(), n, |_, chunk| {
        for row in chunk.chunks_mut(n) {
            let max = crate::simd::row_max(row);
            let log_sum = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            for v in row.iter_mut() {
                *v -= log_sum;
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(sum_all(&t), 10.0);
        assert_eq!(mean_all(&t).unwrap(), 2.5);
        assert!(mean_all(&Tensor::zeros(&[0])).is_err());
    }

    #[test]
    fn sum_axis0_is_column_sum() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(sum_axis0(&t).unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn max_and_argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.3, 0.3, 0.2], &[2, 3]).unwrap();
        assert_eq!(max_rows(&t).unwrap().data(), &[0.9, 0.3]);
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]); // tie -> first index
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = softmax_rows(&t).unwrap();
        for i in 0..2 {
            let row = p.row(i).unwrap();
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = Tensor::from_vec(vec![1001.0, 1002.0, 1003.0], &[1, 3]).unwrap();
        let pa = softmax_rows(&a).unwrap();
        let pb = softmax_rows(&b).unwrap();
        for (x, y) in pa.data().iter().zip(pb.data().iter()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert!(pb.all_finite());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 2.0, 1.0], &[1, 4]).unwrap();
        let ls = log_softmax_rows(&t).unwrap();
        let p = softmax_rows(&t).unwrap();
        for (l, q) in ls.data().iter().zip(p.data().iter()) {
            assert!((l - q.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn rank_errors() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        assert!(softmax_rows(&v).is_err());
        assert!(argmax_rows(&v).is_err());
        assert!(sum_axis0(&v).is_err());
    }
}
