//! # edde-tensor
//!
//! A small, dependency-light dense tensor library built for the EDDE
//! (Efficient Diversity-Driven Ensemble, ICDE 2020) reproduction.
//!
//! The crate provides exactly what a from-scratch deep-learning stack needs:
//!
//! * [`Tensor`] — a contiguous, row-major, `f32` n-dimensional array;
//! * elementwise arithmetic with scalar and row broadcasting ([`ops`]);
//! * register-tiled matrix multiply on a persistent worker pool
//!   ([`ops::matmul`], [`parallel`]), with runtime-dispatched explicit
//!   AVX2+FMA kernels and a bit-identical scalar fallback ([`simd`]);
//! * im2col-based 2-D and 1-D convolution using reusable scratch buffers
//!   ([`ops::conv`], [`scratch`]);
//! * max/avg pooling with backward index maps ([`ops::pool`]);
//! * reductions, softmax, and argmax ([`ops::reduce`]);
//! * seeded random fills (uniform, normal via Box–Muller) ([`rng`]);
//! * a compact binary serialization format ([`serialize`]);
//! * self-describing codec chains (f16 / symmetric int8 array stages,
//!   delta+bitpack and LZ byte stages) for compressed weight payloads
//!   ([`codec`]), with an int8×int8→i32 gemm behind the same SIMD
//!   dispatch ([`simd::gemm_i8_i32`]).
//!
//! Everything is deterministic given a seed, which the ensemble experiments
//! rely on for reproducibility.
//!
//! ```
//! use edde_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = edde_tensor::ops::matmul(&a, &b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

pub mod codec;
pub mod config;
pub mod crc32;
pub mod env;
pub mod error;
pub mod ops;
pub mod parallel;
pub mod rng;
pub mod scratch;
pub mod serialize;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use config::{EddeConfig, EddeConfigBuilder};
pub use error::{Result, TensorError};
pub use shape::Shape;
pub use tensor::Tensor;
