//! `EddeConfig` — the unified runtime configuration for the whole stack.
//!
//! Every `EDDE_*` tuning knob in the workspace resolves through this one
//! type, in three layers: **builder override > environment > compiled
//! default**. Resolution happens once — at [`EddeConfig::from_env`] or
//! [`EddeConfigBuilder::resolve`] — and the resulting value is a plain
//! `Clone`-able struct that long-lived objects (`TrainLoop` checkpoints,
//! `RunSession`, `ServeCore`, stream reducers) carry by value, so hot
//! paths never touch the environment after construction.
//!
//! The environment leg uses the warn-and-fallback parser family in
//! [`crate::env`] (the `EnvSource` layer): garbage values degrade to the
//! compiled default with a stderr warning, never a panic.
//!
//! A resolved config serializes to a canonical single-line snapshot
//! ([`EddeConfig::snapshot`], round-tripped by
//! [`EddeConfig::from_snapshot`]) that run manifests and bench history
//! rows embed, so every recorded result carries the exact configuration
//! that produced it. None of these knobs affect computed bits — they
//! steer batching, chunking, and scheduling only — which is why the
//! snapshot is recorded alongside results rather than folded into the
//! run fingerprint.

use crate::env::{env_bool, env_f64, env_lookup, env_usize};
use crate::simd::ScalarGuard;

/// Compiled default for `EDDE_EVAL_BATCH`.
pub const DEFAULT_EVAL_BATCH: usize = 256;
/// Compiled default for `EDDE_STREAM_BATCH`.
pub const DEFAULT_STREAM_BATCH: usize = 256;
/// Compiled default for `EDDE_CHUNK_BYTES`.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;
/// Compiled default for `EDDE_POOL_RETAIN`.
pub const DEFAULT_POOL_RETAIN: usize = 32;
/// Compiled default for `EDDE_SERVE_QUEUE`.
pub const DEFAULT_SERVE_QUEUE: usize = 256;
/// Compiled default for `EDDE_SERVE_BATCH_DEADLINE_US`.
pub const DEFAULT_SERVE_BATCH_DEADLINE_US: usize = 2000;
/// Compiled default for `EDDE_SERVE_WORKERS`.
pub const DEFAULT_SERVE_WORKERS: usize = 1;
/// Compiled default for `EDDE_DRIFT_SEVERITY_PCT`.
pub const DEFAULT_DRIFT_SEVERITY_PCT: f64 = 50.0;
/// Compiled default for `EDDE_DRIFT_VOCAB_PCT`.
pub const DEFAULT_DRIFT_VOCAB_PCT: f64 = 30.0;

/// The resolved runtime configuration: one field per `EDDE_*` knob,
/// grouped by owning layer. See the README knob table for the full
/// variable ↔ field ↔ default mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct EddeConfig {
    // -- edde_core ---------------------------------------------------
    /// `EDDE_EVAL_BATCH`: rows per forward pass in batched evaluation.
    pub eval_batch: usize,
    /// `EDDE_SHARDED_CKPT`: write per-epoch checkpoints as chunk shards.
    pub sharded_ckpt: bool,
    // -- edde_data ---------------------------------------------------
    /// `EDDE_STREAM_BATCH`: rows per batch in dataset streams.
    pub stream_batch: usize,
    /// `EDDE_DRIFT_SEVERITY_PCT`: feature-corruption severity, percent.
    pub drift_severity_pct: f64,
    /// `EDDE_DRIFT_VOCAB_PCT`: vocabulary-drift fraction, percent.
    pub drift_vocab_pct: f64,
    // -- edde_nn -----------------------------------------------------
    /// `EDDE_CHUNK_BYTES`: payload bytes per chunk in the chunk store.
    pub chunk_bytes: usize,
    /// `EDDE_POOL_RETAIN`: buffers retained per `InferCtx` pool.
    pub pool_retain: usize,
    // -- edde_serve --------------------------------------------------
    /// `EDDE_SERVE_QUEUE`: bounded submission-queue capacity.
    pub serve_queue: usize,
    /// `EDDE_SERVE_BATCH_DEADLINE_US`: micro-batch coalescing window, µs.
    pub serve_batch_deadline_us: usize,
    /// `EDDE_SERVE_WORKERS`: drain threads per `ServeCore`.
    pub serve_workers: usize,
    // -- edde_tensor -------------------------------------------------
    /// `EDDE_SIMD`: force the scalar backend (`scalar`/`off`/`0`).
    pub force_scalar: bool,
}

impl Default for EddeConfig {
    /// The compiled defaults, ignoring the environment entirely.
    fn default() -> Self {
        EddeConfig {
            eval_batch: DEFAULT_EVAL_BATCH,
            sharded_ckpt: false,
            stream_batch: DEFAULT_STREAM_BATCH,
            drift_severity_pct: DEFAULT_DRIFT_SEVERITY_PCT,
            drift_vocab_pct: DEFAULT_DRIFT_VOCAB_PCT,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            pool_retain: DEFAULT_POOL_RETAIN,
            serve_queue: DEFAULT_SERVE_QUEUE,
            serve_batch_deadline_us: DEFAULT_SERVE_BATCH_DEADLINE_US,
            serve_workers: DEFAULT_SERVE_WORKERS,
            force_scalar: false,
        }
    }
}

impl EddeConfig {
    /// Resolves every knob as *environment > default*. This is the
    /// process-default configuration the free-function wrappers
    /// (`eval_batch()`, `chunk_bytes()`, …) are thin views over.
    pub fn from_env() -> Self {
        EddeConfig {
            eval_batch: Self::env_eval_batch(),
            sharded_ckpt: Self::env_sharded_ckpt(),
            stream_batch: Self::env_stream_batch(),
            drift_severity_pct: Self::env_drift_severity_pct(),
            drift_vocab_pct: Self::env_drift_vocab_pct(),
            chunk_bytes: Self::env_chunk_bytes(),
            pool_retain: Self::env_pool_retain(),
            serve_queue: Self::env_serve_queue(),
            serve_batch_deadline_us: Self::env_serve_batch_deadline_us(),
            serve_workers: Self::env_serve_workers(),
            force_scalar: Self::env_force_scalar(),
        }
    }

    /// A builder for explicit per-field overrides on top of
    /// environment/default resolution.
    pub fn builder() -> EddeConfigBuilder {
        EddeConfigBuilder::default()
    }

    // Per-knob environment resolvers. These are the single source of
    // truth for each knob's variable name and default; the free-function
    // wrappers call them directly so a wrapper call costs exactly one
    // environment lookup instead of resolving the whole config.

    /// `EDDE_EVAL_BATCH` > [`DEFAULT_EVAL_BATCH`].
    pub fn env_eval_batch() -> usize {
        env_usize("EDDE_EVAL_BATCH", DEFAULT_EVAL_BATCH)
    }

    /// `EDDE_SHARDED_CKPT` > `false`.
    pub fn env_sharded_ckpt() -> bool {
        env_bool("EDDE_SHARDED_CKPT", false)
    }

    /// `EDDE_STREAM_BATCH` > [`DEFAULT_STREAM_BATCH`].
    pub fn env_stream_batch() -> usize {
        env_usize("EDDE_STREAM_BATCH", DEFAULT_STREAM_BATCH)
    }

    /// `EDDE_DRIFT_SEVERITY_PCT` > [`DEFAULT_DRIFT_SEVERITY_PCT`].
    pub fn env_drift_severity_pct() -> f64 {
        env_f64("EDDE_DRIFT_SEVERITY_PCT", DEFAULT_DRIFT_SEVERITY_PCT)
    }

    /// `EDDE_DRIFT_VOCAB_PCT` > [`DEFAULT_DRIFT_VOCAB_PCT`].
    pub fn env_drift_vocab_pct() -> f64 {
        env_f64("EDDE_DRIFT_VOCAB_PCT", DEFAULT_DRIFT_VOCAB_PCT)
    }

    /// `EDDE_CHUNK_BYTES` > [`DEFAULT_CHUNK_BYTES`].
    pub fn env_chunk_bytes() -> usize {
        env_usize("EDDE_CHUNK_BYTES", DEFAULT_CHUNK_BYTES)
    }

    /// `EDDE_POOL_RETAIN` > [`DEFAULT_POOL_RETAIN`].
    pub fn env_pool_retain() -> usize {
        env_usize("EDDE_POOL_RETAIN", DEFAULT_POOL_RETAIN)
    }

    /// `EDDE_SERVE_QUEUE` > [`DEFAULT_SERVE_QUEUE`].
    pub fn env_serve_queue() -> usize {
        env_usize("EDDE_SERVE_QUEUE", DEFAULT_SERVE_QUEUE)
    }

    /// `EDDE_SERVE_BATCH_DEADLINE_US` > [`DEFAULT_SERVE_BATCH_DEADLINE_US`].
    pub fn env_serve_batch_deadline_us() -> usize {
        env_usize(
            "EDDE_SERVE_BATCH_DEADLINE_US",
            DEFAULT_SERVE_BATCH_DEADLINE_US,
        )
    }

    /// `EDDE_SERVE_WORKERS` > [`DEFAULT_SERVE_WORKERS`].
    pub fn env_serve_workers() -> usize {
        env_usize("EDDE_SERVE_WORKERS", DEFAULT_SERVE_WORKERS)
    }

    /// `EDDE_SIMD=scalar|off|0` forces the scalar backend. Unlike the
    /// numeric knobs this is an exact-match sentinel, not a parsed value:
    /// any other setting (or unset) leaves backend selection automatic.
    pub fn env_force_scalar() -> bool {
        matches!(
            env_lookup("EDDE_SIMD").as_deref(),
            Some("scalar") | Some("off") | Some("0")
        )
    }

    /// When this config forces the scalar backend, enters a scalar scope
    /// and returns its RAII guard; otherwise `None`. Lets a config-driven
    /// harness apply its SIMD choice without touching the process-global
    /// override (see [`crate::simd::force_scalar_scope`]).
    pub fn scalar_guard(&self) -> Option<ScalarGuard> {
        self.force_scalar.then(crate::simd::force_scalar_scope)
    }

    /// Canonical single-line `key=value` snapshot of the resolved
    /// config, suitable for embedding in run manifests and bench
    /// history rows. Keys are emitted in a fixed order; floats print in
    /// shortest round-trip form, so equal configs snapshot identically.
    pub fn snapshot(&self) -> String {
        format!(
            "eval_batch={} stream_batch={} chunk_bytes={} pool_retain={} serve_queue={} \
             serve_batch_deadline_us={} serve_workers={} drift_severity_pct={} \
             drift_vocab_pct={} sharded_ckpt={} simd={}",
            self.eval_batch,
            self.stream_batch,
            self.chunk_bytes,
            self.pool_retain,
            self.serve_queue,
            self.serve_batch_deadline_us,
            self.serve_workers,
            self.drift_severity_pct,
            self.drift_vocab_pct,
            self.sharded_ckpt,
            if self.force_scalar { "scalar" } else { "auto" },
        )
    }

    /// Parses a [`snapshot`](Self::snapshot) line back into a config.
    /// Unknown keys are ignored (a newer writer may add knobs); a
    /// malformed token or unparseable value yields `None`. Missing keys
    /// keep their compiled defaults, so older snapshots stay readable.
    pub fn from_snapshot(text: &str) -> Option<Self> {
        let mut cfg = EddeConfig::default();
        for token in text.split_whitespace() {
            let (key, value) = token.split_once('=')?;
            match key {
                "eval_batch" => cfg.eval_batch = value.parse().ok()?,
                "stream_batch" => cfg.stream_batch = value.parse().ok()?,
                "chunk_bytes" => cfg.chunk_bytes = value.parse().ok()?,
                "pool_retain" => cfg.pool_retain = value.parse().ok()?,
                "serve_queue" => cfg.serve_queue = value.parse().ok()?,
                "serve_batch_deadline_us" => cfg.serve_batch_deadline_us = value.parse().ok()?,
                "serve_workers" => cfg.serve_workers = value.parse().ok()?,
                "drift_severity_pct" => cfg.drift_severity_pct = value.parse().ok()?,
                "drift_vocab_pct" => cfg.drift_vocab_pct = value.parse().ok()?,
                "sharded_ckpt" => cfg.sharded_ckpt = value.parse().ok()?,
                "simd" => {
                    cfg.force_scalar = match value {
                        "scalar" => true,
                        "auto" => false,
                        _ => return None,
                    }
                }
                _ => {}
            }
        }
        Some(cfg)
    }

    /// The snapshot as a JSON object (hand-written, like every other
    /// serializer in this workspace) for `BENCH_history.jsonl` rows.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"eval_batch\": {}, \"stream_batch\": {}, \"chunk_bytes\": {}, \
             \"pool_retain\": {}, \"serve_queue\": {}, \"serve_batch_deadline_us\": {}, \
             \"serve_workers\": {}, \"drift_severity_pct\": {}, \
             \"drift_vocab_pct\": {}, \"sharded_ckpt\": {}, \"simd\": \"{}\"}}",
            self.eval_batch,
            self.stream_batch,
            self.chunk_bytes,
            self.pool_retain,
            self.serve_queue,
            self.serve_batch_deadline_us,
            self.serve_workers,
            self.drift_severity_pct,
            self.drift_vocab_pct,
            self.sharded_ckpt,
            if self.force_scalar { "scalar" } else { "auto" },
        )
    }
}

/// Builder for [`EddeConfig`]: any field left unset resolves from the
/// environment, then the compiled default — so a builder with no
/// overrides resolves identically to [`EddeConfig::from_env`].
#[derive(Debug, Clone, Default)]
pub struct EddeConfigBuilder {
    eval_batch: Option<usize>,
    sharded_ckpt: Option<bool>,
    stream_batch: Option<usize>,
    drift_severity_pct: Option<f64>,
    drift_vocab_pct: Option<f64>,
    chunk_bytes: Option<usize>,
    pool_retain: Option<usize>,
    serve_queue: Option<usize>,
    serve_batch_deadline_us: Option<usize>,
    serve_workers: Option<usize>,
    force_scalar: Option<bool>,
}

impl EddeConfigBuilder {
    /// Overrides `EDDE_EVAL_BATCH`. Panics on zero — the knob family
    /// treats zero as nonsensical, and an explicit override should fail
    /// loudly where an env typo only warns.
    pub fn eval_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "eval_batch must be positive");
        self.eval_batch = Some(n);
        self
    }

    /// Overrides `EDDE_SHARDED_CKPT`.
    pub fn sharded_ckpt(mut self, on: bool) -> Self {
        self.sharded_ckpt = Some(on);
        self
    }

    /// Overrides `EDDE_STREAM_BATCH`. Panics on zero.
    pub fn stream_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "stream_batch must be positive");
        self.stream_batch = Some(n);
        self
    }

    /// Overrides `EDDE_DRIFT_SEVERITY_PCT`. Panics unless positive finite.
    pub fn drift_severity_pct(mut self, pct: f64) -> Self {
        assert!(
            pct > 0.0 && pct.is_finite(),
            "drift_severity_pct must be positive and finite"
        );
        self.drift_severity_pct = Some(pct);
        self
    }

    /// Overrides `EDDE_DRIFT_VOCAB_PCT`. Panics unless positive finite.
    pub fn drift_vocab_pct(mut self, pct: f64) -> Self {
        assert!(
            pct > 0.0 && pct.is_finite(),
            "drift_vocab_pct must be positive and finite"
        );
        self.drift_vocab_pct = Some(pct);
        self
    }

    /// Overrides `EDDE_CHUNK_BYTES`. Panics on zero.
    pub fn chunk_bytes(mut self, n: usize) -> Self {
        assert!(n > 0, "chunk_bytes must be positive");
        self.chunk_bytes = Some(n);
        self
    }

    /// Overrides `EDDE_POOL_RETAIN`. Panics on zero.
    pub fn pool_retain(mut self, n: usize) -> Self {
        assert!(n > 0, "pool_retain must be positive");
        self.pool_retain = Some(n);
        self
    }

    /// Overrides `EDDE_SERVE_QUEUE`. Panics on zero.
    pub fn serve_queue(mut self, n: usize) -> Self {
        assert!(n > 0, "serve_queue must be positive");
        self.serve_queue = Some(n);
        self
    }

    /// Overrides `EDDE_SERVE_BATCH_DEADLINE_US`.
    pub fn serve_batch_deadline_us(mut self, us: usize) -> Self {
        self.serve_batch_deadline_us = Some(us);
        self
    }

    /// Overrides `EDDE_SERVE_WORKERS`. Panics on zero.
    pub fn serve_workers(mut self, n: usize) -> Self {
        assert!(n > 0, "serve_workers must be positive");
        self.serve_workers = Some(n);
        self
    }

    /// Overrides `EDDE_SIMD`: `true` forces the scalar backend, `false`
    /// pins automatic selection even if the variable is set.
    pub fn force_scalar(mut self, on: bool) -> Self {
        self.force_scalar = Some(on);
        self
    }

    /// Resolves *builder override > environment > default* per field.
    /// Only fields left unset touch the environment.
    pub fn resolve(self) -> EddeConfig {
        EddeConfig {
            eval_batch: self.eval_batch.unwrap_or_else(EddeConfig::env_eval_batch),
            sharded_ckpt: self
                .sharded_ckpt
                .unwrap_or_else(EddeConfig::env_sharded_ckpt),
            stream_batch: self
                .stream_batch
                .unwrap_or_else(EddeConfig::env_stream_batch),
            drift_severity_pct: self
                .drift_severity_pct
                .unwrap_or_else(EddeConfig::env_drift_severity_pct),
            drift_vocab_pct: self
                .drift_vocab_pct
                .unwrap_or_else(EddeConfig::env_drift_vocab_pct),
            chunk_bytes: self.chunk_bytes.unwrap_or_else(EddeConfig::env_chunk_bytes),
            pool_retain: self.pool_retain.unwrap_or_else(EddeConfig::env_pool_retain),
            serve_queue: self.serve_queue.unwrap_or_else(EddeConfig::env_serve_queue),
            serve_batch_deadline_us: self
                .serve_batch_deadline_us
                .unwrap_or_else(EddeConfig::env_serve_batch_deadline_us),
            serve_workers: self
                .serve_workers
                .unwrap_or_else(EddeConfig::env_serve_workers),
            force_scalar: self
                .force_scalar
                .unwrap_or_else(EddeConfig::env_force_scalar),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_documented_knob_table() {
        let c = EddeConfig::default();
        assert_eq!(c.eval_batch, 256);
        assert_eq!(c.stream_batch, 256);
        assert_eq!(c.chunk_bytes, 64 * 1024);
        assert_eq!(c.pool_retain, 32);
        assert_eq!(c.serve_queue, 256);
        assert_eq!(c.serve_batch_deadline_us, 2000);
        assert_eq!(c.serve_workers, 1);
        assert_eq!(c.drift_severity_pct, 50.0);
        assert_eq!(c.drift_vocab_pct, 30.0);
        assert!(!c.sharded_ckpt);
        assert!(!c.force_scalar);
    }

    #[test]
    fn builder_override_beats_env_beats_default() {
        // Dedicated variable not shared with other tests: precedence is
        // observable per knob, and eval_batch's env leg is exercised via
        // EDDE_EVAL_BATCH in the integration suite; here we pin the
        // builder layer winning over a set variable.
        std::env::set_var("EDDE_STREAM_BATCH", "99");
        let from_env = EddeConfig::builder().resolve();
        assert_eq!(from_env.stream_batch, 99, "env beats default");
        let overridden = EddeConfig::builder().stream_batch(7).resolve();
        assert_eq!(overridden.stream_batch, 7, "builder beats env");
        std::env::remove_var("EDDE_STREAM_BATCH");
        let fallback = EddeConfig::builder().resolve();
        assert_eq!(
            fallback.stream_batch, DEFAULT_STREAM_BATCH,
            "default when unset"
        );
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let c = EddeConfig::builder()
            .eval_batch(3)
            .stream_batch(17)
            .chunk_bytes(4096)
            .pool_retain(5)
            .serve_queue(8)
            .serve_batch_deadline_us(0)
            .serve_workers(2)
            .drift_severity_pct(62.5)
            .drift_vocab_pct(12.25)
            .sharded_ckpt(true)
            .force_scalar(true)
            .resolve();
        let snap = c.snapshot();
        assert_eq!(EddeConfig::from_snapshot(&snap), Some(c));
    }

    #[test]
    fn default_snapshot_is_canonical_and_round_trips() {
        let c = EddeConfig::default();
        assert_eq!(
            c.snapshot(),
            "eval_batch=256 stream_batch=256 chunk_bytes=65536 pool_retain=32 \
             serve_queue=256 serve_batch_deadline_us=2000 serve_workers=1 \
             drift_severity_pct=50 drift_vocab_pct=30 sharded_ckpt=false simd=auto"
        );
        assert_eq!(EddeConfig::from_snapshot(&c.snapshot()), Some(c));
    }

    #[test]
    fn from_snapshot_ignores_unknown_keys_and_rejects_malformed() {
        let with_extra = "eval_batch=5 future_knob=1 simd=auto";
        let cfg = EddeConfig::from_snapshot(with_extra).unwrap();
        assert_eq!(cfg.eval_batch, 5);
        assert_eq!(cfg.stream_batch, DEFAULT_STREAM_BATCH);
        assert!(EddeConfig::from_snapshot("eval_batch").is_none());
        assert!(EddeConfig::from_snapshot("eval_batch=banana").is_none());
        assert!(EddeConfig::from_snapshot("simd=sometimes").is_none());
    }

    #[test]
    fn to_json_is_well_formed() {
        let j = EddeConfig::default().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"eval_batch\": 256"));
        assert!(j.contains("\"drift_severity_pct\": 50"));
        assert!(j.contains("\"simd\": \"auto\""));
    }

    #[test]
    fn scalar_guard_scopes_the_backend() {
        let auto = EddeConfig::default();
        assert!(auto.scalar_guard().is_none());
        let forced = EddeConfig::builder().force_scalar(true).resolve();
        {
            let guard = forced.scalar_guard();
            assert!(guard.is_some());
            assert_eq!(crate::simd::backend_name(), "scalar");
        }
    }
}
