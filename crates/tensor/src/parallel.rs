//! The persistent worker pool behind every parallel tensor op.
//!
//! The first parallel dispatch spawns the workers once; every later op
//! reuses them, so the steady state has **zero per-call thread spawns**
//! (the seed implementation paid a crossbeam scope + spawn per matmul).
//! Work is balanced by *chunk claiming*: a dispatch publishes a job with
//! `total` independent chunk indices and every participant — the caller
//! included — repeatedly steals the next unclaimed index from a shared
//! atomic counter until none remain. Fast workers therefore automatically
//! take chunks from slow ones without any per-thread queues.
//!
//! # Determinism contract
//!
//! Chunk *scheduling* is nondeterministic, but every op built on this pool
//! computes each output element entirely inside one chunk, with a fixed
//! per-element reduction order. Results are therefore bit-identical across
//! thread counts, across repeated calls, and across reconfigurations —
//! the property the ensemble reproducibility tests pin down.
//!
//! Nested dispatch (a parallel op called from inside a pool worker, e.g. a
//! matmul inside a sample-parallel convolution) runs inline on the worker
//! instead of deadlocking the pool. This nestability is what lets the
//! ensemble layer parallelize at *member* granularity: when a method
//! trains data-independent members concurrently on this same pool (see
//! `edde-core`'s Bagging), every tensor op inside a member runs inline on
//! its worker, trading op-level for member-level parallelism — which
//! scales better, since members synchronize only at their commit points.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Global override for the worker count (0 = use available parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads used by parallel tensor ops.
///
/// `0` restores the default (one worker per available core, capped at 8 —
/// beyond that the matmul sizes in this project stop scaling). The pool
/// reconfigures lazily: grow spawns the missing workers on the next
/// dispatch, shrink retires surplus workers at their next wake-up. Results
/// of tensor ops are bit-identical at every setting.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
    // Wake sleeping workers so surplus ones can retire promptly.
    if let Some(pool) = POOL.get() {
        pool.cv_workers.notify_all();
    }
}

/// The worker count parallel ops will use.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

thread_local! {
    /// True on pool worker threads; nested dispatches run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One published parallel-for: chunk indices `0..total` are claimed via
/// `next`; `completed` counts finished chunks. The raw closure pointer is
/// only dereferenced for successfully claimed indices, and the publisher
/// blocks until `completed == total`, which bounds the borrow.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    total: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    panicked: AtomicBool,
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `task` is a borrow of the dispatching closure; `dispatch` keeps
// the closure alive until every claimed chunk has completed, and unclaimed
// indices never dereference it.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until none remain; returns whether this
    /// participant finished the final chunk.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // SAFETY: i < total, so the publisher is still blocked in
            // `dispatch` and the closure borrow is live.
            let task = unsafe { &*self.task };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
                let mut done = lock(&self.done_lock);
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

struct Pool {
    /// Broadcast slot: (generation, current job). Workers sleep on
    /// `cv_workers` until the generation advances.
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    cv_workers: Condvar,
    /// Serializes dispatches so concurrent callers don't clobber the slot.
    dispatch: Mutex<()>,
    /// Workers ever spawned (monotonic worker ids).
    spawned: AtomicUsize,
    /// Workers currently alive (spawned minus retired).
    alive: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        slot: Mutex::new((0, None)),
        cv_workers: Condvar::new(),
        dispatch: Mutex::new(()),
        spawned: AtomicUsize::new(0),
        alive: AtomicUsize::new(0),
    })
}

/// Workers the pool should keep alive for the current thread setting
/// (the caller participates, so the pool holds `num_threads - 1`).
fn desired_workers() -> usize {
    num_threads().saturating_sub(1)
}

fn worker_main(pool: &'static Pool, id: usize) {
    IN_WORKER.with(|w| w.set(true));
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut slot = lock(&pool.slot);
            loop {
                if id >= desired_workers() {
                    // Pool was shrunk; retire.
                    pool.alive.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                match &slot.1 {
                    Some(job) if slot.0 != seen_generation => {
                        seen_generation = slot.0;
                        break Arc::clone(job);
                    }
                    _ => {
                        slot = pool
                            .cv_workers
                            .wait(slot)
                            .unwrap_or_else(|e| e.into_inner())
                    }
                }
            }
        };
        job.work();
    }
}

/// Ensures the pool has `desired_workers()` live workers, spawning any
/// missing ones. Retired worker ids are not reused; ids only grow, and a
/// worker retires itself when its id falls outside the desired range —
/// so after a shrink-then-grow the pool tops back up here.
fn ensure_workers(pool: &'static Pool) {
    let want = desired_workers();
    while pool.alive.load(Ordering::Relaxed) < want {
        // Ids must stay dense in 0..alive for the retire check, so respawn
        // with id = current alive count.
        let id = pool.alive.fetch_add(1, Ordering::Relaxed);
        if id >= want {
            pool.alive.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        pool.spawned.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("edde-tensor-{id}"))
            .spawn(move || worker_main(pool, id))
            .expect("failed to spawn tensor pool worker");
    }
}

/// Total workers ever spawned — observability hook for the "zero per-call
/// spawns in steady state" benchmark assertion.
pub fn workers_spawned_total() -> usize {
    POOL.get().map_or(0, |p| p.spawned.load(Ordering::Relaxed))
}

/// Runs `f` with every nested parallel dispatch forced inline on the
/// calling thread, restoring the previous mode afterwards (panic-safe).
///
/// This is the integration point for *caller-level* parallelism layered
/// above the tensor pool: when several application threads (e.g. the
/// serving core's batch workers) each run whole tensor pipelines
/// concurrently, letting every one of them also fan out over the shared
/// pool only adds dispatch contention. Marking the thread in-worker makes
/// its tensor ops run serially inline — trading op-level for
/// caller-level parallelism, exactly like the pool's own nested-dispatch
/// rule — while results stay bit-identical by the determinism contract.
pub fn with_inline_dispatch<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
    f()
}

/// Runs `f(0)`, `f(1)`, …, `f(total - 1)` across the persistent pool,
/// blocking until all calls complete. The calls must be independent: each
/// writes only state the others don't touch. Scheduling order is
/// unspecified.
///
/// Runs inline (serially) when the pool would not help: one configured
/// thread, a single chunk, or a nested dispatch from inside a worker.
pub fn run_chunks<F>(total: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if total == 0 {
        return;
    }
    let inline = total == 1 || num_threads() <= 1 || IN_WORKER.with(|w| w.get());
    if inline {
        for i in 0..total {
            f(i);
        }
        return;
    }

    let pool = pool();
    let _dispatch = lock(&pool.dispatch);
    ensure_workers(pool);
    let task_ref: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY: erases the borrow's lifetime into the raw pointer; `dispatch`
    // blocks below until every claimed chunk completes, so the pointer is
    // never dereferenced after `f` goes out of scope.
    let task: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task_ref) };
    let job = Arc::new(Job {
        task,
        total,
        next: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        done_lock: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    {
        let mut slot = lock(&pool.slot);
        slot.0 = slot.0.wrapping_add(1);
        slot.1 = Some(Arc::clone(&job));
        pool.cv_workers.notify_all();
    }
    // The caller is a participant too. Mark it in-worker for the duration
    // so a nested dispatch from its own chunk runs inline instead of
    // re-entering the (non-reentrant) dispatch lock.
    IN_WORKER.with(|w| w.set(true));
    job.work();
    IN_WORKER.with(|w| w.set(false));
    let mut done = lock(&job.done_lock);
    while !*done {
        done = job.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
    }
    drop(done);
    // Drop the slot reference so the closure borrow can't outlive us via a
    // stale Arc (workers that already hold the Arc only probe `next`,
    // which is exhausted, and never touch `task` again).
    lock(&pool.slot).1 = None;
    if job.panicked.load(Ordering::Relaxed) {
        panic!("tensor worker thread panicked");
    }
}

/// Splits `out` into contiguous chunks of whole `row_len`-sized rows and
/// runs `f(first_row_index, chunk)` on each chunk, in parallel when the
/// work is large enough to amortize dispatch cost. Chunking affects only
/// scheduling, never results: each row is computed identically wherever
/// it lands.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `row_len`.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        out.len() % row_len,
        0,
        "buffer length {} is not a multiple of row length {}",
        out.len(),
        row_len
    );
    let rows = out.len() / row_len;
    let workers = num_threads().min(rows.max(1));
    // Small outputs: the dispatch overhead dwarfs the work.
    const PAR_THRESHOLD_ELEMS: usize = 16 * 1024;
    if workers <= 1 || out.len() < PAR_THRESHOLD_ELEMS {
        f(0, out);
        return;
    }
    // Oversubscribe chunks a little so claim-stealing can rebalance when
    // rows have uneven cost.
    let chunks = (workers * 4).min(rows);
    let rows_per_chunk = rows.div_ceil(chunks);
    let chunks = rows.div_ceil(rows_per_chunk);
    let base = out.as_mut_ptr() as usize;
    run_chunks(chunks, |ci| {
        let row0 = ci * rows_per_chunk;
        let nrows = rows_per_chunk.min(rows - row0);
        // SAFETY: chunks are disjoint whole-row ranges of `out`, and the
        // dispatch blocks until every chunk completes.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut((base as *mut f32).add(row0 * row_len), nrows * row_len)
        };
        f(row0, chunk);
    });
}

/// Splits `out` and `other` (equal lengths) at identical boundaries and
/// runs `f(out_chunk, other_chunk)` on each pair — the parallel shape of
/// elementwise binary ops. Chunking never affects results: every element
/// is transformed independently.
pub fn for_each_zip_chunk<F>(out: &mut [f32], other: &[f32], f: F)
where
    F: Fn(&mut [f32], &[f32]) + Sync,
{
    assert_eq!(out.len(), other.len(), "zip chunk length mismatch");
    // Elementwise work is so cheap that dispatch only pays off on large
    // buffers.
    const PAR_THRESHOLD_ELEMS: usize = 64 * 1024;
    let workers = num_threads();
    if workers <= 1 || out.len() < PAR_THRESHOLD_ELEMS {
        f(out, other);
        return;
    }
    let total = out.len();
    let chunks = workers * 2;
    let per = total.div_ceil(chunks);
    let chunks = total.div_ceil(per);
    let base = out.as_mut_ptr() as usize;
    run_chunks(chunks, |ci| {
        let lo = ci * per;
        let len = per.min(total - lo);
        // SAFETY: chunks are disjoint ranges of `out`, and the dispatch
        // blocks until every chunk completes.
        let chunk = unsafe { std::slice::from_raw_parts_mut((base as *mut f32).add(lo), len) };
        f(chunk, &other[lo..lo + len]);
    });
}

/// Applies `f(index, &mut item)` to every item across the pool and
/// collects the results in index order. Items are mutated independently;
/// result order is deterministic regardless of scheduling.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let items_base = items.as_mut_ptr() as usize;
    let results_base = results.as_mut_ptr() as usize;
    run_chunks(n, |i| {
        // SAFETY: each index touches exactly one item slot and one result
        // slot, and the dispatch blocks until all indices complete.
        unsafe {
            let item = &mut *(items_base as *mut T).add(i);
            let slot = &mut *(results_base as *mut Option<R>).add(i);
            *slot = Some(f(i, item));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("parallel_map_mut chunk skipped"))
        .collect()
}

/// [`parallel_map_mut`] for shared items: maps `f` over `items` on the
/// worker pool without requiring mutable access, so `Sync` state (e.g. a
/// frozen model behind an `Arc`) can be fanned out with zero cloning.
/// Results come back in item order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let results_base = results.as_mut_ptr() as usize;
    run_chunks(n, |i| {
        // SAFETY: each index writes exactly one result slot, and the
        // dispatch blocks until all indices complete.
        unsafe {
            let slot = &mut *(results_base as *mut Option<R>).add(i);
            *slot = Some(f(i, &items[i]));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("parallel_map chunk skipped"))
        .collect()
}

/// Shared state of one in-order-commit parallel run: the commit cursor
/// plus the committer itself, so commits run under the same lock that
/// orders them.
struct CommitGate<C, E> {
    /// Next index allowed to commit.
    next: usize,
    /// Set on the first failure (error or panic); everyone still in
    /// flight drains out without committing.
    failed: bool,
    /// The earliest-index error observed, reported to the caller.
    error: Option<(usize, E)>,
    commit: C,
}

/// Records a failure, keeping the earliest index's error so the reported
/// error does not depend on scheduling.
fn record_gate_failure<C, E>(g: &mut CommitGate<C, E>, i: usize, e: E) {
    g.failed = true;
    match &g.error {
        Some((ei, _)) if *ei <= i => {}
        _ => g.error = Some((i, e)),
    }
}

/// Produces values for `first..last` in parallel and commits each in index
/// order — the in-order commit gate behind parallel member training and
/// chunked checkpoint writes.
///
/// `produce(i)` must be a pure function of `i`; `commit(i, value)` mutates
/// shared state (an ensemble under construction, a store being written)
/// and is always invoked in ascending index order, exactly as a sequential
/// loop would. With `parallel` set, production fans out over the worker
/// pool ([`run_chunks`]); because commits are serialized in order, the
/// observable effect sequence is identical to the sequential path.
///
/// On failure the earliest failing index's error is returned and no later
/// index is committed, matching sequential error reporting. Indices
/// already committed stay committed.
pub fn ordered_commit<T, E, F, C>(
    first: usize,
    last: usize,
    parallel: bool,
    produce: F,
    mut commit: C,
) -> Result<(), E>
where
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    C: FnMut(usize, T) -> Result<(), E> + Send,
{
    if !parallel || last.saturating_sub(first) <= 1 {
        for i in first..last {
            commit(i, produce(i)?)?;
        }
        return Ok(());
    }
    let gate = Mutex::new(CommitGate {
        next: first,
        failed: false,
        error: None,
        commit,
    });
    let cv = Condvar::new();
    let lock_gate = || gate.lock().unwrap_or_else(|e| e.into_inner());
    run_chunks(last - first, |c| {
        let i = first + c;
        if lock_gate().failed {
            return;
        }
        // Panics (in produce or commit) must mark the gate failed and wake
        // all waiters before propagating, or threads blocked on the
        // condvar would never be notified again.
        let value = match catch_unwind(AssertUnwindSafe(|| produce(i))) {
            Ok(Ok(v)) => v,
            Ok(Err(e)) => {
                record_gate_failure(&mut lock_gate(), i, e);
                cv.notify_all();
                return;
            }
            Err(payload) => {
                lock_gate().failed = true;
                cv.notify_all();
                resume_unwind(payload);
            }
        };
        let mut g = lock_gate();
        while !g.failed && g.next != i {
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.failed {
            return;
        }
        match catch_unwind(AssertUnwindSafe(|| (g.commit)(i, value))) {
            Ok(Ok(())) => g.next = i + 1,
            Ok(Err(e)) => record_gate_failure(&mut g, i, e),
            Err(payload) => {
                g.failed = true;
                drop(g);
                cv.notify_all();
                resume_unwind(payload);
            }
        }
        drop(g);
        cv.notify_all();
    });
    match gate.into_inner().unwrap_or_else(|e| e.into_inner()).error {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global thread override; without
    /// this, concurrent tests retire/respawn workers under each other.
    fn override_guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock(&LOCK)
    }

    #[test]
    fn chunks_cover_all_rows_exactly_once() {
        let rows = 1000;
        let row_len = 64; // 64k elements => parallel path
        let mut out = vec![0.0f32; rows * row_len];
        for_each_row_chunk(&mut out, row_len, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + i) as f32;
                }
            }
        });
        for (r, row) in out.chunks(row_len).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong");
        }
    }

    #[test]
    fn small_inputs_run_serially_and_correctly() {
        let mut out = vec![0.0f32; 6];
        for_each_row_chunk(&mut out, 2, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(2).enumerate() {
                row[0] = (first_row + i) as f32;
                row[1] = -(row[0]);
            }
        });
        assert_eq!(out, vec![0.0, -0.0, 1.0, -1.0, 2.0, -2.0]);
    }

    #[test]
    fn thread_override_round_trips() {
        let _g = override_guard();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_ragged_buffers() {
        let mut out = vec![0.0f32; 5];
        for_each_row_chunk(&mut out, 2, |_, _| {});
    }

    #[test]
    fn run_chunks_covers_every_index() {
        let _g = override_guard();
        let n = 100;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        set_num_threads(4);
        run_chunks(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        set_num_threads(0);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn pool_reuses_workers_across_dispatches() {
        let _g = override_guard();
        // Warm the pool at its maximum size so concurrent tests running at
        // the default thread count can't trigger additional spawns either.
        set_num_threads(8);
        let noop = |_i: usize| {};
        run_chunks(64, noop);
        let after_first = workers_spawned_total();
        for _ in 0..20 {
            run_chunks(64, noop);
        }
        // Steady state: no new spawns after the pool is warm.
        assert_eq!(workers_spawned_total(), after_first);
        set_num_threads(0);
    }

    #[test]
    fn parallel_map_mut_is_ordered_and_mutates() {
        let _g = override_guard();
        let mut items: Vec<usize> = (0..50).collect();
        set_num_threads(4);
        let out = parallel_map_mut(&mut items, |i, item| {
            *item += 1;
            i * 10
        });
        set_num_threads(0);
        assert_eq!(out, (0..50).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(items, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_is_ordered_over_shared_items() {
        let _g = override_guard();
        let items: Vec<usize> = (0..50).collect();
        set_num_threads(4);
        let out = parallel_map(&items, |i, &item| i * 100 + item);
        set_num_threads(0);
        assert_eq!(out, (0..50).map(|i| i * 101).collect::<Vec<_>>());
    }

    #[test]
    fn inline_dispatch_covers_all_indices_and_restores() {
        let _g = override_guard();
        set_num_threads(4);
        let spawned_before = workers_spawned_total();
        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        with_inline_dispatch(|| {
            run_chunks(32, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
        // Inline mode must not have spawned pool workers on our behalf.
        assert_eq!(workers_spawned_total(), spawned_before);
        // The previous mode is restored: this dispatch may use the pool.
        assert!(!IN_WORKER.with(|w| w.get()));
        set_num_threads(0);
    }

    #[test]
    fn ordered_commit_commits_in_index_order() {
        let _g = override_guard();
        set_num_threads(4);
        let mut committed = Vec::new();
        let result: Result<(), ()> = ordered_commit(
            0,
            6,
            true,
            |i| {
                // Earlier indices take longer, so later ones finish first
                // and must wait their turn at the gate.
                std::thread::sleep(std::time::Duration::from_millis(3 * (6 - i) as u64));
                Ok(i * 10)
            },
            |i, v| {
                committed.push((i, v));
                Ok(())
            },
        );
        set_num_threads(0);
        assert!(result.is_ok());
        assert_eq!(committed, (0..6).map(|i| (i, i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_commit_reports_earliest_error_and_stops_committing() {
        let _g = override_guard();
        set_num_threads(4);
        let mut committed = Vec::new();
        let result: Result<(), usize> = ordered_commit(
            0,
            8,
            true,
            |i| if i == 3 || i == 5 { Err(i) } else { Ok(i) },
            |i, _| {
                committed.push(i);
                Ok(())
            },
        );
        set_num_threads(0);
        assert_eq!(result, Err(3), "earliest failing index wins");
        assert!(
            committed.iter().all(|&i| i < 3),
            "no index at or past the failure commits: {committed:?}"
        );
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let _g = override_guard();
        set_num_threads(4);
        let total = AtomicUsize::new(0);
        run_chunks(8, |_outer| {
            run_chunks(8, |_inner| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        set_num_threads(0);
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }
}
