//! Minimal data-parallel helpers built on crossbeam scoped threads.
//!
//! The tensor crate keeps parallelism deliberately coarse: hot loops like
//! matrix multiply split their *output* into disjoint chunks and hand each
//! chunk to one worker. That avoids locks entirely — every worker writes to
//! memory nobody else touches.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global override for the worker count (0 = use available parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads used by parallel tensor ops.
///
/// `0` restores the default (one worker per available core, capped at 8 —
/// beyond that the matmul sizes in this project stop scaling). Benchmarks
/// use this to pin thread counts for stable measurements.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel ops will use.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Splits `out` into at most [`num_threads`] contiguous chunks of whole
/// `row_len`-sized rows and runs `f(first_row_index, chunk)` on each chunk,
/// in parallel when the work is large enough to amortize thread spawn cost.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `row_len`.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        out.len() % row_len,
        0,
        "buffer length {} is not a multiple of row length {}",
        out.len(),
        row_len
    );
    let rows = out.len() / row_len;
    let workers = num_threads().min(rows.max(1));
    // Small outputs: the spawn overhead dwarfs the work.
    const PAR_THRESHOLD_ELEMS: usize = 16 * 1024;
    if workers <= 1 || out.len() < PAR_THRESHOLD_ELEMS {
        f(0, out);
        return;
    }
    let rows_per_worker = rows.div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        let mut rest = out;
        let mut row_start = 0usize;
        while !rest.is_empty() {
            let take_rows = rows_per_worker.min(rest.len() / row_len);
            let (chunk, tail) = rest.split_at_mut(take_rows * row_len);
            let fr = &f;
            let start = row_start;
            scope.spawn(move |_| fr(start, chunk));
            row_start += take_rows;
            rest = tail;
        }
    })
    .expect("tensor worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_rows_exactly_once() {
        let rows = 1000;
        let row_len = 64; // 64k elements => parallel path
        let mut out = vec![0.0f32; rows * row_len];
        for_each_row_chunk(&mut out, row_len, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + i) as f32;
                }
            }
        });
        for (r, row) in out.chunks(row_len).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong");
        }
    }

    #[test]
    fn small_inputs_run_serially_and_correctly() {
        let mut out = vec![0.0f32; 6];
        for_each_row_chunk(&mut out, 2, |first_row, chunk| {
            for (i, row) in chunk.chunks_mut(2).enumerate() {
                row[0] = (first_row + i) as f32;
                row[1] = -(row[0]);
            }
        });
        assert_eq!(out, vec![0.0, -0.0, 1.0, -1.0, 2.0, -2.0]);
    }

    #[test]
    fn thread_override_round_trips() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_ragged_buffers() {
        let mut out = vec![0.0f32; 5];
        for_each_row_chunk(&mut out, 2, |_, _| {});
    }
}
