//! IEEE 754 binary16 conversions, from scratch.
//!
//! The f16 array stage stores each value as its binary16 bit pattern.
//! Conversion down rounds to nearest-even (the IEEE default), handles
//! subnormals on both sides, preserves signed zero, maps overflow to ±∞,
//! and keeps NaN a NaN. Conversion up is exact (every binary16 value is
//! representable in binary32), so an f16 chain round-trips any value that
//! was already half-precision bit-exactly.

/// Converts `f32` to its binary16 bit pattern, round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp32 == 0xff {
        // Infinity or NaN; keep a nonzero mantissa so NaN stays NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }

    // Rebias to binary16's exponent.
    let exp = exp32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±∞
    }
    if exp <= 0 {
        // Subnormal half (or zero). The significand with its implicit bit
        // is a 24-bit integer M; the half subnormal is M >> (14 − exp),
        // rounded to nearest-even.
        if exp < -10 {
            return sign; // underflows past the smallest subnormal
        }
        let m = mant | 0x0080_0000;
        let shift = (14 - exp) as u32;
        let v = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = rem > half || (rem == half && (v & 1) == 1);
        return sign | (v + u32::from(round_up)) as u16;
    }

    // Normal: drop 13 mantissa bits with round-to-nearest-even. A carry
    // out of the mantissa rolls into the exponent (and can round to ∞),
    // which is exactly the IEEE behaviour.
    let v = ((exp as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && (v & 1) == 1);
    sign | (v + u32::from(round_up)) as u16
}

/// Converts a binary16 bit pattern to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = u32::from(h & 0x3ff);
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign // ±0
            } else {
                // Subnormal: normalize by shifting the leading bit into
                // the implicit-one position.
                let mut m = mant << 13;
                let mut e = 113u32; // binary32 biased exponent of 2^-14
                while m & 0x0080_0000 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | (e << 23) | (m & 0x007f_ffff)
            }
        }
        0x1f => sign | 0x7f80_0000 | (mant << 13), // ±∞ / NaN
        _ => sign | ((u32::from(exp) + 112) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn specials_are_preserved() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow saturates to infinity.
        assert_eq!(f32_to_f16_bits(1.0e6), 0x7c00);
        assert_eq!(f32_to_f16_bits(-1.0e6), 0xfc00);
        // Signed zero survives.
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn subnormals_and_underflow() {
        // Smallest half subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        // Largest half subnormal.
        let max_sub = f16_bits_to_f32(0x03ff);
        assert_eq!(f32_to_f16_bits(max_sub), 0x03ff);
        // Half of the smallest subnormal rounds to even (zero).
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25)), 0x0000);
        // Just above that rounds up to the smallest subnormal.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-25) * 1.5), 0x0001);
        // f32 denormals collapse to zero without panicking.
        assert_eq!(f32_to_f16_bits(f32::MIN_POSITIVE / 2.0), 0x0000);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next half; ties to
        // even keep 1.0.
        let tie = f32::from_bits(0x3f80_1000);
        assert_eq!(f32_to_f16_bits(tie), 0x3c00);
        // The next representable f32 above the tie rounds up.
        let above = f32::from_bits(0x3f80_1001);
        assert_eq!(f32_to_f16_bits(above), 0x3c01);
        // 1 + 3·2^-11: tie between 0x3c01 and 0x3c02 → even (0x3c02).
        let tie2 = f32::from_bits(0x3f80_3000);
        assert_eq!(f32_to_f16_bits(tie2), 0x3c02);
    }

    #[test]
    fn every_half_pattern_round_trips_through_f32() {
        for h in 0..=u16::MAX {
            let x = f16_bits_to_f32(h);
            if x.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
            } else {
                assert_eq!(f32_to_f16_bits(x), h, "pattern {h:#06x}");
            }
        }
    }
}
