//! LZSS-style byte compressor, from scratch.
//!
//! Token stream: a control byte `T` either introduces a literal run
//! (`T < 0x80`: the next `T + 1` bytes are copied verbatim) or a match
//! (`T ≥ 0x80`: copy `(T & 0x7f) + MIN_MATCH` bytes from `distance` bytes
//! back, where `distance` is the following little-endian `u16`). Matches
//! may overlap their own output (RLE-style), which the byte-by-byte copy
//! in [`decompress`] handles naturally.
//!
//! The compressor is greedy with a single-probe hash table over 4-byte
//! prefixes — small, deterministic, and fast enough for bundle encoding;
//! correctness never depends on match quality because every input can
//! fall back to literal runs.

use super::CodecError;

/// Shortest encodable match; shorter repeats go out as literals.
const MIN_MATCH: usize = 4;
/// Longest encodable match (`0x7f + MIN_MATCH`).
const MAX_MATCH: usize = 0x7f + MIN_MATCH;
/// Longest literal run one control byte can introduce.
const MAX_LITERAL: usize = 0x80;
/// Match window (maximum back-reference distance).
const WINDOW: usize = u16::MAX as usize;

const HASH_BITS: u32 = 15;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Flushes `raw[start..end]` as literal runs.
fn flush_literals(raw: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    let mut s = start;
    while s < end {
        let run = (end - s).min(MAX_LITERAL);
        out.push((run - 1) as u8);
        out.extend_from_slice(&raw[s..s + run]);
        s += run;
    }
}

/// Compresses `raw`; always succeeds (worst case one control byte per 128
/// literals, ~0.8% expansion).
pub(crate) fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= raw.len() {
        let h = hash4(&raw[i..]);
        let cand = head[h];
        head[h] = i;
        let mut len = 0usize;
        if cand != usize::MAX && i - cand <= WINDOW {
            let max_len = (raw.len() - i).min(MAX_MATCH);
            while len < max_len && raw[cand + len] == raw[i + len] {
                len += 1;
            }
        }
        if len >= MIN_MATCH {
            flush_literals(raw, lit_start, i, &mut out);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            // Index the positions the match skipped so later references
            // can land inside it.
            let stop = (i + len).min(raw.len().saturating_sub(MIN_MATCH - 1));
            for j in (i + 1)..stop {
                head[hash4(&raw[j..])] = j;
            }
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(raw, lit_start, raw.len(), &mut out);
    out
}

/// Decompresses into exactly `raw_len` bytes, rejecting malformed streams
/// with a typed error.
pub(crate) fn decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, CodecError> {
    let corrupt = |detail: String| CodecError::Corrupt {
        stage: "lz",
        detail,
    };
    let mut out: Vec<u8> = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while pos < data.len() {
        let ctrl = data[pos];
        pos += 1;
        if ctrl < 0x80 {
            let run = ctrl as usize + 1;
            let lits = data
                .get(pos..pos + run)
                .ok_or(CodecError::Truncated("lz"))?;
            pos += run;
            if out.len() + run > raw_len {
                return Err(corrupt(format!(
                    "literal run overflows declared length {raw_len}"
                )));
            }
            out.extend_from_slice(lits);
        } else {
            let len = (ctrl & 0x7f) as usize + MIN_MATCH;
            let d = data.get(pos..pos + 2).ok_or(CodecError::Truncated("lz"))?;
            pos += 2;
            let dist = u16::from_le_bytes([d[0], d[1]]) as usize;
            if dist == 0 || dist > out.len() {
                return Err(corrupt(format!(
                    "back-reference distance {dist} outside the {} bytes produced",
                    out.len()
                )));
            }
            if out.len() + len > raw_len {
                return Err(corrupt(format!(
                    "match overflows declared length {raw_len}"
                )));
            }
            // Byte-by-byte copy: matches may overlap their own output.
            let start = out.len() - dist;
            for j in 0..len {
                let b = out[start + j];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(corrupt(format!(
            "stream produced {} bytes, header declared {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raw: &[u8]) {
        let packed = compress(raw);
        assert_eq!(decompress(&packed, raw.len()).unwrap(), raw);
    }

    #[test]
    fn byte_exact_on_varied_streams() {
        round_trip(&[]);
        round_trip(b"a");
        round_trip(b"abcabcabcabcabcabc");
        round_trip(&[0u8; 10_000]);
        round_trip(&(0..=255u8).cycle().take(2000).collect::<Vec<_>>());
        let noisy: Vec<u8> = (0..3000)
            .map(|i| ((i * 2654435761u64) >> 7) as u8)
            .collect();
        round_trip(&noisy);
        // Long literal tails around the MAX_LITERAL boundary.
        for n in [127, 128, 129, 255, 256, 257] {
            let lits: Vec<u8> = (0..n).map(|i| (i * 7 % 253) as u8).collect();
            round_trip(&lits);
        }
    }

    #[test]
    fn repetitive_streams_shrink_well() {
        let repeated: Vec<u8> = b"weights-and-biases-".repeat(200).to_vec();
        let packed = compress(&repeated);
        assert!(
            packed.len() < repeated.len() / 5,
            "expected <20% of {}, got {}",
            repeated.len(),
            packed.len()
        );
        round_trip(&repeated);
    }

    #[test]
    fn overlapping_matches_reconstruct() {
        // RLE-style: a run of one byte back-references itself.
        let mut v = vec![7u8; 500];
        v.extend_from_slice(b"tail");
        round_trip(&v);
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let packed = compress(&b"abcabcabcabcabcabc-the-quick-brown-fox".repeat(8));
        for cut in 0..packed.len() {
            // A strict prefix either truncates a token or under-produces.
            assert!(
                decompress(&packed[..cut], 38 * 8).is_err(),
                "cut {cut} should not decode"
            );
        }
        // Bad distance: match token before any output exists.
        let bad = [0x80u8, 0x01, 0x00]; // len-4 match, distance 1
        assert!(matches!(
            decompress(&bad, 4),
            Err(CodecError::Corrupt { stage: "lz", .. })
        ));
        // Zero distance.
        let zero = [0x00u8, b'x', 0x80, 0x00, 0x00];
        assert!(matches!(
            decompress(&zero, 5),
            Err(CodecError::Corrupt { stage: "lz", .. })
        ));
        // Over-production vs the declared length.
        let over = [0x03u8, 1, 2, 3, 4];
        assert!(decompress(&over, 2).is_err());
    }
}
