//! Delta + zigzag bit-packing, from scratch.
//!
//! The stream is split into blocks of [`BLOCK`] bytes. Each block is coded
//! in one of two modes, whichever packs narrower:
//!
//! * **raw-zigzag** — every byte, interpreted as `i8`, is zigzag-mapped so
//!   small-magnitude values (the bulk of a quantized weight stream) become
//!   small unsigned codes;
//! * **delta-zigzag** — the wrapping difference to the previous byte is
//!   zigzag-mapped instead, which wins on smooth streams (biases, f16
//!   exponent bytes).
//!
//! Codes are packed LSB-first at the block's maximum bit width. One header
//! byte per block records `mode << 7 | width`; width 0 means every code in
//! the block is zero and no payload bytes follow. The decoder only needs
//! the original byte count (recorded in the stage params by the chain
//! layer) to reconstruct the block structure exactly.

use super::CodecError;

/// Bytes per block; one header byte of overhead each.
pub(crate) const BLOCK: usize = 128;

fn zigzag(v: i8) -> u8 {
    let w = i32::from(v);
    ((w << 1) ^ (w >> 7)) as u8
}

fn unzigzag(z: u8) -> i8 {
    let w = i32::from(z);
    ((w >> 1) ^ -(w & 1)) as i8
}

fn width_of(max_code: u8) -> u32 {
    8 - u32::from(max_code).leading_zeros().saturating_sub(24)
}

/// Compresses `raw`; always succeeds (worst case ~0.8% expansion from the
/// per-block headers).
pub(crate) fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() + raw.len() / BLOCK + 2);
    let mut prev = 0u8;
    for block in raw.chunks(BLOCK) {
        let mut raw_codes = [0u8; BLOCK];
        let mut delta_codes = [0u8; BLOCK];
        let (mut raw_max, mut delta_max) = (0u8, 0u8);
        let mut p = prev;
        for (i, &b) in block.iter().enumerate() {
            let rz = zigzag(b as i8);
            let dz = zigzag(b.wrapping_sub(p) as i8);
            raw_codes[i] = rz;
            delta_codes[i] = dz;
            raw_max = raw_max.max(rz);
            delta_max = delta_max.max(dz);
            p = b;
        }
        let (raw_w, delta_w) = (width_of(raw_max), width_of(delta_max));
        let (mode, width, codes) = if delta_w < raw_w {
            (1u8, delta_w, &delta_codes[..block.len()])
        } else {
            (0u8, raw_w, &raw_codes[..block.len()])
        };
        out.push((mode << 7) | width as u8);
        pack(codes, width, &mut out);
        prev = *block.last().expect("chunks are non-empty");
    }
    out
}

/// LSB-first bit packing at `width` bits per code.
fn pack(codes: &[u8], width: u32, out: &mut Vec<u8>) {
    if width == 0 {
        return;
    }
    let mut acc = 0u32;
    let mut nbits = 0u32;
    for &c in codes {
        acc |= u32::from(c) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
}

/// Decompresses into exactly `raw_len` bytes, rejecting malformed streams
/// with a typed error.
pub(crate) fn decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, CodecError> {
    let corrupt = |detail: String| CodecError::Corrupt {
        stage: "delta-bitpack",
        detail,
    };
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    let mut prev = 0u8;
    while out.len() < raw_len {
        let count = BLOCK.min(raw_len - out.len());
        let header = *data
            .get(pos)
            .ok_or(CodecError::Truncated("delta-bitpack"))?;
        pos += 1;
        let mode = header >> 7;
        let width = u32::from(header & 0x7f);
        if width > 8 {
            return Err(corrupt(format!("bit width {width} exceeds 8")));
        }
        let nbytes = (count * width as usize).div_ceil(8);
        let packed = data
            .get(pos..pos + nbytes)
            .ok_or(CodecError::Truncated("delta-bitpack"))?;
        pos += nbytes;
        let mask = if width == 0 { 0 } else { (1u32 << width) - 1 };
        let mut acc = 0u32;
        let mut nbits = 0u32;
        let mut read = 0usize;
        for _ in 0..count {
            while nbits < width {
                acc |= u32::from(packed[read]) << nbits;
                read += 1;
                nbits += 8;
            }
            let code = (acc & mask) as u8;
            acc >>= width;
            nbits -= width;
            let v = unzigzag(code);
            let b = if mode == 1 {
                prev.wrapping_add(v as u8)
            } else {
                v as u8
            };
            out.push(b);
            prev = b;
        }
    }
    if pos != data.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the final block",
            data.len() - pos
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raw: &[u8]) {
        let packed = compress(raw);
        assert_eq!(decompress(&packed, raw.len()).unwrap(), raw);
    }

    #[test]
    fn byte_exact_on_varied_streams() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[0xff; 300]);
        round_trip(&(0..=255u8).collect::<Vec<_>>());
        let ramp: Vec<u8> = (0..1000).map(|i| (i / 4) as u8).collect();
        round_trip(&ramp);
        let noisy: Vec<u8> = (0..777).map(|i| ((i * 37) % 251) as u8).collect();
        round_trip(&noisy);
    }

    #[test]
    fn small_magnitude_int8_streams_shrink() {
        // Quantized-weight-like stream: i8 values within ±15.
        let q: Vec<u8> = (0..4096)
            .map(|i| (((i * 29) % 31) - 15) as i8 as u8)
            .collect();
        let packed = compress(&q);
        assert!(
            packed.len() < q.len() * 3 / 4,
            "expected <75% of {}, got {}",
            q.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed, q.len()).unwrap(), q);
    }

    #[test]
    fn smooth_streams_choose_delta() {
        let ramp: Vec<u8> = (0..512).map(|i| (i / 2) as u8).collect();
        let packed = compress(&ramp);
        assert!(packed.len() < ramp.len() / 2);
        assert_eq!(decompress(&packed, ramp.len()).unwrap(), ramp);
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let packed = compress(&[5u8; 200]);
        // Truncation at every cut.
        for cut in 0..packed.len() {
            assert!(decompress(&packed[..cut], 200).is_err(), "cut {cut}");
        }
        // Impossible width.
        let mut bad = packed.clone();
        bad[0] = 0x09; // mode 0, width 9
        assert!(matches!(
            decompress(&bad, 200),
            Err(CodecError::Corrupt {
                stage: "delta-bitpack",
                ..
            })
        ));
        // Trailing garbage.
        let mut long = packed;
        long.push(0);
        assert!(matches!(
            decompress(&long, 200),
            Err(CodecError::Corrupt { .. })
        ));
    }
}
