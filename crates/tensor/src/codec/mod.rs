//! Self-describing codec chains for tensor payloads.
//!
//! A chain is one **array stage** (f32 → bytes) followed by zero or more
//! **byte stages** (bytes → bytes), in the zarrs layering style: the array
//! stage decides the numeric representation on the wire, the byte stages
//! compress it. Every stage writes an `id + params` header, so a decoder
//! needs **no out-of-band configuration** — [`decode`] reconstructs the
//! values from the stream alone.
//!
//! Array stages:
//!
//! * [`ArrayStage::F32`] — identity little-endian `f32` (lossless);
//! * [`ArrayStage::F16`] — IEEE 754 binary16 with round-to-nearest-even
//!   ([`f16`], from scratch — no half-float dependency);
//! * [`ArrayStage::Int8`] — per-tensor symmetric int8: `scale = max|x|/127`
//!   recorded in the stage params, `q = clamp(round(x/scale), ±127)`.
//!
//! Byte stages:
//!
//! * [`ByteStage::DeltaBitpack`] — per-block zigzag (optionally delta)
//!   bit-packing ([`bitpack`]), tuned for int8 weight streams;
//! * [`ByteStage::Lz`] — an LZSS-style byte compressor ([`lz`]) with a
//!   64 KiB window, byte-exact on every input.
//!
//! Decoding a quantized stream can stop at the integer representation
//! ([`DecodedTensor::Int8`]) so serving keeps weights in int8 natively;
//! [`DecodedTensor::into_f32`] dequantizes when f32 is required.
//!
//! # Wire format
//!
//! ```text
//! u8   stage count (1 + byte stages, ≤ MAX_STAGES)
//! per stage, in encode order:
//!   u16 id (LE)      — see STAGE_* constants
//!   u32 params len   — 0, or 4 (int8 scale), or 8 (pre-compression length)
//!   params bytes
//! u64  payload len (LE)
//! payload
//! ```
//!
//! Every malformed input maps to a typed [`CodecError`] — never a panic —
//! and [`CodecError::stage`] names the stage that rejected it, which the
//! bundle layer surfaces as `BundleError::Codec { stage, .. }`.

pub mod bitpack;
pub mod f16;
pub mod lz;

use std::fmt;

/// Stage id: identity little-endian f32.
pub const STAGE_F32: u16 = 0x0001;
/// Stage id: IEEE binary16.
pub const STAGE_F16: u16 = 0x0002;
/// Stage id: per-tensor symmetric int8 (params = f32 LE scale).
pub const STAGE_INT8: u16 = 0x0003;
/// Stage id: delta + zigzag bit-packing (params = u64 LE raw length).
pub const STAGE_DELTA_BITPACK: u16 = 0x0010;
/// Stage id: LZSS byte compressor (params = u64 LE raw length).
pub const STAGE_LZ: u16 = 0x0011;

/// Upper bound on stages per chain; a header claiming more is corrupt.
const MAX_STAGES: usize = 8;

/// Decompression output must stay within this expansion factor of its
/// input — a corrupt length header cannot demand an absurd allocation.
const MAX_EXPANSION: usize = 256;

/// Why a codec stream was rejected. Each failure mode is a distinct
/// variant so callers (the bundle rejection matrix, operators' logs) can
/// react to the cause instead of string-matching.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// A stage header carried an id this build does not implement.
    UnknownId(u16),
    /// The stream ended before the named part could be read.
    Truncated(&'static str),
    /// An int8 stage carried an unusable scale (zero, negative, NaN, or
    /// infinite) — encoding non-finite data or a corrupted params field.
    BadScale(f32),
    /// A stage's payload failed to decode (bit-flip, impossible length,
    /// bad back-reference, ...).
    Corrupt {
        /// Stage that rejected the payload.
        stage: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
}

impl CodecError {
    /// The stage that rejected the stream, for typed bundle errors.
    pub fn stage(&self) -> &'static str {
        match self {
            CodecError::UnknownId(_) => "header",
            CodecError::Truncated(what) => what,
            CodecError::BadScale(_) => "int8",
            CodecError::Corrupt { stage, .. } => stage,
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnknownId(id) => write!(f, "unknown codec stage id {id:#06x}"),
            CodecError::Truncated(what) => write!(f, "codec stream truncated at {what}"),
            CodecError::BadScale(s) => write!(f, "unusable int8 scale {s}"),
            CodecError::Corrupt { stage, detail } => {
                write!(f, "corrupt {stage} payload: {detail}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// The numeric representation a chain puts on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayStage {
    /// Lossless little-endian f32.
    F32,
    /// IEEE binary16, round-to-nearest-even.
    F16,
    /// Per-tensor symmetric int8 with recorded scale.
    Int8,
}

/// A bytes → bytes compression stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteStage {
    /// Per-block zigzag/delta bit-packing.
    DeltaBitpack,
    /// LZSS byte compression.
    Lz,
}

/// One array stage plus an ordered list of byte stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecChain {
    /// Numeric representation stage.
    pub array: ArrayStage,
    /// Compression stages, applied in order after the array stage.
    pub bytes: Vec<ByteStage>,
}

impl CodecChain {
    /// Identity chain: f32 on the wire, no compression.
    pub fn f32() -> Self {
        CodecChain {
            array: ArrayStage::F32,
            bytes: Vec::new(),
        }
    }

    /// Half-precision plus both compression stages.
    pub fn f16() -> Self {
        CodecChain {
            array: ArrayStage::F16,
            bytes: vec![ByteStage::DeltaBitpack, ByteStage::Lz],
        }
    }

    /// Symmetric int8 plus both compression stages.
    pub fn int8() -> Self {
        CodecChain {
            array: ArrayStage::Int8,
            bytes: vec![ByteStage::DeltaBitpack, ByteStage::Lz],
        }
    }

    /// Short tag for benchmark labels, e.g. `"int8+dbp+lz"`.
    pub fn tag(&self) -> String {
        let mut t = match self.array {
            ArrayStage::F32 => "f32".to_string(),
            ArrayStage::F16 => "f16".to_string(),
            ArrayStage::Int8 => "int8".to_string(),
        };
        for b in &self.bytes {
            t.push_str(match b {
                ByteStage::DeltaBitpack => "+dbp",
                ByteStage::Lz => "+lz",
            });
        }
        t
    }
}

/// A decoded tensor payload: either dequantized values or the native
/// integer representation of an int8 stream, so quantized serving never
/// round-trips through f32.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedTensor {
    /// Values from an f32 or f16 chain.
    F32(Vec<f32>),
    /// Values from an int8 chain, kept quantized.
    Int8 {
        /// Quantized values in `[-127, 127]`.
        q: Vec<i8>,
        /// Dequantization scale (`x ≈ q · scale`), finite and positive.
        scale: f32,
    },
}

impl DecodedTensor {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            DecodedTensor::F32(v) => v.len(),
            DecodedTensor::Int8 { q, .. } => q.len(),
        }
    }

    /// True when the payload held no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequantizes (or passes through) to f32.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            DecodedTensor::F32(v) => v,
            DecodedTensor::Int8 { q, scale } => dequantize_symmetric(&q, scale),
        }
    }
}

/// Per-tensor symmetric quantization: `scale = max|x| / 127` (1.0 for an
/// all-zero tensor), `q = clamp(round(x / scale), -127, 127)`. Returns
/// [`CodecError::BadScale`] if any value is non-finite — a scale derived
/// from NaN or ∞ could never dequantize.
pub fn quantize_symmetric(data: &[f32]) -> Result<(Vec<i8>, f32), CodecError> {
    let mut amax = 0.0f32;
    for &x in data {
        if !x.is_finite() {
            return Err(CodecError::BadScale(x));
        }
        amax = amax.max(x.abs());
    }
    // A denormal amax could underflow `amax / 127` to zero; clamping to
    // the smallest normal keeps `x / scale` finite and within ±127.
    let mut scale = if amax == 0.0 {
        1.0
    } else {
        (amax / 127.0).max(f32::MIN_POSITIVE)
    };
    // Near f32::MAX the division rounds up just enough that `127 · scale`
    // overflows; one-ulp steps down keep every dequantized value finite.
    while !(scale * 127.0).is_finite() {
        scale = f32::from_bits(scale.to_bits() - 1);
    }
    let q = data
        .iter()
        .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    Ok((q, scale))
}

/// Inverse of [`quantize_symmetric`]: `x = q · scale`.
pub fn dequantize_symmetric(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&v| f32::from(v) * scale).collect()
}

/// Encodes `data` through `chain` into a self-describing stream.
///
/// Only the int8 array stage can fail (non-finite input); the f32/f16
/// stages and both byte stages accept every input.
pub fn encode(data: &[f32], chain: &CodecChain) -> Result<Vec<u8>, CodecError> {
    let (payload, array_header) = match chain.array {
        ArrayStage::F32 => {
            let mut raw = Vec::with_capacity(data.len() * 4);
            for &x in data {
                raw.extend_from_slice(&x.to_le_bytes());
            }
            (raw, StageHeader::new(STAGE_F32, Vec::new()))
        }
        ArrayStage::F16 => {
            let mut raw = Vec::with_capacity(data.len() * 2);
            for &x in data {
                raw.extend_from_slice(&f16::f32_to_f16_bits(x).to_le_bytes());
            }
            (raw, StageHeader::new(STAGE_F16, Vec::new()))
        }
        ArrayStage::Int8 => {
            let (q, scale) = quantize_symmetric(data)?;
            let raw = q.iter().map(|&v| v as u8).collect();
            (
                raw,
                StageHeader::new(STAGE_INT8, scale.to_le_bytes().to_vec()),
            )
        }
    };
    Ok(assemble(payload, array_header, &chain.bytes))
}

/// Encodes an **already-quantized** tensor (int8 values + scale) without
/// re-quantizing, so a natively quantized member round-trips bit-exactly
/// through its bundle.
pub fn encode_q8(q: &[i8], scale: f32, byte_stages: &[ByteStage]) -> Result<Vec<u8>, CodecError> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err(CodecError::BadScale(scale));
    }
    let raw: Vec<u8> = q.iter().map(|&v| v as u8).collect();
    let header = StageHeader::new(STAGE_INT8, scale.to_le_bytes().to_vec());
    Ok(assemble(raw, header, byte_stages))
}

struct StageHeader {
    id: u16,
    params: Vec<u8>,
}

impl StageHeader {
    fn new(id: u16, params: Vec<u8>) -> Self {
        StageHeader { id, params }
    }

    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.params);
    }
}

/// Runs the byte stages over `payload` and lays the full stream out.
fn assemble(mut payload: Vec<u8>, array_header: StageHeader, byte_stages: &[ByteStage]) -> Vec<u8> {
    let mut headers = vec![array_header];
    for stage in byte_stages {
        let raw_len = payload.len() as u64;
        let (id, packed) = match stage {
            ByteStage::DeltaBitpack => (STAGE_DELTA_BITPACK, bitpack::compress(&payload)),
            ByteStage::Lz => (STAGE_LZ, lz::compress(&payload)),
        };
        headers.push(StageHeader::new(id, raw_len.to_le_bytes().to_vec()));
        payload = packed;
    }
    let mut out = Vec::with_capacity(payload.len() + 16 * headers.len() + 16);
    out.push(headers.len() as u8);
    for h in &headers {
        h.write(&mut out);
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a self-describing stream produced by [`encode`] /
/// [`encode_q8`], keeping int8 payloads quantized.
pub fn decode(stream: &[u8]) -> Result<DecodedTensor, CodecError> {
    let mut cur = Cursor {
        buf: stream,
        pos: 0,
    };
    let count = cur.take(1, "stage header")?[0] as usize;
    if count == 0 || count > MAX_STAGES {
        return Err(CodecError::Corrupt {
            stage: "header",
            detail: format!("stage count {count} out of range 1..={MAX_STAGES}"),
        });
    }
    let mut stages = Vec::with_capacity(count);
    for _ in 0..count {
        let id_bytes = cur.take(2, "stage header")?;
        let id = u16::from_le_bytes([id_bytes[0], id_bytes[1]]);
        let len_bytes = cur.take(4, "stage header")?;
        let params_len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if params_len > 16 {
            return Err(CodecError::Corrupt {
                stage: "header",
                detail: format!("stage {id:#06x} params length {params_len} exceeds 16"),
            });
        }
        let params = cur.take(params_len, "stage header")?.to_vec();
        stages.push((id, params));
    }
    let len_bytes = cur.take(8, "payload")?;
    let payload_len = u64::from_le_bytes(len_bytes.try_into().expect("8 bytes")) as usize;
    let mut payload = cur.take(payload_len, "payload")?.to_vec();

    // Undo the byte stages in reverse order; stages[0] stays for the
    // array decode.
    for (id, params) in stages[1..].iter().rev() {
        let raw_len = byte_stage_raw_len(*id, params, payload.len())?;
        payload = match *id {
            STAGE_DELTA_BITPACK => bitpack::decompress(&payload, raw_len)?,
            STAGE_LZ => lz::decompress(&payload, raw_len)?,
            other => return Err(CodecError::UnknownId(other)),
        };
    }

    let (id, params) = &stages[0];
    match *id {
        STAGE_F32 => {
            if payload.len() % 4 != 0 {
                return Err(CodecError::Corrupt {
                    stage: "f32",
                    detail: format!("payload length {} not a multiple of 4", payload.len()),
                });
            }
            let vals = payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            Ok(DecodedTensor::F32(vals))
        }
        STAGE_F16 => {
            if payload.len() % 2 != 0 {
                return Err(CodecError::Corrupt {
                    stage: "f16",
                    detail: format!("payload length {} not a multiple of 2", payload.len()),
                });
            }
            let vals = payload
                .chunks_exact(2)
                .map(|c| f16::f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
                .collect();
            Ok(DecodedTensor::F32(vals))
        }
        STAGE_INT8 => {
            if params.len() != 4 {
                return Err(CodecError::Truncated("int8 params"));
            }
            let scale = f32::from_le_bytes(params.as_slice().try_into().expect("4 bytes"));
            if !(scale.is_finite() && scale > 0.0) {
                return Err(CodecError::BadScale(scale));
            }
            let q = payload.iter().map(|&b| b as i8).collect();
            Ok(DecodedTensor::Int8 { q, scale })
        }
        other => Err(CodecError::UnknownId(other)),
    }
}

/// Decodes and always dequantizes to f32.
pub fn decode_f32(stream: &[u8]) -> Result<Vec<f32>, CodecError> {
    Ok(decode(stream)?.into_f32())
}

/// Validates a byte stage's recorded pre-compression length against the
/// sanity expansion bound.
fn byte_stage_raw_len(id: u16, params: &[u8], in_len: usize) -> Result<usize, CodecError> {
    let stage = match id {
        STAGE_DELTA_BITPACK => "delta-bitpack",
        STAGE_LZ => "lz",
        other => return Err(CodecError::UnknownId(other)),
    };
    if params.len() != 8 {
        return Err(CodecError::Truncated("stage header"));
    }
    let raw_len = u64::from_le_bytes(params.try_into().expect("8 bytes"));
    let cap = (in_len.saturating_mul(MAX_EXPANSION)).saturating_add(1024) as u64;
    if raw_len > cap {
        return Err(CodecError::Corrupt {
            stage,
            detail: format!("claimed raw length {raw_len} exceeds plausible bound {cap}"),
        });
    }
    Ok(raw_len as usize)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37)
            .collect()
    }

    #[test]
    fn f32_chain_is_bit_exact() {
        for chain in [
            CodecChain::f32(),
            CodecChain {
                array: ArrayStage::F32,
                bytes: vec![ByteStage::DeltaBitpack, ByteStage::Lz],
            },
        ] {
            let data = sample(97);
            let stream = encode(&data, &chain).unwrap();
            assert_eq!(decode_f32(&stream).unwrap(), data, "{}", chain.tag());
        }
    }

    #[test]
    fn int8_round_trip_stays_quantized_and_bounded() {
        let data = sample(64);
        let stream = encode(&data, &CodecChain::int8()).unwrap();
        match decode(&stream).unwrap() {
            DecodedTensor::Int8 { q, scale } => {
                assert_eq!(q.len(), data.len());
                for (&x, &qi) in data.iter().zip(&q) {
                    assert!((x - f32::from(qi) * scale).abs() <= scale * 0.5 + 1e-12);
                }
            }
            other => panic!("expected Int8, got {other:?}"),
        }
    }

    #[test]
    fn prequantized_round_trip_is_bit_exact() {
        let q: Vec<i8> = (0..100).map(|i| ((i * 7) % 255) as u8 as i8).collect();
        let stream = encode_q8(&q, 0.125, &[ByteStage::DeltaBitpack, ByteStage::Lz]).unwrap();
        match decode(&stream).unwrap() {
            DecodedTensor::Int8 { q: back, scale } => {
                assert_eq!(back, q);
                assert_eq!(scale, 0.125);
            }
            other => panic!("expected Int8, got {other:?}"),
        }
    }

    #[test]
    fn malformed_streams_are_typed_errors() {
        let data = sample(32);
        let stream = encode(&data, &CodecChain::int8()).unwrap();
        // Unknown stage id.
        let mut bad_id = stream.clone();
        bad_id[1] = 0x7f;
        assert!(matches!(decode(&bad_id), Err(CodecError::UnknownId(_))));
        // Truncated at every cut never panics.
        for cut in 0..stream.len() {
            assert!(decode(&stream[..cut]).is_err(), "cut {cut}");
        }
        // Zero / NaN scale.
        let mut zero_scale = stream.clone();
        zero_scale[7..11].copy_from_slice(&0.0f32.to_le_bytes());
        assert!(matches!(
            decode(&zero_scale),
            Err(CodecError::BadScale(s)) if s == 0.0
        ));
        let mut nan_scale = stream;
        nan_scale[7..11].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(matches!(
            decode(&nan_scale),
            Err(CodecError::BadScale(s)) if s.is_nan()
        ));
    }

    #[test]
    fn non_finite_input_is_rejected_at_encode() {
        let err = encode(&[1.0, f32::NAN], &CodecChain::int8()).unwrap_err();
        assert!(matches!(err, CodecError::BadScale(_)));
        assert_eq!(err.stage(), "int8");
    }

    #[test]
    fn empty_tensor_round_trips() {
        for chain in [CodecChain::f32(), CodecChain::f16(), CodecChain::int8()] {
            let stream = encode(&[], &chain).unwrap();
            assert_eq!(decode(&stream).unwrap().len(), 0, "{}", chain.tag());
        }
    }
}
