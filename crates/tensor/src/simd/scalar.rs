//! Portable scalar backend.
//!
//! The gemm micro-kernels are the PR 2 register tiles: `MR` (4) output
//! rows by an `NR`-wide column band (16/8/4), reduction innermost, one
//! fused `mul_add` accumulator per output element. Under
//! `-C target-cpu=native` the compiler auto-vectorizes them; without it
//! they stay correct (`mul_add` falls back to the correctly-rounded libm
//! `fma`, producing the same bits as the hardware instruction).
//!
//! The slice reductions ([`row_max`], [`sum_sq`], [`sq_l2_dist`]) emulate
//! the AVX2 backend's 8-lane accumulator layout and fixed combine tree in
//! plain scalar code, so the two backends agree bit-for-bit even for ops
//! whose result depends on association order. See the module docs of
//! [`crate::simd`] for the full determinism contract.

/// Output rows per gemm micro-kernel tile. Four rows × a 16-wide column
/// band is 8 256-bit accumulator registers plus the `B` row and the `A`
/// broadcast when auto-vectorized (6 rows was measured to spill here; the
/// explicit AVX2 backend schedules registers itself and affords 6).
const MR: usize = 4;

/// `MR_ACT×NR` register tile of `C += A·B`: rows `ib..ib+MR_ACT`, columns
/// `jb..jb+NR`, reduction over `0..k` ascending.
#[inline(always)]
fn tile_ab<const NR: usize, const MR_ACT: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    ib: usize,
    jb: usize,
) {
    let mut acc = [[0.0f32; NR]; MR_ACT];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&c[(ib + r) * n + jb..(ib + r) * n + jb + NR]);
    }
    for kk in 0..k {
        let brow = &b[kk * n + jb..kk * n + jb + NR];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[(ib + r) * k + kk];
            for j in 0..NR {
                // mul_add is a single correctly-rounded fused operation —
                // bit-identical to the AVX2 backend's `vfmaddps` lanes.
                accr[j] = av.mul_add(brow[j], accr[j]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        c[(ib + r) * n + jb..(ib + r) * n + jb + NR].copy_from_slice(accr);
    }
}

/// One `NR`-wide column band of `C += A·B` over rows `0..m`.
#[inline(always)]
fn band_ab<const NR: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    jb: usize,
) {
    let mut ib = 0;
    while ib + MR <= m {
        tile_ab::<NR, MR>(c, a, b, k, n, ib, jb);
        ib += MR;
    }
    match m - ib {
        3 => tile_ab::<NR, 3>(c, a, b, k, n, ib, jb),
        2 => tile_ab::<NR, 2>(c, a, b, k, n, ib, jb),
        1 => tile_ab::<NR, 1>(c, a, b, k, n, ib, jb),
        _ => {}
    }
}

/// Vectorizable column bands (16/8/4 wide) of `C += A·B`; returns how many
/// columns were covered. The caller owns the unfused scalar tail.
pub(crate) fn gemm_ab_bands(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> usize {
    let mut jb = 0;
    while n - jb >= 16 {
        band_ab::<16>(c, a, b, m, k, n, jb);
        jb += 16;
    }
    if n - jb >= 8 {
        band_ab::<8>(c, a, b, m, k, n, jb);
        jb += 8;
    }
    if n - jb >= 4 {
        band_ab::<4>(c, a, b, m, k, n, jb);
        jb += 4;
    }
    jb
}

/// `MR_ACT×NR` register tile of `C += Aᵀ·B`: chunk rows `crow..crow+MR_ACT`
/// (columns `acol..acol+MR_ACT` of `A[m,k]`), reduction over `i = 0..m`
/// ascending. The `A` reads per step are contiguous: `A[i][acol..]`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile_atb<const NR: usize, const MR_ACT: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    crow: usize,
    acol: usize,
    jb: usize,
) {
    let mut acc = [[0.0f32; NR]; MR_ACT];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&c[(crow + r) * n + jb..(crow + r) * n + jb + NR]);
    }
    for i in 0..m {
        let brow = &b[i * n + jb..i * n + jb + NR];
        let arow = &a[i * k + acol..i * k + acol + MR_ACT];
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = arow[r];
            for j in 0..NR {
                accr[j] = av.mul_add(brow[j], accr[j]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        c[(crow + r) * n + jb..(crow + r) * n + jb + NR].copy_from_slice(accr);
    }
}

/// One `NR`-wide column band of `C += Aᵀ·B` over all `rows` chunk rows.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn band_atb<const NR: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
    jb: usize,
) {
    let mut r0 = 0;
    while r0 + MR <= rows {
        tile_atb::<NR, MR>(c, a, b, m, k, n, r0, kb0 + r0, jb);
        r0 += MR;
    }
    match rows - r0 {
        3 => tile_atb::<NR, 3>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        2 => tile_atb::<NR, 2>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        1 => tile_atb::<NR, 1>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        _ => {}
    }
}

/// Vectorizable column bands of `C += Aᵀ·B` for chunk rows
/// `kb0..kb0+rows`; returns how many columns were covered.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_atb_bands(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
) -> usize {
    let mut jb = 0;
    while n - jb >= 16 {
        band_atb::<16>(c, a, b, m, k, n, kb0, rows, jb);
        jb += 16;
    }
    if n - jb >= 8 {
        band_atb::<8>(c, a, b, m, k, n, kb0, rows, jb);
        jb += 8;
    }
    if n - jb >= 4 {
        band_atb::<4>(c, a, b, m, k, n, kb0, rows, jb);
        jb += 4;
    }
    jb
}

/// In-place `xs[i] += alpha * ys[i]` — deliberately *unfused* (separate
/// multiply and add roundings), matching the historical SGD update and the
/// AVX2 backend's `mul` + `add` pair.
pub(crate) fn axpy(xs: &mut [f32], ys: &[f32], alpha: f32) {
    for (x, &y) in xs.iter_mut().zip(ys.iter()) {
        *x += alpha * y;
    }
}

/// `MAXPS` comparison semantics: returns `b` when the operands are equal,
/// or when either is NaN — exactly what `_mm{256}_max_ps(a, b)` does per
/// lane, so both backends resolve ±0 and NaN ties identically.
#[inline(always)]
fn vmax(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Max over a row, with the AVX2 backend's lane layout: 8 running lane
/// maxima over `len/8` full blocks, combined `(l, l+4) → (0,2)/(1,3) →
/// final`, then the `len%8` tail folded in sequentially.
pub(crate) fn row_max(row: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; 8];
    let mut chunks = row.chunks_exact(8);
    for block in &mut chunks {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = vmax(*lane, block[l]);
        }
    }
    let m4 = [
        vmax(lanes[0], lanes[4]),
        vmax(lanes[1], lanes[5]),
        vmax(lanes[2], lanes[6]),
        vmax(lanes[3], lanes[7]),
    ];
    let mut m = vmax(vmax(m4[0], m4[2]), vmax(m4[1], m4[3]));
    for &x in chunks.remainder() {
        m = vmax(m, x);
    }
    m
}

/// In-place `xs[i] *= s`. Each element scales independently, so the two
/// backends agree trivially.
pub(crate) fn scale_in_place(xs: &mut [f32], s: f32) {
    for x in xs.iter_mut() {
        *x *= s;
    }
}

/// Squared L2 distance `Σ (xs[i] − ys[i])²` in the 8-lane fused layout:
/// per-lane `mul_add` accumulators over full blocks, the fixed combine
/// tree `(l + l+4) → (0+2) + (1+3)`, then the tail fused in sequentially.
/// This is the shared accumulation shape of the Eq. 2 diversity norm.
pub(crate) fn sq_l2_dist(xs: &[f32], ys: &[f32]) -> f32 {
    debug_assert_eq!(xs.len(), ys.len());
    let mut lanes = [0.0f32; 8];
    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        for (l, lane) in lanes.iter_mut().enumerate() {
            let d = xs[i + l] - ys[i + l];
            *lane = d.mul_add(d, *lane);
        }
        i += 8;
    }
    let s4 = [
        lanes[0] + lanes[4],
        lanes[1] + lanes[5],
        lanes[2] + lanes[6],
        lanes[3] + lanes[7],
    ];
    let mut total = (s4[0] + s4[2]) + (s4[1] + s4[3]);
    while i < n {
        let d = xs[i] - ys[i];
        total = d.mul_add(d, total);
        i += 1;
    }
    total
}

/// Sum of squares `Σ xs[i]²` — [`sq_l2_dist`]'s layout with `ys = 0`.
pub(crate) fn sum_sq(xs: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let n = xs.len();
    let mut i = 0;
    while i + 8 <= n {
        for (l, lane) in lanes.iter_mut().enumerate() {
            let v = xs[i + l];
            *lane = v.mul_add(v, *lane);
        }
        i += 8;
    }
    let s4 = [
        lanes[0] + lanes[4],
        lanes[1] + lanes[5],
        lanes[2] + lanes[6],
        lanes[3] + lanes[7],
    ];
    let mut total = (s4[0] + s4[2]) + (s4[1] + s4[3]);
    while i < n {
        let v = xs[i];
        total = v.mul_add(v, total);
        i += 1;
    }
    total
}

/// `C += A·B` for int8 operands with i32 accumulation: `A[m,k]`, `B[k,n]`
/// row-major i8, `C[m,n]` i32. Integer arithmetic is exact, so any
/// summation order gives the same bits — this triple loop is the
/// reference the AVX2 kernel must (and trivially does) match.
pub(crate) fn gemm_i8_i32(c: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(a.len() >= m * k);
    debug_assert_eq!(b.len(), k * n);
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for l in 0..k {
            let av = i32::from(a[i * k + l]);
            let brow = &b[l * n..(l + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * i32::from(bv);
            }
        }
    }
}
