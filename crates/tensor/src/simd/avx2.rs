//! Explicit AVX2+FMA backend (`std::arch` intrinsics).
//!
//! Every function carries `#[target_feature(enable = "avx2,fma")]` and is
//! `unsafe` to call: the dispatch layer in [`crate::simd`] only routes
//! here after `is_x86_feature_detected!` confirmed both features at
//! runtime, so the binary itself stays portable (no compile-time
//! `target-cpu` requirement).
//!
//! # Bit-identity with the scalar backend
//!
//! * gemm tiles accumulate each output element with one `vfmaddps` lane
//!   per reduction step, ascending `k` — the same single correctly-rounded
//!   fused operation and order as the scalar backend's `mul_add`. The tile
//!   *shape* differs (6 rows here vs 4 there — the hand-scheduled kernel
//!   affords more accumulators than the auto-vectorizer), but tile shape
//!   only groups elements; it never reorders a single element's sum.
//! * Both backends cover the same greedy 16/8/4 column bands and leave the
//!   identical `n % 4` tail columns to the caller's shared scalar loop.
//! * Reductions ([`row_max`], [`sum_sq`], [`sq_l2_dist`]) use an 8-lane
//!   accumulator and a fixed combine tree that the scalar backend emulates
//!   lane-for-lane.

#![allow(clippy::missing_safety_doc)] // safety contract is the module doc

use std::arch::x86_64::*;

/// Output rows per gemm tile: 6 rows × 16 columns is 12 accumulator
/// registers + 2 `B` loads + 1 `A` broadcast = 15 of the 16 ymm registers.
const MR: usize = 6;

/// `MR_ACT × (8·NV)` tile of `C += A·B` (`NV` = 256-bit vectors per row,
/// 2 for the 16-wide band, 1 for the 8-wide band).
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_ab_w8<const NV: usize, const MR_ACT: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    ib: usize,
    jb: usize,
) {
    let cp = c.as_mut_ptr();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [[_mm256_setzero_ps(); NV]; MR_ACT];
    for (r, accr) in acc.iter_mut().enumerate() {
        for (v, lane) in accr.iter_mut().enumerate() {
            *lane = _mm256_loadu_ps(cp.add((ib + r) * n + jb + 8 * v));
        }
    }
    for kk in 0..k {
        let mut brow = [_mm256_setzero_ps(); NV];
        for (v, lane) in brow.iter_mut().enumerate() {
            *lane = _mm256_loadu_ps(bp.add(kk * n + jb + 8 * v));
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add((ib + r) * k + kk));
            for (v, lane) in accr.iter_mut().enumerate() {
                *lane = _mm256_fmadd_ps(av, brow[v], *lane);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        for (v, lane) in accr.iter().enumerate() {
            _mm256_storeu_ps(cp.add((ib + r) * n + jb + 8 * v), *lane);
        }
    }
}

/// `MR_ACT × 4` tile of `C += A·B` on 128-bit lanes (the 4-wide band).
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_ab_w4<const MR_ACT: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    ib: usize,
    jb: usize,
) {
    let cp = c.as_mut_ptr();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [_mm_setzero_ps(); MR_ACT];
    for (r, accr) in acc.iter_mut().enumerate() {
        *accr = _mm_loadu_ps(cp.add((ib + r) * n + jb));
    }
    for kk in 0..k {
        let brow = _mm_loadu_ps(bp.add(kk * n + jb));
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm_set1_ps(*ap.add((ib + r) * k + kk));
            *accr = _mm_fmadd_ps(av, brow, *accr);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        _mm_storeu_ps(cp.add((ib + r) * n + jb), *accr);
    }
}

/// One 8·`NV`-wide column band of `C += A·B` over rows `0..m`.
#[target_feature(enable = "avx2,fma")]
unsafe fn band_ab_w8<const NV: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    jb: usize,
) {
    let mut ib = 0;
    while ib + MR <= m {
        tile_ab_w8::<NV, MR>(c, a, b, k, n, ib, jb);
        ib += MR;
    }
    match m - ib {
        5 => tile_ab_w8::<NV, 5>(c, a, b, k, n, ib, jb),
        4 => tile_ab_w8::<NV, 4>(c, a, b, k, n, ib, jb),
        3 => tile_ab_w8::<NV, 3>(c, a, b, k, n, ib, jb),
        2 => tile_ab_w8::<NV, 2>(c, a, b, k, n, ib, jb),
        1 => tile_ab_w8::<NV, 1>(c, a, b, k, n, ib, jb),
        _ => {}
    }
}

/// One 4-wide column band of `C += A·B` over rows `0..m`.
#[target_feature(enable = "avx2,fma")]
unsafe fn band_ab_w4(c: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, jb: usize) {
    let mut ib = 0;
    while ib + MR <= m {
        tile_ab_w4::<MR>(c, a, b, k, n, ib, jb);
        ib += MR;
    }
    match m - ib {
        5 => tile_ab_w4::<5>(c, a, b, k, n, ib, jb),
        4 => tile_ab_w4::<4>(c, a, b, k, n, ib, jb),
        3 => tile_ab_w4::<3>(c, a, b, k, n, ib, jb),
        2 => tile_ab_w4::<2>(c, a, b, k, n, ib, jb),
        1 => tile_ab_w4::<1>(c, a, b, k, n, ib, jb),
        _ => {}
    }
}

/// Vector column bands of `C += A·B`; returns covered columns (same greedy
/// 16/8/4 banding as the scalar backend).
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn gemm_ab_bands(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> usize {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(a.len() >= m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut jb = 0;
    while n - jb >= 16 {
        band_ab_w8::<2>(c, a, b, m, k, n, jb);
        jb += 16;
    }
    if n - jb >= 8 {
        band_ab_w8::<1>(c, a, b, m, k, n, jb);
        jb += 8;
    }
    if n - jb >= 4 {
        band_ab_w4(c, a, b, m, k, n, jb);
        jb += 4;
    }
    jb
}

/// `MR_ACT × (8·NV)` tile of `C += Aᵀ·B`: chunk rows `crow..`, `A` columns
/// `acol..`, reduction over `i = 0..m` ascending.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_atb_w8<const NV: usize, const MR_ACT: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    crow: usize,
    acol: usize,
    jb: usize,
) {
    let cp = c.as_mut_ptr();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [[_mm256_setzero_ps(); NV]; MR_ACT];
    for (r, accr) in acc.iter_mut().enumerate() {
        for (v, lane) in accr.iter_mut().enumerate() {
            *lane = _mm256_loadu_ps(cp.add((crow + r) * n + jb + 8 * v));
        }
    }
    for i in 0..m {
        let mut brow = [_mm256_setzero_ps(); NV];
        for (v, lane) in brow.iter_mut().enumerate() {
            *lane = _mm256_loadu_ps(bp.add(i * n + jb + 8 * v));
        }
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add(i * k + acol + r));
            for (v, lane) in accr.iter_mut().enumerate() {
                *lane = _mm256_fmadd_ps(av, brow[v], *lane);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        for (v, lane) in accr.iter().enumerate() {
            _mm256_storeu_ps(cp.add((crow + r) * n + jb + 8 * v), *lane);
        }
    }
}

/// `MR_ACT × 4` tile of `C += Aᵀ·B` on 128-bit lanes.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_atb_w4<const MR_ACT: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    crow: usize,
    acol: usize,
    jb: usize,
) {
    let cp = c.as_mut_ptr();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [_mm_setzero_ps(); MR_ACT];
    for (r, accr) in acc.iter_mut().enumerate() {
        *accr = _mm_loadu_ps(cp.add((crow + r) * n + jb));
    }
    for i in 0..m {
        let brow = _mm_loadu_ps(bp.add(i * n + jb));
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm_set1_ps(*ap.add(i * k + acol + r));
            *accr = _mm_fmadd_ps(av, brow, *accr);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        _mm_storeu_ps(cp.add((crow + r) * n + jb), *accr);
    }
}

/// One 8·`NV`-wide column band of `C += Aᵀ·B` over all `rows` chunk rows.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn band_atb_w8<const NV: usize>(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
    jb: usize,
) {
    let mut r0 = 0;
    while r0 + MR <= rows {
        tile_atb_w8::<NV, MR>(c, a, b, m, k, n, r0, kb0 + r0, jb);
        r0 += MR;
    }
    match rows - r0 {
        5 => tile_atb_w8::<NV, 5>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        4 => tile_atb_w8::<NV, 4>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        3 => tile_atb_w8::<NV, 3>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        2 => tile_atb_w8::<NV, 2>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        1 => tile_atb_w8::<NV, 1>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        _ => {}
    }
}

/// One 4-wide column band of `C += Aᵀ·B` over all `rows` chunk rows.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn band_atb_w4(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
    jb: usize,
) {
    let mut r0 = 0;
    while r0 + MR <= rows {
        tile_atb_w4::<MR>(c, a, b, m, k, n, r0, kb0 + r0, jb);
        r0 += MR;
    }
    match rows - r0 {
        5 => tile_atb_w4::<5>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        4 => tile_atb_w4::<4>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        3 => tile_atb_w4::<3>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        2 => tile_atb_w4::<2>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        1 => tile_atb_w4::<1>(c, a, b, m, k, n, r0, kb0 + r0, jb),
        _ => {}
    }
}

/// Vector column bands of `C += Aᵀ·B` for chunk rows `kb0..kb0+rows`;
/// returns covered columns.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_atb_bands(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
) -> usize {
    debug_assert_eq!(c.len(), rows * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    let mut jb = 0;
    while n - jb >= 16 {
        band_atb_w8::<2>(c, a, b, m, k, n, kb0, rows, jb);
        jb += 16;
    }
    if n - jb >= 8 {
        band_atb_w8::<1>(c, a, b, m, k, n, kb0, rows, jb);
        jb += 8;
    }
    if n - jb >= 4 {
        band_atb_w4(c, a, b, m, k, n, kb0, rows, jb);
        jb += 4;
    }
    jb
}

/// In-place `xs[i] += alpha * ys[i]`, unfused (`vmulps` + `vaddps`) to
/// match the scalar backend's separately-rounded `*x += alpha * y`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn axpy(xs: &mut [f32], ys: &[f32], alpha: f32) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    let xp = xs.as_mut_ptr();
    let yp = ys.as_ptr();
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm256_loadu_ps(xp.add(i));
        let y = _mm256_loadu_ps(yp.add(i));
        _mm256_storeu_ps(xp.add(i), _mm256_add_ps(x, _mm256_mul_ps(av, y)));
        i += 8;
    }
    while i < n {
        *xp.add(i) += alpha * *yp.add(i);
        i += 1;
    }
}

/// Max over a row: 8 `vmaxps` lanes, combine `(l, l+4) → (0,2)/(1,3) →
/// final`, sequential tail. The scalar backend emulates this layout and
/// `MAXPS`'s tie/NaN rule exactly.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn row_max(row: &[f32]) -> f32 {
    let n = row.len();
    let p = row.as_ptr();
    let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut i = 0;
    while i + 8 <= n {
        acc = _mm256_max_ps(acc, _mm256_loadu_ps(p.add(i)));
        i += 8;
    }
    let m4 = _mm_max_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
    let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 0b01));
    let mut m = _mm_cvtss_f32(m1);
    while i < n {
        let x = *p.add(i);
        m = if m > x { m } else { x };
        i += 1;
    }
    m
}

/// In-place `xs[i] *= s`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn scale_in_place(xs: &mut [f32], s: f32) {
    let n = xs.len();
    let p = xs.as_mut_ptr();
    let sv = _mm256_set1_ps(s);
    let mut i = 0;
    while i + 8 <= n {
        _mm256_storeu_ps(p.add(i), _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), sv));
        i += 8;
    }
    while i < n {
        *p.add(i) *= s;
        i += 1;
    }
}

/// Horizontal sum with the fixed tree `(l + l+4) → (0+2) + (1+3)` the
/// scalar backend replays lane-for-lane.
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum_tree(acc: __m256) -> f32 {
    let s4 = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
    let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
    let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0b01));
    _mm_cvtss_f32(s1)
}

/// Squared L2 distance `Σ (xs[i] − ys[i])²`: 8 fused lanes, fixed combine
/// tree, fused sequential tail.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn sq_l2_dist(xs: &[f32], ys: &[f32]) -> f32 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    let xp = xs.as_ptr();
    let yp = ys.as_ptr();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
        acc = _mm256_fmadd_ps(d, d, acc);
        i += 8;
    }
    let mut total = hsum_tree(acc);
    while i < n {
        let d = *xp.add(i) - *yp.add(i);
        total = d.mul_add(d, total);
        i += 1;
    }
    total
}

/// Sum of squares `Σ xs[i]²` — [`sq_l2_dist`]'s layout with `ys = 0`.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn sum_sq(xs: &[f32]) -> f32 {
    let n = xs.len();
    let p = xs.as_ptr();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(p.add(i));
        acc = _mm256_fmadd_ps(v, v, acc);
        i += 8;
    }
    let mut total = hsum_tree(acc);
    while i < n {
        let v = *p.add(i);
        total = v.mul_add(v, total);
        i += 1;
    }
    total
}

/// Output rows per int8 gemm tile: 4 rows × 16 columns is 8 i32
/// accumulators + 2 interleaved `B` vectors + 1 `A` pair broadcast.
const MR_I8: usize = 4;

/// `MR_ACT × 16` tile of `C += A·B` for int8 operands: `k` is consumed in
/// pairs through `vpmaddwd` (two 16×16→32 products summed per lane —
/// exact integer arithmetic, so the result is bit-identical to the scalar
/// triple loop by construction).
///
/// `unpacklo/hi_epi16` interleave within 128-bit lanes, so the
/// accumulators hold columns `[0..4, 8..12]` / `[4..8, 12..16]`;
/// `permute2x128` restores contiguous order at store time.
#[target_feature(enable = "avx2")]
unsafe fn tile_i8_w16<const MR_ACT: usize>(
    c: &mut [i32],
    panel: &[i32],
    b: &[i8],
    k: usize,
    n: usize,
    ib: usize,
    jb: usize,
) {
    let cp = c.as_mut_ptr();
    let bp = b.as_ptr();
    let pp = panel.as_ptr();
    let mut acc_lo = [_mm256_setzero_si256(); MR_ACT];
    let mut acc_hi = [_mm256_setzero_si256(); MR_ACT];
    let mut l = 0;
    let mut p = 0;
    while l + 2 <= k {
        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(l * n + jb) as *const __m128i));
        let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add((l + 1) * n + jb) as *const __m128i));
        let lo = _mm256_unpacklo_epi16(b0, b1);
        let hi = _mm256_unpackhi_epi16(b0, b1);
        for r in 0..MR_ACT {
            let av = _mm256_set1_epi32(*pp.add(p + r));
            acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, av));
            acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, av));
        }
        p += MR_ACT;
        l += 2;
    }
    if l < k {
        // Odd k: the panel already padded the last pair with a zero.
        let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(l * n + jb) as *const __m128i));
        let zero = _mm256_setzero_si256();
        let lo = _mm256_unpacklo_epi16(b0, zero);
        let hi = _mm256_unpackhi_epi16(b0, zero);
        for r in 0..MR_ACT {
            let av = _mm256_set1_epi32(*pp.add(p + r));
            acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(lo, av));
            acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(hi, av));
        }
    }
    for r in 0..MR_ACT {
        let dst0 = cp.add((ib + r) * n + jb) as *mut __m256i;
        let dst1 = cp.add((ib + r) * n + jb + 8) as *mut __m256i;
        let c0 = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20);
        let c1 = _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31);
        _mm256_storeu_si256(dst0, _mm256_add_epi32(_mm256_loadu_si256(dst0), c0));
        _mm256_storeu_si256(dst1, _mm256_add_epi32(_mm256_loadu_si256(dst1), c1));
    }
}

/// Packs `MR_ACT` rows of `A` into pair-major broadcastable `i32`s:
/// `panel[p · MR_ACT + r]` holds rows `ib+r`'s sign-extended `k` pair
/// `(a[2p+1] << 16) | a[2p]`, so the tile's inner loop is one
/// `vpbroadcastd` from memory instead of two byte loads plus a shift/or
/// per row — the packing cost is amortized over all `n/16` column tiles.
#[target_feature(enable = "avx2")]
unsafe fn pack_a_i8<const MR_ACT: usize>(panel: &mut Vec<i32>, a: &[i8], k: usize, ib: usize) {
    panel.clear();
    let ap = a.as_ptr();
    let mut l = 0;
    while l + 2 <= k {
        for r in 0..MR_ACT {
            let a0 = *ap.add((ib + r) * k + l) as i16 as u16 as u32;
            let a1 = *ap.add((ib + r) * k + l + 1) as i16 as u16 as u32;
            panel.push(((a1 << 16) | a0) as i32);
        }
        l += 2;
    }
    if l < k {
        for r in 0..MR_ACT {
            panel.push((*ap.add((ib + r) * k + l) as i16 as u16 as u32) as i32);
        }
    }
}

/// `C += A·B` for int8 operands with i32 accumulation: 16-wide vector
/// column bands fed from a packed `A` panel, and a transposed vector
/// dot-product path for the trailing `n mod 16` columns (still exact —
/// same bits either way, integer arithmetic is order-independent).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gemm_i8_i32(c: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(a.len() >= m * k);
    debug_assert_eq!(b.len(), k * n);
    let nb = n & !15;
    let mut panel: Vec<i32> = Vec::with_capacity(k.div_ceil(2) * MR_I8);
    let mut ib = 0;
    while ib < m {
        let rows = (m - ib).min(MR_I8);
        match rows {
            4 => pack_a_i8::<4>(&mut panel, a, k, ib),
            3 => pack_a_i8::<3>(&mut panel, a, k, ib),
            2 => pack_a_i8::<2>(&mut panel, a, k, ib),
            _ => pack_a_i8::<1>(&mut panel, a, k, ib),
        }
        let mut jb = 0;
        while jb < nb {
            match rows {
                4 => tile_i8_w16::<4>(c, &panel, b, k, n, ib, jb),
                3 => tile_i8_w16::<3>(c, &panel, b, k, n, ib, jb),
                2 => tile_i8_w16::<2>(c, &panel, b, k, n, ib, jb),
                _ => tile_i8_w16::<1>(c, &panel, b, k, n, ib, jb),
            }
            jb += 16;
        }
        ib += rows;
    }
    if nb < n {
        // Narrow tail: transpose the remaining columns once so each
        // output is a contiguous i8·i8 dot product, vectorized 16 `k`
        // values per `vpmaddwd`.
        let w = n - nb;
        let mut bt = vec![0i8; w * k];
        for l in 0..k {
            for j in 0..w {
                *bt.get_unchecked_mut(j * k + l) = *b.get_unchecked(l * n + nb + j);
            }
        }
        let k16 = k & !15;
        let ap = a.as_ptr();
        for i in 0..m {
            let arow = ap.add(i * k);
            for j in 0..w {
                let brow = bt.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_si256();
                let mut l = 0;
                while l < k16 {
                    let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.add(l) as *const __m128i));
                    let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(brow.add(l) as *const __m128i));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
                    l += 16;
                }
                let s = _mm_add_epi32(
                    _mm256_castsi256_si128(acc),
                    _mm256_extracti128_si256(acc, 1),
                );
                let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
                let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
                let mut total = _mm_cvtsi128_si32(s);
                for l in k16..k {
                    total += i32::from(*arow.add(l)) * i32::from(*brow.add(l));
                }
                *c.get_unchecked_mut(i * n + nb + j) += total;
            }
        }
    }
}
