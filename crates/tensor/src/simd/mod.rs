//! Explicit-SIMD kernel layer with runtime dispatch.
//!
//! Two backends implement the same micro-kernels:
//!
//! * [`Backend::Avx2`] — `std::arch` AVX2+FMA intrinsics ([`avx2`]),
//!   selected when `is_x86_feature_detected!` confirms both features at
//!   runtime. No compile-time `target-cpu` flag is required, so one
//!   portable binary runs the fast path on any AVX2 machine.
//! * [`Backend::Scalar`] — portable Rust ([`scalar`]), used everywhere
//!   else (including non-x86 targets) and forceable for testing.
//!
//! The detection result is cached on first use; the active backend can be
//! overridden *before or during* a run because the two are bit-identical
//! (see below), so switching is observationally a pure perf change:
//!
//! * env var `EDDE_SIMD=scalar` (also `off` / `0`), read once at startup;
//! * [`set_force_scalar`] — the programmatic hook tests and benchmarks
//!   use to compare the paths.
//!
//! # Determinism contract
//!
//! Both backends produce **bit-identical results for every op**, which the
//! `simd_fallback` test suite asserts:
//!
//! * gemm: each output element is one ascending-reduction chain of
//!   correctly-rounded fused multiply-adds (`vfmaddps` lanes vs scalar
//!   `mul_add` — the same operation by IEEE 754), over identical 16/8/4
//!   column bands with an identical shared unfused tail.
//! * elementwise ([`axpy`], [`scale_in_place`]): per-element independent,
//!   with matching fused/unfused rounding choices.
//! * reductions ([`row_max`], [`sum_sq`], [`sq_l2_dist`]): the scalar
//!   backend emulates the AVX2 8-lane accumulator layout and fixed combine
//!   tree lane-for-lane, so even association-sensitive sums agree.
//!
//! Combined with the worker pool's chunking contract
//! ([`crate::parallel`]), results are bit-identical across backends *and*
//! thread counts — and, new in this layer, across machines: the previous
//! `-C target-cpu=native` build made bit patterns a per-build property,
//! while runtime dispatch pins them to the instruction sequences above.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
pub(crate) mod scalar;

/// The kernel implementation selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels (also the non-x86 and forced-fallback path).
    Scalar,
    /// Explicit AVX2+FMA kernels, runtime-detected.
    Avx2,
}

/// Programmatic scalar override (tests, benchmarks, builders).
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Live [`ScalarGuard`] count — any open scope forces the scalar path.
static SCALAR_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// `EDDE_SIMD` env override, read once at first dispatch (through the
/// counted `EnvSource` layer, so the one-time read is observable).
fn env_forces_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            crate::env::env_lookup("EDDE_SIMD").as_deref(),
            Some("scalar") | Some("off") | Some("0")
        )
    })
}

/// Cached runtime CPU feature detection (AVX2 and FMA must both be
/// present — the kernels use `vfmaddps`).
fn cpu_supported() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The backend ops dispatch to right now. The env var override is
/// standing (explicit user intent); [`set_force_scalar`] layers on top.
pub fn backend() -> Backend {
    if cpu_supported()
        && !env_forces_scalar()
        && !FORCE_SCALAR.load(Ordering::Relaxed)
        && SCALAR_SCOPES.load(Ordering::Relaxed) == 0
    {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// Forces (or releases) the scalar backend at runtime. Because the
/// backends are bit-identical, toggling mid-run never changes results —
/// only speed — so tests comparing the paths need no process isolation.
/// Cannot re-enable SIMD past an `EDDE_SIMD=scalar` env override or on a
/// CPU without AVX2+FMA.
///
/// This flag is process-global: releasing it releases every caller's
/// override at once, so code that only needs the scalar path for a
/// bounded region should prefer [`force_scalar_scope`], whose guards
/// nest and cannot clobber each other.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// RAII scope for the scalar backend: the backend stays scalar while any
/// guard is alive and reverts automatically when the last one drops.
/// Obtained from [`force_scalar_scope`] or
/// [`crate::config::EddeConfig::scalar_guard`].
///
/// Unlike [`set_force_scalar`]'s single boolean, scopes *count*: two
/// concurrent tests (or two configured harnesses in one process) each
/// holding a guard cannot race a shared flag back off while the other
/// still needs it.
#[must_use = "the scalar override ends when the guard drops"]
#[derive(Debug)]
pub struct ScalarGuard(());

impl Drop for ScalarGuard {
    fn drop(&mut self) {
        SCALAR_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Enters a scalar-backend scope; see [`ScalarGuard`].
pub fn force_scalar_scope() -> ScalarGuard {
    SCALAR_SCOPES.fetch_add(1, Ordering::Relaxed);
    ScalarGuard(())
}

/// Human-readable active backend, for logs and benchmark labels.
pub fn backend_name() -> &'static str {
    match backend() {
        Backend::Avx2 => "avx2+fma",
        Backend::Scalar => "scalar",
    }
}

/// Vectorizable column bands of `C += A·B` for row-major `A[m,k]`,
/// `B[k,n]`, `C[m,n]`; returns how many columns were covered (a multiple
/// of 4). The caller runs the shared unfused scalar tail on the rest.
pub(crate) fn gemm_ab_bands(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: Backend::Avx2 is only reported after runtime detection
        // of avx2+fma (see `cpu_supported`).
        return unsafe { avx2::gemm_ab_bands(c, a, b, m, k, n) };
    }
    scalar::gemm_ab_bands(c, a, b, m, k, n)
}

/// Vectorizable column bands of `C += Aᵀ·B` for `A[m,k]`, `B[m,n]`,
/// writing chunk rows `kb0..kb0+rows` of `C[k,n]`; returns covered
/// columns.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_atb_bands(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    kb0: usize,
    rows: usize,
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        return unsafe { avx2::gemm_atb_bands(c, a, b, m, k, n, kb0, rows) };
    }
    scalar::gemm_atb_bands(c, a, b, m, k, n, kb0, rows)
}

/// `C += A·B` with int8 operands and i32 accumulation: `A[m,k]`, `B[k,n]`
/// row-major `i8`, `C[m,n]` `i32` — the quantized serving kernel. The
/// caller rescales `C` by `scale_a · scale_b` afterwards. Integer
/// accumulation is exact, so the backends are bit-identical by
/// construction (the AVX2 path pairs `k` through `vpmaddwd`; products of
/// values in ±127 cannot overflow its 16-bit lanes).
///
/// # Panics
///
/// Panics if a slice is shorter than its `m`/`k`/`n` shape implies.
pub fn gemm_i8_i32(c: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "gemm_i8_i32 output length");
    assert!(a.len() >= m * k, "gemm_i8_i32 lhs length");
    assert_eq!(b.len(), k * n, "gemm_i8_i32 rhs length");
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        unsafe { avx2::gemm_i8_i32(c, a, b, m, k, n) };
        return;
    }
    scalar::gemm_i8_i32(c, a, b, m, k, n)
}

/// Largest absolute value in `xs`, or `None` if any element is
/// non-finite. Plain element-wise Rust with 8 independent lanes, so the
/// autovectorizer emits `vmaxps`/`vandps` and the result is identical on
/// every backend (`max` of finite values is order-independent; NaN and
/// ±∞ are caught by the guard accumulator, which only a non-finite input
/// can poison).
pub fn abs_max_finite(xs: &[f32]) -> Option<f32> {
    let mut maxes = [0.0f32; 8];
    let mut guard = [0.0f32; 8];
    let mut it = xs.chunks_exact(8);
    for chunk in &mut it {
        for i in 0..8 {
            let a = chunk[i].abs();
            if a > maxes[i] {
                maxes[i] = a;
            }
            guard[i] += chunk[i] * 0.0;
        }
    }
    let mut amax = 0.0f32;
    let mut g = 0.0f32;
    for i in 0..8 {
        if maxes[i] > amax {
            amax = maxes[i];
        }
        g += guard[i];
    }
    for &v in it.remainder() {
        let a = v.abs();
        if a > amax {
            amax = a;
        }
        g += v * 0.0;
    }
    if g == 0.0 {
        Some(amax)
    } else {
        None
    }
}

/// Symmetric int8 activation quantization: `out[i] =
/// round_ties_even(xs[i] · inv_scale)` clamped to ±127. Multiplication by
/// the reciprocal (not division) and a branch-free clamp keep the loop
/// autovectorizable; the rounding is element-wise, so every backend
/// produces the same bytes.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn quantize_i8(xs: &[f32], inv_scale: f32, out: &mut [i8]) {
    assert_eq!(xs.len(), out.len(), "quantize_i8 length mismatch");
    for (q, &v) in out.iter_mut().zip(xs) {
        *q = (v * inv_scale).round_ties_even().clamp(-127.0, 127.0) as i8;
    }
}

/// In-place `xs[i] += alpha * ys[i]` (unfused rounding — the SGD update).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(xs: &mut [f32], ys: &[f32], alpha: f32) {
    assert_eq!(xs.len(), ys.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        unsafe { avx2::axpy(xs, ys, alpha) };
        return;
    }
    scalar::axpy(xs, ys, alpha);
}

/// Max over a slice with `MAXPS` tie/NaN semantics; `-inf` when empty.
pub fn row_max(row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        return unsafe { avx2::row_max(row) };
    }
    scalar::row_max(row)
}

/// In-place `xs[i] *= s`.
pub fn scale_in_place(xs: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        unsafe { avx2::scale_in_place(xs, s) };
        return;
    }
    scalar::scale_in_place(xs, s);
}

/// Sum of squares `Σ xs[i]²` in the fixed-lane fused layout.
pub fn sum_sq(xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        return unsafe { avx2::sum_sq(xs) };
    }
    scalar::sum_sq(xs)
}

/// Squared L2 distance `Σ (xs[i] − ys[i])²` in the fixed-lane fused layout
/// — the inner norm of the paper's Eq. 2 diversity measure.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sq_l2_dist(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len(), "sq_l2_dist length mismatch");
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: as in `gemm_ab_bands`.
        return unsafe { avx2::sq_l2_dist(xs, ys) };
    }
    scalar::sq_l2_dist(xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Direct backend-vs-backend comparisons call the avx2 functions
    // explicitly (guarded by detection), so they cannot race with other
    // tests toggling the global force flag.

    fn series(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37)
            .collect()
    }

    #[test]
    fn scalar_row_max_handles_ties_nans_and_tails() {
        // MAXPS semantics: NaN in src2 wins; here NaN flows through lanes.
        for n in [0usize, 1, 3, 7, 8, 9, 16, 31] {
            let v = series(n);
            let expect = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(scalar::row_max(&v), expect, "n={n}");
        }
        assert_eq!(scalar::row_max(&[]), f32::NEG_INFINITY);
        assert_eq!(scalar::row_max(&[-0.0, 0.0]).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn scalar_sums_match_reference_within_tolerance() {
        for n in [0usize, 1, 5, 8, 13, 64, 100] {
            let v = series(n);
            let w: Vec<f32> = v.iter().map(|x| x * 0.5 + 0.1).collect();
            let refer: f64 = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
            assert!(
                (f64::from(scalar::sum_sq(&v)) - refer).abs() < 1e-3,
                "n={n}"
            );
            let refer_d: f64 = v
                .iter()
                .zip(&w)
                .map(|(&x, &y)| {
                    let d = f64::from(x) - f64::from(y);
                    d * d
                })
                .sum();
            assert!(
                (f64::from(scalar::sq_l2_dist(&v, &w)) - refer_d).abs() < 1e-3,
                "n={n}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_slice_ops_match_scalar_bitwise() {
        if !cpu_supported() {
            return;
        }
        for n in [0usize, 1, 5, 7, 8, 9, 16, 33, 100, 257] {
            let v = series(n);
            let w: Vec<f32> = v.iter().map(|x| x * -0.77 + 0.3).collect();
            // SAFETY: guarded by cpu_supported() above.
            unsafe {
                assert_eq!(
                    avx2::row_max(&v).to_bits(),
                    scalar::row_max(&v).to_bits(),
                    "row_max n={n}"
                );
                assert_eq!(
                    avx2::sum_sq(&v).to_bits(),
                    scalar::sum_sq(&v).to_bits(),
                    "sum_sq n={n}"
                );
                assert_eq!(
                    avx2::sq_l2_dist(&v, &w).to_bits(),
                    scalar::sq_l2_dist(&v, &w).to_bits(),
                    "sq_l2_dist n={n}"
                );
                let mut xs_a = v.clone();
                let mut xs_s = v.clone();
                avx2::axpy(&mut xs_a, &w, -0.123);
                scalar::axpy(&mut xs_s, &w, -0.123);
                assert_eq!(bits(&xs_a), bits(&xs_s), "axpy n={n}");
                let mut sc_a = v.clone();
                let mut sc_s = v;
                avx2::scale_in_place(&mut sc_a, 1.0 / 3.0);
                scalar::scale_in_place(&mut sc_s, 1.0 / 3.0);
                assert_eq!(bits(&sc_a), bits(&sc_s), "scale n={n}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_gemm_bands_match_scalar_bitwise() {
        if !cpu_supported() {
            return;
        }
        // Shapes straddle the 16/8/4 bands, the 6- vs 4-row tiles, and
        // leave tail columns for the caller.
        for &(m, k, n) in &[
            (1usize, 1usize, 4usize),
            (5, 3, 8),
            (6, 7, 16),
            (13, 9, 23),
            (17, 32, 31),
            (25, 11, 64),
        ] {
            let a = series(m * k);
            let b = series(k * n);
            let mut c_a = series(m * n);
            let mut c_s = c_a.clone();
            // SAFETY: guarded by cpu_supported() above.
            let jb_a = unsafe { avx2::gemm_ab_bands(&mut c_a, &a, &b, m, k, n) };
            let jb_s = scalar::gemm_ab_bands(&mut c_s, &a, &b, m, k, n);
            assert_eq!(jb_a, jb_s, "ab band cover ({m},{k},{n})");
            assert_eq!(bits(&c_a), bits(&c_s), "ab ({m},{k},{n})");

            let at = series(m * k); // A[m,k], output rows are k
            let bt = series(m * n);
            let mut d_a = series(k * n);
            let mut d_s = d_a.clone();
            // SAFETY: guarded by cpu_supported() above.
            let jb_a = unsafe { avx2::gemm_atb_bands(&mut d_a, &at, &bt, m, k, n, 0, k) };
            let jb_s = scalar::gemm_atb_bands(&mut d_s, &at, &bt, m, k, n, 0, k);
            assert_eq!(jb_a, jb_s, "atb band cover ({m},{k},{n})");
            assert_eq!(bits(&d_a), bits(&d_s), "atb ({m},{k},{n})");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_int8_gemm_matches_scalar_exactly() {
        if !cpu_supported() {
            return;
        }
        // Shapes straddle the 16-wide band, the 4-row tiles, odd k, and
        // scalar tail columns.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 2, 16),
            (5, 3, 17),
            (6, 7, 16),
            (13, 9, 23),
            (9, 11, 40),
            (3, 128, 33),
        ] {
            let a: Vec<i8> = (0..m * k).map(|i| ((i * 37) % 255) as u8 as i8).collect();
            let b: Vec<i8> = (0..k * n)
                .map(|i| ((i * 91 + 3) % 255) as u8 as i8)
                .collect();
            let mut c_a: Vec<i32> = (0..m * n).map(|i| i as i32 - 7).collect();
            let mut c_s = c_a.clone();
            // SAFETY: guarded by cpu_supported() above.
            unsafe { avx2::gemm_i8_i32(&mut c_a, &a, &b, m, k, n) };
            scalar::gemm_i8_i32(&mut c_s, &a, &b, m, k, n);
            assert_eq!(c_a, c_s, "({m},{k},{n})");
        }
    }

    #[test]
    fn int8_gemm_matches_reference() {
        // ±127 extremes and zero against a naive i64 reference.
        let (m, k, n) = (3usize, 5usize, 6usize);
        let a: Vec<i8> = vec![127, -127, 0, 1, -1, 64, -64, 127, -127, 2, 3, -3, 5, -5, 7];
        let b: Vec<i8> = (0..k * n).map(|i| (((i * 53) % 255) as u8) as i8).collect();
        let mut c = vec![0i32; m * n];
        gemm_i8_i32(&mut c, &a, &b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect: i64 = (0..k)
                    .map(|l| i64::from(a[i * k + l]) * i64::from(b[l * n + j]))
                    .sum();
                assert_eq!(i64::from(c[i * n + j]), expect, "({i},{j})");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn backend_name_is_consistent() {
        let name = backend_name();
        assert!(name == "avx2+fma" || name == "scalar");
    }

    #[test]
    fn scalar_scopes_nest() {
        let outer = force_scalar_scope();
        assert_eq!(backend(), Backend::Scalar);
        {
            let _inner = force_scalar_scope();
            assert_eq!(backend(), Backend::Scalar);
        }
        // Dropping the inner guard must not release the outer scope.
        assert_eq!(backend(), Backend::Scalar);
        drop(outer);
        // No assertion on the released backend: the host may lack AVX2,
        // EDDE_SIMD may force scalar, and parallel tests may hold scopes.
    }
}
