//! Bit-identity of the runtime-dispatched SIMD kernels against the forced
//! scalar fallback, across thread counts.
//!
//! The [`edde_tensor::simd`] determinism contract says every dispatched op
//! computes each output element in the same fixed summation order on both
//! backends, so forcing the scalar path (as `EDDE_SIMD=scalar` or a
//! non-AVX2 CPU would) must reproduce the SIMD results bit for bit — at
//! any thread count. These tests pin that contract at the public-op level;
//! the kernel-level comparisons live in the simd module's unit tests.

use edde_tensor::ops::{
    axpy, conv2d, conv2d_backward, log_softmax_rows, matmul, matmul_a_bt, matmul_at_b,
    softmax_rows, sum_sq,
};
use edde_tensor::parallel::set_num_threads;
use edde_tensor::rng::rand_uniform;
use edde_tensor::simd::{self, Backend};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests in this file: they toggle the global scalar-force flag
/// and the global thread override.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the thread count even if the test panics. Backend forcing
/// needs no twin: [`simd::force_scalar_scope`] is RAII and unwinds on
/// its own.
struct RestoreGlobals;
impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        set_num_threads(0);
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` once per (backend, thread count) combination and asserts all
/// outputs are bitwise equal to the first.
fn assert_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let _g = global_guard();
    let _restore = RestoreGlobals;
    let mut reference: Option<T> = None;
    for force_scalar in [false, true] {
        let _scope = force_scalar.then(simd::force_scalar_scope);
        for threads in [1usize, 8] {
            set_num_threads(threads);
            let out = f();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    r, &out,
                    "{label}: scalar={force_scalar} threads={threads} diverged"
                ),
            }
        }
    }
}

#[test]
fn forcing_scalar_changes_the_backend() {
    let _g = global_guard();
    {
        let _scope = simd::force_scalar_scope();
        assert_eq!(simd::backend(), Backend::Scalar);
        assert_eq!(simd::backend_name(), "scalar");
    }
    // Whatever the host supports, the name and enum must agree.
    match simd::backend() {
        Backend::Avx2 => assert_eq!(simd::backend_name(), "avx2+fma"),
        Backend::Scalar => assert_eq!(simd::backend_name(), "scalar"),
    }
}

#[test]
fn matmul_family_is_backend_and_thread_invariant() {
    let mut r = StdRng::seed_from_u64(100);
    // Odd sizes exercise every tail path (16/8/4-wide bands + scalar cols).
    let a = rand_uniform(&[61, 37], -1.0, 1.0, &mut r);
    let b = rand_uniform(&[37, 53], -1.0, 1.0, &mut r);
    let at = rand_uniform(&[37, 61], -1.0, 1.0, &mut r);
    let bt = rand_uniform(&[53, 37], -1.0, 1.0, &mut r);
    assert_invariant("matmul", || bits(&matmul(&a, &b).unwrap()));
    assert_invariant("matmul_at_b", || bits(&matmul_at_b(&at, &b).unwrap()));
    assert_invariant("matmul_a_bt", || bits(&matmul_a_bt(&a, &bt).unwrap()));
}

#[test]
fn conv2d_is_backend_and_thread_invariant() {
    let mut r = StdRng::seed_from_u64(101);
    let input = rand_uniform(&[2, 3, 9, 9], -1.0, 1.0, &mut r);
    let weight = rand_uniform(&[4, 3, 3, 3], -0.5, 0.5, &mut r);
    let bias = rand_uniform(&[4], -0.1, 0.1, &mut r);
    assert_invariant("conv2d_fwd", || {
        bits(&conv2d(&input, &weight, Some(&bias), 1, 1).unwrap())
    });
    let grad_out = rand_uniform(&[2, 4, 9, 9], -1.0, 1.0, &mut r);
    assert_invariant("conv2d_bwd", || {
        let g = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        (
            bits(&g.grad_input),
            bits(&g.grad_weight),
            bits(&g.grad_bias),
        )
    });
}

#[test]
fn elementwise_and_reductions_are_backend_and_thread_invariant() {
    let mut r = StdRng::seed_from_u64(102);
    let x = rand_uniform(&[333], -2.0, 2.0, &mut r);
    let y = rand_uniform(&[333], -2.0, 2.0, &mut r);
    assert_invariant("axpy", || {
        let mut out = x.clone();
        axpy(&mut out, -0.37, &y).unwrap();
        bits(&out)
    });
    let logits = rand_uniform(&[17, 11], -4.0, 4.0, &mut r);
    assert_invariant("softmax_rows", || bits(&softmax_rows(&logits).unwrap()));
    assert_invariant("log_softmax_rows", || {
        bits(&log_softmax_rows(&logits).unwrap())
    });
    assert_invariant("sum_sq", || sum_sq(&x).to_bits());
    assert_invariant("sq_l2_dist", || {
        simd::sq_l2_dist(x.data(), y.data()).to_bits()
    });
}
