//! Round-trip property tests for every bundle codec stage, on both SIMD
//! backends.
//!
//! The codec contract per stage:
//! * `f32` — bit-exact for every pattern, including NaN payloads,
//!   denormals, ±0 and ±∞;
//! * `f16` — exactly the from-scratch half conversion (round-to-nearest-
//!   even, subnormals, overflow to ∞), i.e. decode(encode(x)) ==
//!   `f16_bits_to_f32(f32_to_f16_bits(x))` bitwise;
//! * `int8` — symmetric per-tensor quantization with absolute error
//!   bounded by half the recorded scale; non-finite input is rejected at
//!   encode, never silently clamped;
//! * `delta+bitpack` and `lz` — byte-exact lossless transforms.
//!
//! The chains are pure integer/bit manipulation, so forcing the scalar
//! SIMD backend must not change a single byte — every check runs under
//! both dispatch modes and compares the encoded streams too. The
//! deterministic splitmix-driven suites below run everywhere (including
//! offline, where the `proptest!` bodies are compile-checked only).

use edde_tensor::codec::{
    decode, decode_f32, encode, f16::f16_bits_to_f32, f16::f32_to_f16_bits, quantize_symmetric,
    ArrayStage, ByteStage, CodecChain, CodecError, DecodedTensor,
};
use edde_tensor::simd;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes backend toggling across test threads.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` on the native backend and again with the scalar fallback
/// forced (via the RAII scope, which unwinds even on panic), asserting
/// both produce identical results.
fn on_both_backends<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let _g = global_guard();
    let native = f();
    let scalar = {
        let _scope = simd::force_scalar_scope();
        f()
    };
    assert_eq!(native, scalar, "codec output differs across SIMD backends");
    native
}

/// Splitmix64 — deterministic data generation without the rand crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values spanning denormals, ±0, and extreme magnitudes — every vector
/// the deterministic suites feed the codecs mixes these in.
const SPECIALS: [f32; 14] = [
    0.0,
    -0.0,
    f32::MIN_POSITIVE,
    -f32::MIN_POSITIVE,
    f32::MAX,
    f32::MIN,
    1.0e-42,  // denormal
    -1.0e-42, // denormal
    f32::EPSILON,
    65504.0, // f16 max
    65520.0, // rounds to f16 ∞
    6.1e-5,  // near the f16 subnormal boundary
    5.96e-8, // f16 min-subnormal neighborhood
    -1.0,
];

/// A seeded vector of `n` finite values with specials sprinkled in.
fn random_vec(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed;
    (0..n)
        .map(|i| {
            let r = splitmix(&mut s);
            if i % 17 == 13 {
                SPECIALS[(r % SPECIALS.len() as u64) as usize]
            } else {
                // uniform in about ±100 with a wide exponent spread
                let u = (r >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
                let exp = ((r >> 8) % 9) as i32 - 4;
                u * 200.0 * 10f32.powi(exp)
            }
        })
        .collect()
}

/// Every byte-stage combination the presets and custom chains can form.
fn byte_stage_combos() -> Vec<Vec<ByteStage>> {
    vec![
        vec![],
        vec![ByteStage::DeltaBitpack],
        vec![ByteStage::Lz],
        vec![ByteStage::DeltaBitpack, ByteStage::Lz],
        vec![ByteStage::Lz, ByteStage::DeltaBitpack],
    ]
}

/// Sizes that cover empty, sub-block, exact-block, and multi-block
/// payloads for the 128-byte bitpack blocks and the LZ window.
const SIZES: [usize; 7] = [0, 1, 7, 31, 128, 333, 2048];

fn check_f32_chains(data: &[f32]) {
    on_both_backends(|| {
        let mut streams = Vec::new();
        for bytes in byte_stage_combos() {
            let chain = CodecChain {
                array: ArrayStage::F32,
                bytes,
            };
            let coded = encode(data, &chain).unwrap();
            let back = decode_f32(&coded).unwrap();
            let want: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
            let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
            assert_eq!(want, got, "chain {}", chain.tag());
            streams.push(coded);
        }
        streams // cross-backend byte equality via on_both_backends
    });
}

fn check_f16_chains(data: &[f32]) {
    on_both_backends(|| {
        let mut streams = Vec::new();
        for bytes in byte_stage_combos() {
            let chain = CodecChain {
                array: ArrayStage::F16,
                bytes,
            };
            let coded = encode(data, &chain).unwrap();
            let back = decode_f32(&coded).unwrap();
            assert_eq!(back.len(), data.len());
            for (i, (&x, &y)) in data.iter().zip(&back).enumerate() {
                let want = f16_bits_to_f32(f32_to_f16_bits(x));
                assert_eq!(
                    want.to_bits(),
                    y.to_bits(),
                    "chain {} element {i}: {x} -> {y}, want {want}",
                    chain.tag()
                );
            }
            streams.push(coded);
        }
        streams
    });
}

fn check_int8_chains(data: &[f32]) {
    on_both_backends(|| {
        let mut streams = Vec::new();
        for bytes in byte_stage_combos() {
            let chain = CodecChain {
                array: ArrayStage::Int8,
                bytes,
            };
            let coded = encode(data, &chain).unwrap();
            match decode(&coded).unwrap() {
                DecodedTensor::Int8 { q, scale } => {
                    assert_eq!(q.len(), data.len());
                    // the stream reproduces quantize_symmetric exactly
                    let (want_q, want_scale) = quantize_symmetric(data).unwrap();
                    assert_eq!(q, want_q, "chain {}", chain.tag());
                    assert_eq!(scale.to_bits(), want_scale.to_bits());
                    for (&x, &qi) in data.iter().zip(&q) {
                        let err = (x - f32::from(qi) * scale).abs();
                        assert!(
                            err <= 0.5 * scale * 1.0001,
                            "|{x} - {qi}*{scale}| = {err} exceeds scale/2"
                        );
                    }
                }
                other => panic!("int8 chain decoded to {other:?}"),
            }
            streams.push(coded);
        }
        streams
    });
}

#[test]
fn f32_chains_are_bit_exact_on_random_tensors() {
    for (i, &n) in SIZES.iter().enumerate() {
        check_f32_chains(&random_vec(0x51EE_D000 + i as u64, n));
    }
}

#[test]
fn f16_chains_match_the_half_conversion_on_random_tensors() {
    for (i, &n) in SIZES.iter().enumerate() {
        check_f16_chains(&random_vec(0xFAB1_0000 + i as u64, n));
    }
}

#[test]
fn int8_chains_bound_the_error_on_random_tensors() {
    for (i, &n) in SIZES.iter().enumerate() {
        // int8 rejects non-finite, SPECIALS are all finite: fine as-is
        check_int8_chains(&random_vec(0x00DD_BA11 + i as u64, n));
    }
}

#[test]
fn special_values_alone_survive_every_chain() {
    check_f32_chains(&SPECIALS);
    check_f16_chains(&SPECIALS);
    check_int8_chains(&SPECIALS);
    // all-zero and constant tensors hit the degenerate-scale paths
    check_int8_chains(&[0.0; 200]);
    check_int8_chains(&[-0.0; 64]);
    check_int8_chains(&[3.25; 129]);
    check_f16_chains(&[1.0e-42; 300]);
}

#[test]
fn non_finite_input_is_rejected_at_int8_encode() {
    for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let data = [1.0f32, bad, -2.0];
        match encode(&data, &CodecChain::int8()) {
            Err(CodecError::BadScale(_)) => {}
            other => panic!("{bad}: expected BadScale, got {other:?}"),
        }
        assert!(quantize_symmetric(&data).is_err());
    }
    // ... while the exact chains carry non-finite values through
    let data = [f32::NAN, f32::INFINITY, -0.0];
    let back = decode_f32(&encode(&data, &CodecChain::f32()).unwrap()).unwrap();
    assert!(back[0].is_nan());
    assert_eq!(back[1], f32::INFINITY);
    assert_eq!(back[2].to_bits(), (-0.0f32).to_bits());
}

#[test]
fn compression_helps_on_smooth_weight_like_data() {
    let data: Vec<f32> = (0..512).map(|i| ((i as f32) * 0.01).sin() * 0.05).collect();
    let plain = encode(
        &data,
        &CodecChain {
            array: ArrayStage::Int8,
            bytes: vec![],
        },
    )
    .unwrap();
    let packed = encode(&data, &CodecChain::int8()).unwrap();
    assert!(
        packed.len() < plain.len(),
        "compressed {} >= plain {}",
        packed.len(),
        plain.len()
    );
}

// Online-only (the offline proptest stub compile-checks these without
// running them): widen the seeded coverage with shrinking on failure.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f32_chains_are_bit_exact(seed in 0u64..u64::MAX, n in 0usize..600) {
        check_f32_chains(&random_vec(seed, n));
    }

    #[test]
    fn f16_chains_match_the_half_conversion(seed in 0u64..u64::MAX, n in 0usize..600) {
        check_f16_chains(&random_vec(seed, n));
    }

    #[test]
    fn int8_chains_bound_the_error(seed in 0u64..u64::MAX, n in 0usize..600) {
        check_int8_chains(&random_vec(seed, n));
    }
}
