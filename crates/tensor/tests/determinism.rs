//! Bitwise determinism of parallel tensor ops across thread counts.
//!
//! The execution layer's contract (see `parallel`'s module docs) is that
//! chunking only changes *scheduling*, never the per-element reduction
//! order. These tests pin that down: every op must produce bit-identical
//! results at 1 worker, at 8 workers, and across repeated calls — the
//! property EDDE's reproducible ensembles are built on.

use edde_tensor::ops::{conv2d, conv2d_backward, matmul, matmul_a_bt, matmul_at_b};
use edde_tensor::parallel::set_num_threads;
use edde_tensor::rng::rand_uniform;
use edde_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that mutate the global thread override (and restores
/// the default on drop, even if an assertion panics).
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct RestoreDefault;
impl Drop for RestoreDefault {
    fn drop(&mut self) {
        set_num_threads(0);
    }
}

/// Runs `f` at 1 worker and at 8 workers, twice each, and asserts all four
/// results are bit-identical.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, mut f: impl FnMut() -> T) {
    let _guard = override_guard();
    let _restore = RestoreDefault;
    set_num_threads(1);
    let serial = f();
    assert_eq!(serial, f(), "{label}: repeated serial calls differ");
    set_num_threads(8);
    let parallel = f();
    assert_eq!(serial, parallel, "{label}: 1 vs 8 threads differ");
    assert_eq!(parallel, f(), "{label}: repeated parallel calls differ");
}

#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(11);
    // Sizes straddle the 4-row × {16, 8, 4}-column tile boundaries.
    let a = rand_uniform(&[67, 45], -2.0, 2.0, &mut r);
    let b = rand_uniform(&[45, 131], -2.0, 2.0, &mut r);
    assert_thread_invariant("matmul", || matmul(&a, &b).unwrap().data().to_vec());
}

#[test]
fn transposed_matmuls_are_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(12);
    let a = rand_uniform(&[53, 38], -2.0, 2.0, &mut r);
    let b = rand_uniform(&[53, 71], -2.0, 2.0, &mut r);
    assert_thread_invariant("matmul_at_b", || {
        matmul_at_b(&a, &b).unwrap().data().to_vec()
    });
    let c = rand_uniform(&[41, 38], -2.0, 2.0, &mut r);
    assert_thread_invariant("matmul_a_bt", || {
        matmul_a_bt(&a, &c).unwrap().data().to_vec()
    });
}

#[test]
fn conv2d_is_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(13);
    // 19 samples: straddles the fixed backward reduction group of 8.
    let input = rand_uniform(&[19, 3, 9, 9], -1.0, 1.0, &mut r);
    let weight = rand_uniform(&[6, 3, 3, 3], -1.0, 1.0, &mut r);
    let bias = rand_uniform(&[6], -1.0, 1.0, &mut r);
    assert_thread_invariant("conv2d forward", || {
        conv2d(&input, &weight, Some(&bias), 1, 1)
            .unwrap()
            .data()
            .to_vec()
    });
    let out = conv2d(&input, &weight, Some(&bias), 1, 1).unwrap();
    let grad_out = rand_uniform(out.dims(), -1.0, 1.0, &mut r);
    assert_thread_invariant("conv2d backward", || {
        let g = conv2d_backward(&input, &weight, &grad_out, 1, 1).unwrap();
        (
            g.grad_input.data().to_vec(),
            g.grad_weight.data().to_vec(),
            g.grad_bias.data().to_vec(),
        )
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes and values: matmul stays bit-identical across thread
    /// counts, including shapes small enough to dodge the parallel path.
    #[test]
    fn matmul_thread_invariance_holds_for_random_shapes(
        m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000
    ) {
        let mut r = StdRng::seed_from_u64(seed);
        let a = rand_uniform(&[m, k], -3.0, 3.0, &mut r);
        let b = rand_uniform(&[k, n], -3.0, 3.0, &mut r);
        let _guard = override_guard();
        let _restore = RestoreDefault;
        set_num_threads(1);
        let serial = matmul(&a, &b).unwrap();
        set_num_threads(8);
        let parallel = matmul(&a, &b).unwrap();
        prop_assert_eq!(serial.data(), parallel.data());
    }
}
