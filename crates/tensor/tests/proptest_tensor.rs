//! Property-based tests for the tensor substrate's core invariants.

use edde_tensor::ops::{
    add, argmax_rows, matmul, matmul_a_bt, matmul_at_b, mul, scale, softmax_rows, sub, sum_all,
    sum_axis0,
};
use edde_tensor::serialize::{decode_params, decode_tensor, encode_params, encode_tensor};
use edde_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and bounded finite values.
fn tensor_with(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    (prop::collection::vec(-10.0f32..10.0, n), Just(dims))
        .prop_map(|(data, dims)| Tensor::from_vec(data, &dims).unwrap())
}

/// Strategy: a small matrix shape.
fn small_dims2() -> impl Strategy<Value = Vec<usize>> {
    (1usize..8, 1usize..8).prop_map(|(a, b)| vec![a, b])
}

/// Strategy: two equal-shaped tensors.
fn tensor_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    small_dims2().prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        (
            prop::collection::vec(-5.0f32..5.0, n),
            prop::collection::vec(-5.0f32..5.0, n),
            Just(dims),
        )
            .prop_map(|(a, b, dims)| {
                (
                    Tensor::from_vec(a, &dims).unwrap(),
                    Tensor::from_vec(b, &dims).unwrap(),
                )
            })
    })
}

/// Strategy: an (m,k) x (m,n) matrix pair for the transposed-matmul laws.
fn matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
        (
            prop::collection::vec(-2.0f32..2.0, m * k),
            prop::collection::vec(-2.0f32..2.0, m * n),
            Just((m, k, n)),
        )
            .prop_map(|(a, b, (m, k, n))| {
                (
                    Tensor::from_vec(a, &[m, k]).unwrap(),
                    Tensor::from_vec(b, &[m, n]).unwrap(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative((ta, tb) in tensor_pair()) {
        prop_assert_eq!(add(&ta, &tb).unwrap(), add(&tb, &ta).unwrap());
    }

    #[test]
    fn sub_then_add_round_trips(t in small_dims2().prop_flat_map(tensor_with)) {
        let zeros = sub(&t, &t).unwrap();
        prop_assert!(zeros.data().iter().all(|&v| v == 0.0));
        let back = add(&zeros, &t).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn scale_distributes_over_add(t in small_dims2().prop_flat_map(tensor_with), k in -3.0f32..3.0) {
        let lhs = scale(&add(&t, &t).unwrap(), k);
        let rhs = add(&scale(&t, k), &scale(&t, k)).unwrap();
        for (a, b) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn transpose_is_an_involution(t in small_dims2().prop_flat_map(tensor_with)) {
        prop_assert_eq!(t.transpose2d().unwrap().transpose2d().unwrap(), t);
    }

    #[test]
    fn matmul_identity_is_neutral(t in small_dims2().prop_flat_map(tensor_with)) {
        let n = t.dims()[1];
        let prod = matmul(&t, &Tensor::eye(n)).unwrap();
        for (a, b) in prod.data().iter().zip(t.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose((a, b) in matmul_pair()) {
        let (k, n) = (a.dims()[1], b.dims()[1]);
        let fast = matmul_at_b(&a, &b).unwrap();
        let slow = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // A·Bᵀ law: matmul_a_bt(a [m,k], y [n,k]) == matmul(a, yᵀ)
        let c = Tensor::from_vec((0..k * n).map(|v| 0.1 * v as f32).collect(), &[k, n]).unwrap();
        let y = c.transpose2d().unwrap(); // [n, k]
        let fast2 = matmul_a_bt(&a, &y).unwrap();
        let slow2 = matmul(&a, &c).unwrap();
        for (x, z) in fast2.data().iter().zip(slow2.data().iter()) {
            prop_assert!((x - z).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_dims2().prop_flat_map(tensor_with)) {
        let p = softmax_rows(&t).unwrap();
        prop_assert!(p.all_finite());
        for i in 0..t.dims()[0] {
            let row = p.row(i).unwrap();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(t in small_dims2().prop_flat_map(tensor_with)) {
        let p = softmax_rows(&t).unwrap();
        prop_assert_eq!(argmax_rows(&t).unwrap(), argmax_rows(&p).unwrap());
    }

    #[test]
    fn sum_axis0_matches_total(t in small_dims2().prop_flat_map(tensor_with)) {
        let cols = sum_axis0(&t).unwrap();
        let total: f32 = sum_all(&cols);
        prop_assert!((total - sum_all(&t)).abs() < 1e-2 * (1.0 + total.abs()));
    }

    #[test]
    fn elementwise_mul_with_ones_is_identity(t in small_dims2().prop_flat_map(tensor_with)) {
        let ones = Tensor::ones(t.dims());
        prop_assert_eq!(mul(&t, &ones).unwrap(), t);
    }

    #[test]
    fn index_select_concat_round_trip(t in small_dims2().prop_flat_map(tensor_with)) {
        let rows = t.dims()[0];
        let first: Vec<usize> = (0..rows / 2).collect();
        let second: Vec<usize> = (rows / 2..rows).collect();
        let a = t.index_select0(&first).unwrap();
        let b = t.index_select0(&second).unwrap();
        prop_assert_eq!(Tensor::concat0(&[&a, &b]).unwrap(), t);
    }

    #[test]
    fn tensor_serialization_round_trips(t in small_dims2().prop_flat_map(tensor_with)) {
        let mut buf = bytes::BytesMut::new();
        encode_tensor(&t, &mut buf);
        let back = decode_tensor(&mut buf.freeze()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn params_serialization_round_trips(t in small_dims2().prop_flat_map(tensor_with), name in "[a-z]{1,12}") {
        let params = vec![(name, t)];
        let back = decode_params(encode_params(&params)).unwrap();
        prop_assert_eq!(back, params);
    }

    #[test]
    fn flat_index_round_trips(dims in prop::collection::vec(1usize..5, 1..4), seed in 0usize..100) {
        let shape = edde_tensor::Shape::new(&dims);
        let flat = seed % shape.num_elements();
        let idx = shape.unflatten_index(flat).unwrap();
        prop_assert_eq!(shape.flat_index(&idx).unwrap(), flat);
    }
}
