//! The streaming evaluation contract: every streamed statistic is
//! bit-identical to its materialized twin — on both SIMD backends, at 1
//! and 8 threads, for any `EDDE_EVAL_BATCH`/`EDDE_STREAM_BATCH` setting —
//! streams reset deterministically under per-epoch seeds, and evaluation
//! memory is `O(batch)` no matter how long the stream runs.

use edde_core::methods::{Bagging, Edde, EnsembleMethod, SingleModel};
use edde_core::runstate::epoch_seed;
use edde_core::stream::{stream_accuracy, stream_evaluate};
use edde_core::{EnsembleModel, ExperimentEnv, ModelFactory, Trainer};
use edde_data::stream::{BatchSource, DatasetStream, GaussianStream};
use edde_data::synth::{gaussian_blobs, DriftSpec, GaussianBlobsConfig};
use edde_data::Dataset;
use edde_nn::models::mlp;
use edde_tensor::parallel::set_num_threads;
use edde_tensor::simd::force_scalar_scope;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests that touch process-global state (thread override,
/// SIMD backend override, eval/stream batch env knobs).
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn blob_config() -> GaussianBlobsConfig {
    GaussianBlobsConfig {
        classes: 3,
        dim: 6,
        train_per_class: 20,
        test_per_class: 13,
        spread: 0.7,
    }
}

fn env() -> ExperimentEnv {
    let data = gaussian_blobs(&blob_config(), 91);
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 12, 3], 0.0, r)));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        91,
    )
}

/// A short table-II-style lineup: single model, Bagging, EDDE — trained
/// just enough that member outputs genuinely differ.
fn lineup() -> Vec<(String, EnsembleModel)> {
    let e = env();
    let methods: Vec<Box<dyn EnsembleMethod>> = vec![
        Box::new(SingleModel::new(2)),
        Box::new(Bagging::new(3, 2)),
        Box::new(Edde::new(3, 2, 2, 0.1, 0.7)),
    ];
    methods
        .into_iter()
        .map(|m| (m.name(), m.run(&e).expect("lineup run").model))
        .collect()
}

#[test]
fn streamed_statistics_match_materialized_across_backends_and_threads() {
    let _g = global_guard();
    let e = env();
    let test = &e.data.test;
    for (name, model) in lineup() {
        // reference bits at default settings
        set_num_threads(0);
        let ref_acc = model.accuracy(test).unwrap();
        let ref_avg = model.average_member_accuracy(test).unwrap();
        let ref_bv = edde_core::bias_variance::bias_variance(&model, test).unwrap();
        let ref_div = (model.len() >= 2)
            .then(|| edde_core::diversity::model_diversity(&model, test.features()).unwrap());
        for scalar in [false, true] {
            // RAII scope: unwinds on panic, so no later test inherits a
            // forced backend.
            let _scope = scalar.then(force_scalar_scope);
            for threads in [1usize, 8] {
                set_num_threads(threads);
                for batch in [1usize, 7, 256] {
                    let tag = format!("{name} scalar={scalar} threads={threads} batch={batch}");
                    let mut src = DatasetStream::sequential(test, batch);
                    let report = stream_evaluate(&model, &mut src).unwrap();
                    assert_eq!(report.accuracy.to_bits(), ref_acc.to_bits(), "acc {tag}");
                    assert_eq!(
                        report.average_member_accuracy.to_bits(),
                        ref_avg.to_bits(),
                        "avg {tag}"
                    );
                    assert_eq!(
                        report.bias_variance.bias.to_bits(),
                        ref_bv.bias.to_bits(),
                        "bias {tag}"
                    );
                    assert_eq!(
                        report.bias_variance.variance.to_bits(),
                        ref_bv.variance.to_bits(),
                        "variance {tag}"
                    );
                    assert_eq!(
                        report.diversity.map(f32::to_bits),
                        ref_div.map(f32::to_bits),
                        "diversity {tag}"
                    );
                }
            }
        }
        set_num_threads(0);
    }
}

#[test]
fn frozen_and_sharded_streams_match_the_mutable_fold() {
    let _g = global_guard();
    let e = env();
    let test = &e.data.test;
    let model = Bagging::new(3, 2).run(&e).unwrap().model;
    let reference = model.accuracy(test).unwrap();

    let frozen = model.freeze();
    let mut src = DatasetStream::sequential(test, 7);
    assert_eq!(
        frozen.accuracy_stream(&mut src).unwrap().to_bits(),
        reference.to_bits()
    );

    // a sharded bundle evaluates lazily: members materialize on first use
    let store: Arc<dyn edde_nn::checkpoint::CheckpointStore> =
        Arc::new(edde_nn::checkpoint::MemStore::new());
    frozen
        .save_bundle_sharded(store.as_ref(), "lineup")
        .unwrap();
    let classes = test.num_classes();
    let sharded = edde_core::FrozenEnsemble::open_sharded(
        store,
        "lineup",
        Arc::new(move |_arch: &str, _c: usize| {
            let mut r = StdRng::seed_from_u64(0);
            Ok(mlp(&[6, 12, classes], 0.0, &mut r))
        }),
    )
    .unwrap();
    assert_eq!(sharded.resident_members(), 0, "lazy bundle starts empty");
    let mut src = DatasetStream::sequential(test, 7);
    assert_eq!(
        sharded.accuracy_stream(&mut src).unwrap().to_bits(),
        reference.to_bits()
    );
    assert_eq!(
        sharded.resident_members(),
        frozen.len(),
        "streaming eval materialized every member"
    );
}

#[test]
fn eval_batch_knob_never_changes_streamed_bits() {
    let _g = global_guard();
    let e = env();
    let test = &e.data.test;
    let model = Edde::new(3, 2, 2, 0.1, 0.7).run(&e).unwrap().model;
    std::env::remove_var("EDDE_EVAL_BATCH");
    let reference = model.accuracy(test).unwrap();
    for setting in ["1", "3", "64", "1024"] {
        std::env::set_var("EDDE_EVAL_BATCH", setting);
        assert_eq!(
            model.accuracy(test).unwrap().to_bits(),
            reference.to_bits(),
            "EDDE_EVAL_BATCH={setting}"
        );
    }
    std::env::remove_var("EDDE_EVAL_BATCH");
}

#[test]
fn stream_resets_replay_bit_identically_under_epoch_seeds() {
    let data = gaussian_blobs(&blob_config(), 5).train;
    let root = 0xFEED_u64;
    for epoch in [0usize, 1, 7] {
        let seed = epoch_seed(root, epoch);
        let mut src = DatasetStream::shuffled(&data, 8, seed);
        let first: Vec<Vec<usize>> = drain_indices(&mut src);
        src.reset();
        let replay: Vec<Vec<usize>> = drain_indices(&mut src);
        assert_eq!(first, replay, "epoch {epoch} reset must replay exactly");
        // a fresh stream under the same epoch seed sees the same order
        let mut fresh = DatasetStream::shuffled(&data, 8, seed);
        assert_eq!(first, drain_indices(&mut fresh));
    }
    // distinct epochs shuffle differently
    let mut a = DatasetStream::shuffled(&data, 8, epoch_seed(root, 0));
    let mut b = DatasetStream::shuffled(&data, 8, epoch_seed(root, 1));
    assert_ne!(drain_indices(&mut a), drain_indices(&mut b));
}

fn drain_indices(src: &mut DatasetStream) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    while let Some(batch) = src.next_batch() {
        out.push(batch.indices.clone());
        src.recycle(batch);
    }
    out
}

#[test]
fn steady_state_streaming_performs_no_fresh_allocations() {
    let e = env();
    let model = Bagging::new(2, 1).run(&e).unwrap().model;
    let data = &e.data.test;
    let mut src = DatasetStream::sequential(data, 8);
    // warmup epoch populates the gather pools
    stream_accuracy(&model, &mut src).unwrap();
    let after_warmup = src.fresh_allocs();
    for _ in 0..3 {
        src.reset();
        stream_accuracy(&model, &mut src).unwrap();
    }
    assert_eq!(
        src.fresh_allocs(),
        after_warmup,
        "recycled epochs must reuse every gather buffer"
    );
}

#[test]
fn eval_memory_is_bounded_by_batch_not_stream_length() {
    let e = env();
    let model = Bagging::new(2, 1).run(&e).unwrap().model;
    let cfg = blob_config();
    let peak_of = |samples: usize| {
        let mut src = GaussianStream::new(&cfg, 17, samples, 64);
        stream_evaluate(&model, &mut src).unwrap().peak_batch_bytes
    };
    let short = peak_of(1_000);
    let long = peak_of(100_000);
    assert_eq!(
        short, long,
        "peak resident eval bytes must not grow with stream length"
    );
    // and the bound is what one batch costs: features + member probs + vote
    let classes = cfg.classes;
    let expected =
        (64 * cfg.dim + model.len() * 64 * classes + 64 * classes) * std::mem::size_of::<f32>();
    assert_eq!(long, expected);
}

#[test]
fn drifted_streams_score_higher_disagreement_than_in_distribution() {
    let e = env();
    let model = Edde::new(3, 3, 2, 0.4, 0.5).run(&e).unwrap().model;
    let cfg = blob_config();
    let mut neg = GaussianStream::new(&cfg, 91, 1_500, 128);
    let mut pos = GaussianStream::with_drift(&cfg, 91, 1_500, 128, DriftSpec::UnseenFamilies);
    let auroc = edde_core::stream::disagreement_auroc(&model, &mut neg, &mut pos).unwrap();
    assert!(
        auroc > 0.6,
        "unseen-family drift should be detectable, got AUROC {auroc}"
    );
}

#[test]
fn batcher_stream_epoch_matches_materialized_epoch() {
    let data: Dataset = gaussian_blobs(&blob_config(), 23).train;
    let batcher = edde_data::Batcher::new(8);
    let seed = epoch_seed(7, 3);
    let materialized = batcher.epoch(&data, &mut StdRng::seed_from_u64(seed));
    let mut src = batcher.stream_epoch(&data, seed);
    let mut streamed = Vec::new();
    while let Some(batch) = src.next_batch() {
        streamed.push(batch);
    }
    assert_eq!(materialized.len(), streamed.len());
    for (m, s) in materialized.iter().zip(&streamed) {
        assert_eq!(m.indices, s.indices);
        assert_eq!(m.labels, s.labels);
        assert_eq!(m.features.data(), s.features.data());
    }
}
