//! Integration tests for chunked (sharded) bundle storage: bit-identity
//! against the whole-blob `EEB2` path on both codecs, the torn-chunk
//! rejection matrix surfacing typed [`ChunkError`]s through
//! [`BundleError`], lazy residency, chunk-granular session GC, and
//! kill/resume of sharded trainer checkpoints — including the
//! resume-after-GC interplay that makes in-flight chunk grids
//! load-bearing.

use edde_core::methods::{Bagging, EnsembleMethod};
use edde_core::runstate::{MemberRecord, RunSession};
use edde_core::{
    BundleCodec, BundleError, EddeConfig, EnsembleError, EpochCheckpoints, ExperimentEnv,
    FaultPlan, FrozenEnsemble, ModelFactory, NetworkBuilder, RecoveryPolicy, TrainLoop, TrainRng,
    Trainer,
};
use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
use edde_nn::checkpoint::{self, CheckpointStore, MemStore};
use edde_nn::chunkstore::{self, ChunkError};
use edde_nn::models::mlp;
use edde_nn::optim::LrSchedule;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, MutexGuard};

fn build() -> NetworkBuilder {
    Arc::new(|arch: &str, num_classes: usize| {
        let mut r = StdRng::seed_from_u64(0);
        match arch {
            "mlp-2" => Ok(mlp(&[40, 40, num_classes], 0.0, &mut r)),
            other => Err(EnsembleError::BadConfig(format!("unknown arch {other:?}"))),
        }
    })
}

fn sample() -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    for seed in 0..3u64 {
        let mut r = StdRng::seed_from_u64(seed + 10);
        f.push(
            Arc::new(mlp(&[40, 40, 3], 0.0, &mut r)),
            1.0 + seed as f32 * 0.25,
            format!("m{seed}"),
        );
    }
    f
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Unwraps the typed chunk rejection out of an ensemble-level error.
fn chunk_cause(err: EnsembleError) -> ChunkError {
    match err {
        EnsembleError::Bundle(BundleError::Chunk(e)) => e,
        other => panic!("expected a chunk-store rejection, got {other:?}"),
    }
}

#[test]
fn sharded_round_trip_is_bit_identical_to_whole_blob() {
    // The sharded writer chunks the same per-tensor coded streams the
    // whole-blob writer serializes, so both forms must decode to the same
    // member bits — for the exact-f32 codec and for int8, where a
    // per-chunk re-quantization would diverge.
    let x = Tensor::ones(&[5, 40]);
    for codec in [BundleCodec::f32(), BundleCodec::int8()] {
        let f = sample();
        let store = Arc::new(MemStore::new());
        f.save_bundle_with(store.as_ref(), "blob", &codec).unwrap();
        f.save_bundle_sharded_with(store.as_ref(), "root", &codec, true)
            .unwrap();
        let whole =
            FrozenEnsemble::load_bundle(store.as_ref(), "blob", &|a, n| build()(a, n)).unwrap();
        let sharded = FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap();
        let tag = codec.tag();
        assert_eq!(sharded.codec_tag(), tag, "{tag}");
        assert_eq!(sharded.arch_signature(), whole.arch_signature(), "{tag}");
        let lazy = sharded.materialize().unwrap();
        assert_eq!(
            bits(&whole.soft_targets(&x).unwrap()),
            bits(&lazy.soft_targets(&x).unwrap()),
            "codec {tag}: sharded vote diverged from whole-blob"
        );
        for (wm, lm) in whole.members().iter().zip(lazy.members()) {
            assert_eq!(wm.label(), lm.label(), "{tag}");
            assert_eq!(wm.alpha().to_bits(), lm.alpha().to_bits(), "{tag}");
        }
        // The f32 codec round-trips raw parameters; compare them bitwise.
        if tag == BundleCodec::f32().tag() {
            for (wm, lm) in whole.members().iter().zip(lazy.members()) {
                let ws = wm.network().unwrap().export_state();
                let ls = lm.network().unwrap().export_state();
                assert_eq!(ws.len(), ls.len());
                for ((wn, wt), (ln, lt)) in ws.iter().zip(&ls) {
                    assert_eq!(wn, ln);
                    assert_eq!(bits(wt), bits(lt), "tensor {wn} differs");
                }
            }
        }
    }
}

#[test]
fn lazy_open_defers_chunk_decode_until_first_predict() {
    let f = sample();
    let store = Arc::new(MemStore::new());
    f.save_bundle_sharded(store.as_ref(), "root").unwrap();
    let sharded = FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap();
    // Opening reads only the root record: structural metadata is
    // available with zero members resident.
    assert_eq!(sharded.resident_members(), 0);
    assert_eq!(sharded.len(), 3);
    assert_eq!(sharded.num_classes(), Some(3));
    let x = Tensor::ones(&[4, 40]);
    let first = sharded.predict(&x).unwrap();
    assert_eq!(sharded.resident_members(), 3, "predict serves all members");
    assert_eq!(sharded.predict(&x).unwrap(), first);
    // The cached members answer identically to an eager load.
    let eager = FrozenEnsemble::load_bundle(store.as_ref(), "root", &|a, n| build()(a, n));
    assert!(eager.is_err(), "a root record is not a whole-blob bundle");
    assert_eq!(f.predict(&x).unwrap(), first);
}

/// Rewrites member `m`'s `EDS1` index inside the sealed `ESR1` root — the
/// embedded-index analogue of corrupting a standalone index record.
fn patch_root_index(
    store: &MemStore,
    key: &str,
    m: usize,
    patch: impl Fn(&mut chunkstore::ChunkIndex),
) {
    let root = checkpoint::unseal(store.get(key).unwrap()).unwrap();
    // ESR1 header: magic, version, member count, chunk size, codec tag.
    let mut off = 4 + 4;
    let members = u32::from_le_bytes(root[off..off + 4].try_into().unwrap()) as usize;
    off += 4 + 8;
    let tag_len = u32::from_le_bytes(root[off..off + 4].try_into().unwrap()) as usize;
    off += 4 + tag_len;
    let mut out = root[..off].to_vec();
    for t in 0..members {
        let len = u64::from_le_bytes(root[off..off + 8].try_into().unwrap()) as usize;
        off += 8;
        let blob = root.slice(off..off + len);
        off += len;
        let blob = if t == m {
            let mut ix = chunkstore::ChunkIndex::decode(blob).unwrap();
            patch(&mut ix);
            ix.encode()
        } else {
            blob
        };
        out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&blob);
    }
    store.put(key, &checkpoint::seal(&out)).unwrap();
}

#[test]
fn torn_chunks_surface_typed_bundle_errors_and_heal_on_repair() {
    let f = sample();
    let store = Arc::new(MemStore::new());
    f.save_bundle_sharded(store.as_ref(), "root").unwrap();
    // Part 0 is fc0.weight — 40x40 f32s, well past the inline threshold,
    // so its chunk grid really is on the store.
    let victim = chunkstore::chunk_key(1, 0, 0);
    let good_chunk = store.get(&victim).unwrap();
    let good_root = store.get("root").unwrap();

    // Missing chunk: open succeeds (the root record is intact),
    // materializing the damaged member is the typed failure.
    store.remove(&victim).unwrap();
    let sharded = FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap();
    match chunk_cause(sharded.materialize().unwrap_err()) {
        ChunkError::MissingChunk { key } => assert_eq!(key, victim),
        other => panic!("expected MissingChunk, got {other:?}"),
    }
    // A failed decode is not cached: repairing the store heals the same
    // open handle without reopening.
    store.put(&victim, &good_chunk).unwrap();
    sharded.materialize().unwrap();
    assert_eq!(sharded.resident_members(), 3);

    // Truncated chunk (torn write).
    store
        .put(&victim, &good_chunk[..good_chunk.len() - 7])
        .unwrap();
    let sharded = FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap();
    match chunk_cause(sharded.materialize().unwrap_err()) {
        ChunkError::TruncatedChunk { key, .. } => assert_eq!(key, victim),
        other => panic!("expected TruncatedChunk, got {other:?}"),
    }

    // Bit flip inside the frame (in-place corruption).
    let mut flipped = good_chunk.to_vec();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x04;
    store.put(&victim, &flipped).unwrap();
    let sharded = FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap();
    match chunk_cause(sharded.materialize().unwrap_err()) {
        ChunkError::CorruptChunk { key, .. } => assert_eq!(key, victim),
        other => panic!("expected CorruptChunk, got {other:?}"),
    }
    store.put(&victim, &good_chunk).unwrap();

    // Index whose stated chunk count disagrees with its own layout: the
    // indexes ride inside the sealed root, and the mismatch is rejected
    // while the root decodes — before any chunk is read.
    patch_root_index(store.as_ref(), "root", 1, |ix| ix.parts[0].chunks += 1);
    match chunk_cause(FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap_err()) {
        ChunkError::CountMismatch { expected, got, .. } => assert_eq!(got, expected + 1),
        other => panic!("expected CountMismatch, got {other:?}"),
    }

    // Torn root record — half a group commit: no readable bundle at all.
    store
        .put("root", &good_root[..good_root.len() / 2])
        .unwrap();
    FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap_err();

    // Full repair: the bundle serves again.
    store.put("root", &good_root).unwrap();
    FrozenEnsemble::open_sharded(store, "root", build())
        .unwrap()
        .materialize()
        .unwrap();
}

#[test]
fn session_gc_is_chunk_granular() {
    let store = MemStore::new();
    let mut r = StdRng::seed_from_u64(6);
    let mut net = mlp(&[4, 8, 2], 0.0, &mut r);
    let mut sess = RunSession::open(&store, "EDDE", 7).unwrap();
    sess.record_member(
        MemberRecord {
            label: "edde-1".into(),
            alpha: 1.0,
            seed: 0,
            net_key: String::new(),
            cumulative_epochs: 1,
            test_accuracy: 0.5,
            weights: vec![],
        },
        &mut net,
    )
    .unwrap();
    drop(sess);

    // Member 1 is in flight: a sharded progress record (EDS1 index under
    // the progress key) describing one 6000-byte part in 1024-byte chunks.
    let part: Vec<u8> = (0..6000u32).map(|i| (i % 113) as u8).collect();
    chunkstore::write_member_chunks_with(
        &store,
        1,
        &RunSession::progress_key(1),
        b"progress header",
        &[("w".to_string(), vec![1500], part)],
        false,
        1024,
    )
    .unwrap();
    // Garbage the sweep must collect: chunks of the *committed* member 0,
    // chunks beyond the live index's grid (a shrunk or re-chunked write),
    // chunks of a part the index does not know, chunks of a member with
    // no progress record at all, and stray sharded-bundle index keys
    // (sharded bundles belong in their own store).
    store
        .put(&chunkstore::chunk_key(0, 0, 0), b"stale")
        .unwrap();
    store
        .put(&chunkstore::chunk_key(1, 0, 6), b"beyond")
        .unwrap();
    store
        .put(&chunkstore::chunk_key(1, 1, 0), b"no part")
        .unwrap();
    store
        .put(&chunkstore::chunk_key(2, 0, 0), b"no index")
        .unwrap();
    store.put(&chunkstore::index_key(0), b"stray").unwrap();
    store.put(&chunkstore::index_key(1), b"stray").unwrap();

    let sess = RunSession::open(&store, "EDDE", 7).unwrap();
    assert_eq!(sess.completed(), 1);
    for c in 0..6 {
        assert!(
            store.contains(&chunkstore::chunk_key(1, 0, c)),
            "live in-flight chunk {c} must survive GC"
        );
    }
    assert!(
        store.contains(&RunSession::progress_key(1)),
        "in-flight sharded progress record must survive"
    );
    for (key, why) in [
        (chunkstore::chunk_key(0, 0, 0), "committed member's chunk"),
        (
            chunkstore::chunk_key(1, 0, 6),
            "chunk beyond the index grid",
        ),
        (chunkstore::chunk_key(1, 1, 0), "chunk of an unknown part"),
        (chunkstore::chunk_key(2, 0, 0), "chunk with no index"),
        (chunkstore::index_key(0), "stray index key"),
        (chunkstore::index_key(1), "stray index key"),
    ] {
        assert!(!store.contains(&key), "{why} ({key}) must be swept");
    }
}

#[test]
fn sharded_trainer_checkpoint_resumes_bitwise() {
    // Kill a sharded-checkpointed member mid-epoch; the progress record on
    // the store is an EDS1 index plus a chunk grid. Resuming — even with a
    // loop configured for whole-blob records, since resume auto-detects
    // the format from the magic — must match the uninterrupted run bit
    // for bit.
    let cfg = GaussianBlobsConfig {
        classes: 3,
        dim: 6,
        train_per_class: 40,
        test_per_class: 20,
        spread: 0.6,
    };
    let train = gaussian_blobs(&cfg, 11).train;
    let schedule = LrSchedule::paper_step(0.1, 4);
    let seed = 77u64;
    let fresh_net = || mlp(&[6, 172, 3], 0.0, &mut StdRng::seed_from_u64(123));
    let clean = Trainer {
        batch_size: 16,
        weight_decay: 0.0,
        ..Trainer::default()
    };

    let mut reference_net = fresh_net();
    TrainLoop::new(&clean, &train, &schedule, 4)
        .run(&mut reference_net, TrainRng::PerEpoch { seed })
        .unwrap();
    let reference = reference_net.export_state();

    let store = MemStore::new();
    let checkpoints = |sharded: bool| EpochCheckpoints {
        store: &store,
        key: "member-0-progress".into(),
        member: 0,
        fingerprint: 7,
        every: 1,
        sharded,
        config: EddeConfig::default(),
    };
    let dying = Trainer {
        recovery: RecoveryPolicy::disabled(),
        fault: Some(FaultPlan::nan_loss_at_step(20)),
        ..clean.clone()
    };
    let mut net = fresh_net();
    TrainLoop::new(&dying, &train, &schedule, 4)
        .checkpoint(checkpoints(true))
        .run(&mut net, TrainRng::PerEpoch { seed })
        .unwrap_err();

    // The record really is sharded: EDS1 magic, chunks beside it.
    let payload = checkpoint::get_sealed(&store, "member-0-progress").unwrap();
    assert_eq!(&payload[..4], chunkstore::INDEX_MAGIC);
    assert!(store.contains(&chunkstore::chunk_key(0, 0, 0)));

    let mut resumed_net = mlp(&[6, 172, 3], 0.0, &mut StdRng::seed_from_u64(999));
    TrainLoop::new(&clean, &train, &schedule, 4)
        .checkpoint(checkpoints(false)) // auto-detect reads the EDS1 record
        .run(&mut resumed_net, TrainRng::PerEpoch { seed })
        .unwrap();
    assert_eq!(resumed_net.export_state(), reference);
}

#[test]
fn torn_sharded_progress_restarts_the_member_from_scratch() {
    // A chunk lost from an in-flight sharded record must degrade exactly
    // like a torn whole-blob record: the member restarts at epoch 0 and
    // still matches a no-checkpoint run bit for bit.
    let cfg = GaussianBlobsConfig {
        classes: 3,
        dim: 6,
        train_per_class: 40,
        test_per_class: 20,
        spread: 0.6,
    };
    let train = gaussian_blobs(&cfg, 11).train;
    let schedule = LrSchedule::Constant { base: 0.05 };
    let trainer = Trainer {
        batch_size: 16,
        weight_decay: 0.0,
        ..Trainer::default()
    };
    let fresh_net = || mlp(&[6, 172, 3], 0.0, &mut StdRng::seed_from_u64(31));
    let mut reference_net = fresh_net();
    TrainLoop::new(&trainer, &train, &schedule, 2)
        .run(&mut reference_net, TrainRng::PerEpoch { seed: 9 })
        .unwrap();

    let store = MemStore::new();
    let checkpoints = || EpochCheckpoints {
        store: &store,
        key: "member-0-progress".into(),
        member: 0,
        fingerprint: 3,
        every: 1,
        sharded: true,
        config: EddeConfig::default(),
    };
    let dying = Trainer {
        recovery: RecoveryPolicy::disabled(),
        fault: Some(FaultPlan::nan_loss_at_step(10)),
        ..trainer.clone()
    };
    let mut net = fresh_net();
    TrainLoop::new(&dying, &train, &schedule, 2)
        .checkpoint(checkpoints())
        .run(&mut net, TrainRng::PerEpoch { seed: 9 })
        .unwrap_err();
    // Lose one chunk of the in-flight grid — the reassembly fails its
    // layout check, and resume treats the record as torn.
    let victim = chunkstore::chunk_key(0, 0, 0);
    assert!(store.contains(&victim));
    store.remove(&victim).unwrap();

    let mut resumed_net = fresh_net();
    TrainLoop::new(&trainer, &train, &schedule, 2)
        .checkpoint(checkpoints())
        .run(&mut resumed_net, TrainRng::PerEpoch { seed: 9 })
        .unwrap();
    assert_eq!(resumed_net.export_state(), reference_net.export_state());
}

/// Serializes the env-knob test against anything else that might read the
/// process environment mid-flight.
fn env_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn sharded_checkpoints_survive_session_gc_on_resume() {
    // End to end through the EDDE_SHARDED_CKPT knob: kill a Bagging run
    // inside member 1 with sharded epoch checkpoints, then resume with
    // the knob *off*. RunSession::open runs its garbage collection before
    // the trainer reads the progress record, so this pins the GC rule
    // that in-flight chunk grids are load-bearing: if the sweep collected
    // them, the resume would silently restart member 1 and diverge.
    let _g = env_guard();
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 30,
            test_per_class: 15,
            spread: 0.8,
        },
        71,
    );
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 172, 3], 0.0, r)));
    let env = ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        71,
    );
    let x = env.data.test.features().clone();
    let probs = |run: &mut edde_core::methods::RunResult| -> Vec<Vec<u32>> {
        run.model
            .member_soft_targets(&x)
            .unwrap()
            .iter()
            .map(bits)
            .collect()
    };

    // Reference: uninterrupted, whole-blob checkpoints (knob unset).
    std::env::remove_var("EDDE_SHARDED_CKPT");
    let full_store = MemStore::new();
    let mut full = Bagging::new(2, 3).run_resumable(&env, &full_store).unwrap();
    let reference = probs(&mut full);

    // Killed run with sharded checkpoints: member 0 commits, member 1
    // dies inside epoch 1 (step 26 of 6-step epochs) leaving an EDS1
    // progress record plus its chunk grid.
    std::env::set_var("EDDE_SHARDED_CKPT", "1");
    let store = MemStore::new();
    let mut dying_env = env.clone();
    dying_env.trainer.recovery = RecoveryPolicy::disabled();
    dying_env.trainer.fault = Some(FaultPlan::nan_loss_at_step(26));
    Bagging::new(2, 3)
        .run_resumable(&dying_env, &store)
        .unwrap_err();
    std::env::remove_var("EDDE_SHARDED_CKPT");
    let payload = checkpoint::get_sealed(&store, "member-1-progress").unwrap();
    assert_eq!(
        &payload[..4],
        chunkstore::INDEX_MAGIC,
        "the knob must route epoch checkpoints through the chunk store"
    );
    assert!(store.contains(&chunkstore::chunk_key(1, 0, 0)));

    // Resume with the knob off: GC keeps the in-flight grid, auto-detect
    // reads it, and the final ensemble matches bit for bit.
    let mut resumed = Bagging::new(2, 3).run_resumable(&env, &store).unwrap();
    assert_eq!(probs(&mut resumed), reference);
    assert_eq!(resumed.trace, full.trace);
}
