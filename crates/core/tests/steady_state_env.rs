//! Steady-state evaluation performs **zero** environment lookups.
//!
//! Every `EDDE_*` read funnels through `edde_tensor::env::env_lookup`,
//! which counts calls. After one warm-up pass has resolved the config
//! and initialized the thread's inference scratch, the batched hot path
//! must never touch the environment again — knobs are read at
//! construction, not per batch. The whole check runs inline-dispatched
//! on one thread so lazily-initialized worker state cannot smear the
//! counter, and this file holds exactly one test so no sibling test in
//! the same process races the global counter.

use edde_core::{stream_evaluate, EddeConfig, FrozenEnsemble};
use edde_data::stream::DatasetStream;
use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
use edde_nn::models::mlp;
use edde_tensor::env::env_read_count;
use edde_tensor::parallel::with_inline_dispatch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn steady_state_evaluation_reads_no_environment() {
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 4,
            test_per_class: 80,
            spread: 0.6,
        },
        5,
    )
    .test;
    let mut frozen = FrozenEnsemble::new();
    for seed in 0..3u64 {
        let net = mlp(&[6, 16, 3], 0.0, &mut StdRng::seed_from_u64(seed));
        frozen.push(Arc::new(net), 1.0, format!("m{seed}"));
    }
    let config = EddeConfig::from_env();

    with_inline_dispatch(|| {
        // Warm-up: resolves the config once and builds this thread's
        // inference scratch context (whose construction may read env).
        frozen
            .soft_targets_batched(data.features(), config.eval_batch)
            .unwrap();

        // Hot loop: knobs were read at construction, never per batch.
        let before = env_read_count();
        for _ in 0..25 {
            frozen
                .soft_targets_batched(data.features(), config.eval_batch)
                .unwrap();
        }
        assert_eq!(
            env_read_count() - before,
            0,
            "batched evaluation hot path touched the environment"
        );

        // The streaming reducers resolve their knobs once at entry, so
        // the lookup count per call is a constant — the same whether the
        // stream yields 2 batches (rows/120) or 30 batches (rows/8).
        let reads_for = |stream_rows: usize| {
            let mut src = DatasetStream::sequential(&data, stream_rows);
            let before = env_read_count();
            stream_evaluate(&frozen, &mut src).unwrap();
            env_read_count() - before
        };
        assert_eq!(
            reads_for(120),
            reads_for(8),
            "stream_evaluate's env lookups scale with batch count"
        );
    });
}
