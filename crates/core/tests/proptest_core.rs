//! Property-based tests for the ensemble layer: the diversity measure's
//! metric-like properties, soft-vote convexity, and β-transfer invariants.

use edde_core::diversity::{ensemble_diversity, pairwise_diversity, pairwise_similarity};
use edde_core::transfer::transfer_partial;
use edde_core::EnsembleModel;
use edde_nn::models::mlp;
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an `[n, k]` probability matrix.
fn prob_matrix(n: usize, k: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-4.0f32..4.0, n * k)
        .prop_map(move |raw| softmax_rows(&Tensor::from_vec(raw, &[n, k]).unwrap()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn diversity_is_symmetric_bounded_and_reflexive(
        a in prob_matrix(6, 4),
        b in prob_matrix(6, 4),
    ) {
        let dab = pairwise_diversity(&a, &b).unwrap();
        let dba = pairwise_diversity(&b, &a).unwrap();
        prop_assert_eq!(dab, dba);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(pairwise_diversity(&a, &a).unwrap(), 0.0);
        prop_assert!((pairwise_similarity(&a, &b).unwrap() - (1.0 - dab)).abs() < 1e-6);
    }

    #[test]
    fn diversity_satisfies_triangle_inequality(
        a in prob_matrix(5, 3),
        b in prob_matrix(5, 3),
        c in prob_matrix(5, 3),
    ) {
        // Eq. 2 is a scaled mean of L2 distances, hence a pseudometric
        let ab = pairwise_diversity(&a, &b).unwrap();
        let bc = pairwise_diversity(&b, &c).unwrap();
        let ac = pairwise_diversity(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-5);
    }

    #[test]
    fn ensemble_diversity_is_permutation_invariant(
        a in prob_matrix(4, 3),
        b in prob_matrix(4, 3),
        c in prob_matrix(4, 3),
    ) {
        let d1 = ensemble_diversity(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let d2 = ensemble_diversity(&[c, a, b]).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn adding_a_duplicate_member_lowers_mean_diversity(
        a in prob_matrix(4, 3),
        b in prob_matrix(4, 3),
    ) {
        let dab = pairwise_diversity(&a, &b).unwrap();
        prop_assume!(dab > 1e-4);
        let two = ensemble_diversity(&[a.clone(), b.clone()]).unwrap();
        // duplicating `a` adds a zero-diversity pair, dragging the mean down
        let three = ensemble_diversity(&[a.clone(), a, b]).unwrap();
        prop_assert!(three < two);
    }

    #[test]
    fn soft_vote_stays_inside_member_hull(seed in 0u64..30, alpha1 in 0.1f32..3.0, alpha2 in 0.1f32..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = EnsembleModel::new();
        model.push(mlp(&[3, 8, 4], 0.0, &mut rng), alpha1, "a");
        model.push(mlp(&[3, 8, 4], 0.0, &mut rng), alpha2, "b");
        let x = edde_tensor::rng::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng);
        let mix = model.soft_targets(&x).unwrap();
        let members = model.member_soft_targets(&x).unwrap();
        for i in 0..mix.len() {
            let lo = members[0].data()[i].min(members[1].data()[i]);
            let hi = members[0].data()[i].max(members[1].data()[i]);
            prop_assert!(mix.data()[i] >= lo - 1e-5 && mix.data()[i] <= hi + 1e-5);
        }
        // and each row remains a distribution
        for i in 0..6 {
            let s: f32 = mix.row(i).unwrap().iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn transfer_effective_beta_bounds_requested(seed in 0u64..20, beta in 0.0f32..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut teacher = mlp(&[6, 10, 8, 4], 0.0, &mut rng);
        let mut student = mlp(&[6, 10, 8, 4], 0.0, &mut rng);
        let report = transfer_partial(&mut teacher, &mut student, beta).unwrap();
        // whole-tensor rounding always covers at least the requested beta
        prop_assert!(report.effective_beta + 1e-6 >= beta.min(1.0)
            || report.transferred_params.is_empty() && beta == 0.0);
        prop_assert!(report.effective_beta <= 1.0);
    }

    #[test]
    fn transfer_prefix_is_nested(seed in 0u64..20, lo in 0.1f32..0.5, hi in 0.5f32..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut teacher = mlp(&[6, 10, 8, 4], 0.0, &mut rng);
        let mut s1 = mlp(&[6, 10, 8, 4], 0.0, &mut rng);
        let mut s2 = mlp(&[6, 10, 8, 4], 0.0, &mut rng);
        let r_lo = transfer_partial(&mut teacher, &mut s1, lo).unwrap();
        let r_hi = transfer_partial(&mut teacher, &mut s2, hi).unwrap();
        // the low-beta tensor set is a prefix of the high-beta one
        prop_assert!(r_lo.transferred_params.len() <= r_hi.transferred_params.len());
        for (a, b) in r_lo.transferred_params.iter().zip(r_hi.transferred_params.iter()) {
            prop_assert_eq!(a, b);
        }
    }
}
