//! Epoch-granular kill/resume: a run killed at an *arbitrary epoch inside
//! a member* must resume from its `member-{t}-progress` record and finish
//! bit-identical to an uninterrupted run — sequentially, under 8-thread
//! parallel member training, and with the SIMD dispatch forced to the
//! scalar backend. Faults are injected two ways: trainer-level NaN losses
//! ([`FaultPlan`]) and checkpoint-store write failures ([`FaultyStore`]).

use edde_core::methods::{Bagging, Edde, EnsembleMethod};
use edde_core::{ExperimentEnv, FaultPlan, FaultyStore, ModelFactory, RecoveryPolicy, Trainer};
use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
use edde_nn::checkpoint::{CheckpointStore, MemStore};
use edde_nn::models::mlp;
use edde_tensor::parallel::set_num_threads;
use edde_tensor::Tensor;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests in this file: they flip process-global execution knobs
/// (thread override, forced-scalar SIMD dispatch).
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the thread count even if the test panics. Backend forcing
/// uses the RAII [`edde_tensor::simd::force_scalar_scope`], which
/// unwinds on its own.
struct RestoreGlobals;
impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        set_num_threads(0);
    }
}

/// 3 classes x 30 train samples = 90; batch 16 -> 6 optimizer steps per
/// epoch. The fault-step arithmetic below relies on these numbers.
fn blob_env(seed: u64) -> ExperimentEnv {
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 30,
            test_per_class: 15,
            spread: 0.8,
        },
        seed,
    );
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 16, 3], 0.0, r)));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        seed,
    )
}

fn dying(env: &ExperimentEnv, fault_step: u64) -> ExperimentEnv {
    let mut e = env.clone();
    e.trainer.recovery = RecoveryPolicy::disabled();
    e.trainer.fault = Some(FaultPlan::nan_loss_at_step(fault_step));
    e
}

/// Per-member probability bit patterns — the strongest practical weight
/// fingerprint (identical forward passes are what the ensemble consumes).
fn member_bits(run: &mut edde_core::methods::RunResult, x: &Tensor) -> Vec<Vec<u32>> {
    run.model
        .member_soft_targets(x)
        .unwrap()
        .iter()
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn sequential_kill_at_any_epoch_resumes_bitwise() {
    // Bagging 3x3: member t spans steps [18t, 18t+18), epoch boundaries
    // every 6 steps. Kill inside member 1 at epoch 0 (step 20 — before the
    // first boundary write), epoch 1 (26), and epoch 2 (32); every resume
    // must match the uninterrupted run bit for bit.
    let _g = global_guard();
    let _restore = RestoreGlobals;
    set_num_threads(1);
    let env = blob_env(71);
    let x = env.data.test.features().clone();
    let full_store = MemStore::new();
    let mut full = Bagging::new(3, 3).run_resumable(&env, &full_store).unwrap();
    let reference = member_bits(&mut full, &x);

    for (fault_step, expect_progress) in [(20u64, false), (26, true), (32, true)] {
        let store = MemStore::new();
        Bagging::new(3, 3)
            .run_resumable(&dying(&env, fault_step), &store)
            .unwrap_err();
        assert!(store.contains("member-0"), "step {fault_step}");
        assert!(!store.contains("member-1"), "step {fault_step}");
        assert_eq!(
            store.contains("member-1-progress"),
            expect_progress,
            "step {fault_step}: boundary writes start at epoch 1"
        );
        let mut resumed = Bagging::new(3, 3).run_resumable(&env, &store).unwrap();
        assert_eq!(
            member_bits(&mut resumed, &x),
            reference,
            "kill at step {fault_step} diverged after resume"
        );
        assert_eq!(resumed.trace, full.trace, "step {fault_step}");
    }
}

#[test]
fn parallel_run_resumes_mid_member_progress_bitwise() {
    // The killed (sequential — fault injection forces it) run leaves a
    // mid-member epoch record; resuming on the 8-thread parallel path must
    // pick it up inside `train_members_in_order` and still match an
    // uninterrupted parallel run bit for bit.
    let _g = global_guard();
    let _restore = RestoreGlobals;
    set_num_threads(8);
    let env = blob_env(72);
    let x = env.data.test.features().clone();
    let full_store = MemStore::new();
    let mut full = Bagging::new(3, 3).run_resumable(&env, &full_store).unwrap();

    let store = MemStore::new();
    Bagging::new(3, 3)
        .run_resumable(&dying(&env, 32), &store)
        .unwrap_err();
    assert!(
        store.contains("member-1-progress"),
        "kill inside member 1's epoch 2 must leave its progress record"
    );

    let mut resumed = Bagging::new(3, 3).run_resumable(&env, &store).unwrap();
    assert_eq!(member_bits(&mut resumed, &x), member_bits(&mut full, &x));
    assert_eq!(resumed.trace, full.trace);
}

#[test]
fn forced_scalar_backend_resumes_bitwise() {
    // The EDDE_SIMD=scalar configuration: dispatch pinned to the scalar
    // kernels end to end (reference and resumed run alike).
    let _g = global_guard();
    let _restore = RestoreGlobals;
    set_num_threads(1);
    let _scope = edde_tensor::simd::force_scalar_scope();
    let env = blob_env(73);
    let x = env.data.test.features().clone();
    let full_store = MemStore::new();
    let mut full = Bagging::new(3, 3).run_resumable(&env, &full_store).unwrap();

    let store = MemStore::new();
    Bagging::new(3, 3)
        .run_resumable(&dying(&env, 26), &store)
        .unwrap_err();
    assert!(store.contains("member-1-progress"));
    let mut resumed = Bagging::new(3, 3).run_resumable(&env, &store).unwrap();
    assert_eq!(member_bits(&mut resumed, &x), member_bits(&mut full, &x));
    assert_eq!(resumed.trace, full.trace);
}

#[test]
fn edde_kill_inside_a_round_resumes_bitwise() {
    // EDDE round 1 trains 3 epochs (18 steps); round 2 spans steps 18..30.
    // Step 26 lands in round 2's epoch 1, after its epoch-boundary record
    // was written. The resume must reproduce the diversity-loss targets,
    // the boosting weights, and the alpha votes exactly.
    let _g = global_guard();
    let _restore = RestoreGlobals;
    set_num_threads(1);
    let method = Edde::new(3, 3, 2, 0.1, 0.7);
    let env = blob_env(74);
    let x = env.data.test.features().clone();
    let full_store = MemStore::new();
    let mut full = method.run_resumable(&env, &full_store).unwrap();

    let store = MemStore::new();
    method.run_resumable(&dying(&env, 26), &store).unwrap_err();
    assert!(store.contains("member-0"), "round 1 should be committed");
    assert!(
        store.contains("member-1-progress"),
        "round 2's epoch progress should be persisted"
    );

    let mut resumed = method.run_resumable(&env, &store).unwrap();
    let alphas_full: Vec<f32> = full.model.members().iter().map(|m| m.alpha).collect();
    let alphas_res: Vec<f32> = resumed.model.members().iter().map(|m| m.alpha).collect();
    assert_eq!(alphas_full, alphas_res);
    assert_eq!(member_bits(&mut resumed, &x), member_bits(&mut full, &x));
}

#[test]
fn failed_progress_write_leaves_a_resumable_store() {
    // Sequential Bagging 2x3 writes, in order: member 0's progress at
    // epochs 1 and 2, its network, the manifest, then member 1's progress.
    // Failing put #4 aborts the run inside member 1 with member 0
    // committed; the store must resume to the identical ensemble.
    let _g = global_guard();
    let _restore = RestoreGlobals;
    set_num_threads(1);
    let method = Bagging::new(2, 3).sequential();
    let env = blob_env(75);
    let x = env.data.test.features().clone();
    let full_store = MemStore::new();
    let mut full = method.run_resumable(&env, &full_store).unwrap();

    let store = FaultyStore::new(MemStore::new(), FaultPlan::fail_put(4));
    let err = method.run_resumable(&env, &store).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    let store = store.into_inner();
    assert!(store.contains("manifest"), "member 0 was committed");
    assert!(store.contains("member-0"));

    let mut resumed = method.run_resumable(&env, &store).unwrap();
    assert_eq!(member_bits(&mut resumed, &x), member_bits(&mut full, &x));
    assert_eq!(resumed.trace, full.trace);
}
