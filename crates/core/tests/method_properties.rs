//! Behavioural properties of the ensemble methods, checked on a small
//! Gaussian-blob environment (fast, deterministic).

use edde_core::methods::{
    AdaBoostM1, AdaBoostNc, Bagging, Bans, Edde, EnsembleMethod, Ncl, SingleModel, Snapshot,
    TransferMode,
};
use edde_core::{EnsembleModel, ExperimentEnv, ModelFactory, Trainer};
use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
use edde_nn::models::mlp;
use std::sync::Arc;

fn env(seed: u64) -> ExperimentEnv {
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 35,
            test_per_class: 15,
            spread: 0.9,
        },
        seed,
    );
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        seed,
    )
}

#[test]
fn every_method_reports_its_paper_name() {
    let names: Vec<String> = vec![
        SingleModel::new(1).name(),
        Bans::new(1, 1).name(),
        Bagging::new(1, 1).name(),
        AdaBoostM1::new(1, 1).name(),
        AdaBoostNc::new(1, 1).name(),
        Snapshot::new(1, 1).name(),
        Edde::new(1, 1, 1, 0.1, 0.7).name(),
        Ncl::new(2, 1, 1, 0.1).name(),
    ];
    assert_eq!(
        names,
        vec![
            "Single Model",
            "BANs",
            "Bagging",
            "AdaBoost.M1",
            "AdaBoost.NC",
            "Snapshot",
            "EDDE",
            "NCL"
        ]
    );
}

#[test]
fn all_methods_respect_their_total_epoch_accounting() {
    let e = env(80);
    let cases: Vec<(Box<dyn EnsembleMethod>, usize)> = vec![
        (Box::new(SingleModel::new(7)), 7),
        (Box::new(Bagging::new(3, 4)), 12),
        (Box::new(AdaBoostM1::new(2, 5)), 10),
        (Box::new(AdaBoostNc::new(2, 5)), 10),
        (Box::new(Snapshot::new(3, 4)), 12),
        (Box::new(Bans::new(2, 6)), 12),
        (Box::new(Edde::new(3, 6, 4, 0.1, 0.7)), 14),
        (Box::new(Ncl::new(2, 2, 3, 0.2)), 12),
    ];
    for (method, expect) in cases {
        let run = method.run(&e).unwrap();
        assert_eq!(run.total_epochs, expect, "{}", method.name());
        assert_eq!(
            run.trace.last().unwrap().cumulative_epochs,
            expect,
            "{} trace end",
            method.name()
        );
    }
}

#[test]
fn ensembles_beat_chance_and_track_their_members() {
    let e = env(81);
    for method in [
        Box::new(Bagging::new(3, 6)) as Box<dyn EnsembleMethod>,
        Box::new(Snapshot::new(3, 6)),
        Box::new(Edde::new(3, 6, 5, 0.1, 0.7)),
    ] {
        let run = method.run(&e).unwrap();
        let ens = run.model.accuracy(&e.data.test).unwrap();
        let avg = run.model.average_member_accuracy(&e.data.test).unwrap();
        assert!(ens > 0.5, "{} ensemble at {ens}", method.name());
        // soft voting should not collapse far below the mean member —
        // allow slack for alpha-weighting quirks at tiny scale
        assert!(
            ens >= avg - 0.1,
            "{}: ensemble {ens} far below member mean {avg}",
            method.name()
        );
    }
}

#[test]
fn edde_transfer_none_matches_bagging_style_independence() {
    // with transfer disabled and boosting off, EDDE's members are
    // independent models trained with a (diversity-regularized) loss —
    // their pairwise similarity should be clearly below Snapshot's members.
    let e = env(82);
    let edde_none = Edde {
        transfer: TransferMode::None,
        boosting: false,
        ..Edde::new(3, 4, 4, 0.0, 0.7)
    }
    .run(&e)
    .unwrap();
    let snap = Snapshot::new(3, 4).run(&e).unwrap();
    let d_none =
        edde_core::diversity::model_diversity(&edde_none.model, e.data.test.features()).unwrap();
    let d_snap =
        edde_core::diversity::model_diversity(&snap.model, e.data.test.features()).unwrap();
    assert!(
        d_none > d_snap,
        "independent members ({d_none}) should out-diversify snapshots ({d_snap})"
    );
}

#[test]
fn bans_generations_drift_from_generation_one() {
    let e = env(83);
    let run = Bans::new(3, 5).run(&e).unwrap();
    let probs = run
        .model
        .member_soft_targets(e.data.test.features())
        .unwrap();
    // generation 3 differs from generation 1 (distillation is not cloning)
    let d13 = edde_core::diversity::pairwise_diversity(&probs[0], &probs[2]).unwrap();
    assert!(d13 > 0.0);
}

#[test]
fn member_alpha_weights_shape_the_vote() {
    // manually build an ensemble with a deliberately wrong member; raising
    // the good member's alpha must not lower accuracy
    let e = env(84);
    let mut good = SingleModel::new(10).run(&e).unwrap();
    let good_net = good.model.members_mut()[0].network.clone();
    let mut rng = e.rng(123);
    let bad_net = (e.factory)(&mut rng).unwrap(); // untrained

    let mut balanced = EnsembleModel::new();
    balanced.push(good_net.clone(), 1.0, "good");
    balanced.push(bad_net.clone(), 1.0, "bad");
    let mut weighted = EnsembleModel::new();
    weighted.push(good_net, 3.0, "good");
    weighted.push(bad_net, 0.1, "bad");

    let acc_balanced = balanced.accuracy(&e.data.test).unwrap();
    let acc_weighted = weighted.accuracy(&e.data.test).unwrap();
    assert!(
        acc_weighted >= acc_balanced,
        "upweighting the good member lowered accuracy: {acc_weighted} < {acc_balanced}"
    );
}

#[test]
fn single_model_equals_one_member_snapshot() {
    // a Snapshot with one cycle and a SingleModel with the same budget and
    // schedule family should produce comparably accurate models
    let e = env(85);
    let s1 = SingleModel::new(8).run(&e).unwrap();
    let s2 = Snapshot::new(1, 8).run(&e).unwrap();
    let a1 = s1.trace.last().unwrap().test_accuracy;
    let a2 = s2.trace.last().unwrap().test_accuracy;
    assert!(
        (a1 - a2).abs() < 0.2,
        "single {a1} vs 1-cycle snapshot {a2}"
    );
}

#[test]
fn config_types_are_serde_serializable() {
    // serde is in the sanctioned dependency set so downstream users can
    // persist experiment configs with the format crate of their choice;
    // this pins the trait impls at compile time.
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<Edde>();
    assert_serde::<TransferMode>();
    assert_serde::<edde_data::synth::SynthImagesConfig>();
    assert_serde::<edde_data::synth::SynthTextConfig>();
    assert_serde::<edde_data::augment::AugmentConfig>();
    assert_serde::<edde_nn::models::ResNetConfig>();
    assert_serde::<edde_nn::models::DenseNetConfig>();
    assert_serde::<edde_nn::models::TextCnnConfig>();
    assert_serde::<edde_nn::optim::LrSchedule>();
}
