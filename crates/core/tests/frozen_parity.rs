//! The frozen inference engine's determinism contract: the immutable
//! serving path ([`FrozenEnsemble`]) is bit-identical to the mutable
//! training-stack path, at every thread count, on every SIMD backend, for
//! any eval batch size — and its `EEB1` bundles round-trip bit-exactly
//! while torn or corrupted bundles are rejected.

use edde_core::recovery::{FaultPlan, FaultyStore};
use edde_core::runstate::{MemberRecord, RunSession};
use edde_core::{EnsembleModel, FrozenEnsemble};
use edde_data::Dataset;
use edde_nn::checkpoint::{CheckpointStore, MemStore};
use edde_nn::infer::InferCtx;
use edde_nn::models::mlp;
use edde_nn::{Mode, Network};
use edde_tensor::parallel::set_num_threads;
use edde_tensor::rng::rand_uniform;
use edde_tensor::simd::force_scalar_scope;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests that touch process-global state (thread override, SIMD
/// backend override, `EDDE_EVAL_BATCH`).
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn member(seed: u64) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[6, 16, 4], 0.0, &mut r)
}

fn builder(_arch: &str, _classes: usize) -> edde_core::Result<Network> {
    Ok(member(1000))
}

fn ensemble() -> EnsembleModel {
    let mut ens = EnsembleModel::new();
    ens.push(member(1), 1.3, "a");
    ens.push(member(2), 0.8, "b");
    ens.push(member(3), 2.1, "c");
    ens
}

fn features(n: usize) -> Tensor {
    let mut r = StdRng::seed_from_u64(77);
    rand_uniform(&[n, 6], -1.0, 1.0, &mut r)
}

fn dataset(n: usize) -> Dataset {
    let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
    Dataset::new(features(n), labels, 4).unwrap()
}

#[test]
fn frozen_matches_mutable_across_threads_and_backends() {
    let _g = global_guard();
    let ens = ensemble();
    let frozen = ens.freeze();
    let x = features(37);
    let mut reference: Option<(Vec<f32>, Vec<f32>, Vec<usize>)> = None;
    for scalar in [false, true] {
        // RAII scope: unwinds on panic, so no later test inherits a
        // forced backend.
        let _scope = scalar.then(force_scalar_scope);
        for threads in [1usize, 8] {
            set_num_threads(threads);
            let soft = ens.soft_targets(&x).unwrap();
            let prefix = ens.soft_targets_prefix(&x, 2).unwrap();
            let pred = ens.predict(&x).unwrap();
            let f_soft = frozen.soft_targets(&x).unwrap();
            let f_prefix = frozen.soft_targets_prefix(&x, 2).unwrap();
            let f_pred = frozen.predict(&x).unwrap();
            assert_eq!(
                soft.data(),
                f_soft.data(),
                "soft_targets (scalar={scalar}, threads={threads})"
            );
            assert_eq!(
                prefix.data(),
                f_prefix.data(),
                "soft_targets_prefix (scalar={scalar}, threads={threads})"
            );
            assert_eq!(pred, f_pred, "predict (scalar={scalar}, threads={threads})");
            // every (backend, threads) configuration agrees bitwise
            match &reference {
                None => {
                    reference = Some((soft.data().to_vec(), prefix.data().to_vec(), pred));
                }
                Some((s, p, hard)) => {
                    assert_eq!(soft.data(), &s[..], "scalar={scalar}, threads={threads}");
                    assert_eq!(prefix.data(), &p[..], "scalar={scalar}, threads={threads}");
                    assert_eq!(&pred, hard, "scalar={scalar}, threads={threads}");
                }
            }
        }
    }
    set_num_threads(0);
}

#[test]
fn eval_batch_size_never_changes_results() {
    let _g = global_guard();
    let ens = ensemble();
    let x = features(300);
    std::env::remove_var("EDDE_EVAL_BATCH");
    let reference = ens.soft_targets(&x).unwrap();
    for batch in ["1", "7", "64", "299", "300", "1000"] {
        std::env::set_var("EDDE_EVAL_BATCH", batch);
        let got = ens.soft_targets(&x).unwrap();
        assert_eq!(got.data(), reference.data(), "EDDE_EVAL_BATCH={batch}");
    }
    // junk values fall back to the default
    for junk in ["0", "-3", "many"] {
        std::env::set_var("EDDE_EVAL_BATCH", junk);
        assert_eq!(edde_core::eval_batch(), 256, "EDDE_EVAL_BATCH={junk}");
    }
    std::env::remove_var("EDDE_EVAL_BATCH");
}

#[test]
fn steady_state_inference_allocates_nothing_fresh() {
    let net = member(5);
    let x = features(64);
    let mut ctx = InferCtx::new();
    // warm-up pass populates the pool
    edde_core::network_soft_targets_tau(&net, &x, 1.0, &mut ctx).unwrap();
    let after_warmup = ctx.fresh_allocs();
    for _ in 0..3 {
        edde_core::network_soft_targets_tau(&net, &x, 1.0, &mut ctx).unwrap();
    }
    assert_eq!(
        ctx.fresh_allocs(),
        after_warmup,
        "steady-state passes must be served entirely from the scratch pool"
    );
}

#[test]
fn shared_frozen_ensemble_serves_concurrently() {
    let frozen = Arc::new(ensemble().freeze());
    let x = features(23);
    let expect = frozen.soft_targets(&x).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let f = Arc::clone(&frozen);
            let x = x.clone();
            let expect = expect.data().to_vec();
            std::thread::spawn(move || {
                for _ in 0..3 {
                    assert_eq!(f.soft_targets(&x).unwrap().data(), &expect[..]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn bundle_round_trips_through_a_store() {
    let ens = ensemble();
    let frozen = ens.freeze();
    let store = MemStore::new();
    frozen.save_bundle(&store, "serve/bundle").unwrap();
    let back = FrozenEnsemble::load_bundle(&store, "serve/bundle", &builder).unwrap();
    assert_eq!(back.len(), 3);
    for (a, b) in back.members().iter().zip(frozen.members()) {
        assert_eq!(a.label(), b.label());
        assert_eq!(a.alpha(), b.alpha());
    }
    let x = features(11);
    assert_eq!(
        back.soft_targets(&x).unwrap().data(),
        ens.soft_targets(&x).unwrap().data(),
        "a reloaded bundle serves bit-identically to the trained model"
    );
}

#[test]
fn torn_bundle_write_fails_loudly() {
    let frozen = ensemble().freeze();
    let store = FaultyStore::new(MemStore::new(), FaultPlan::fail_put(0));
    assert!(frozen.save_bundle(&store, "bundle").is_err());
    // nothing half-written: the key must not resolve to a readable bundle
    let inner = store.into_inner();
    assert!(FrozenEnsemble::load_bundle(&inner, "bundle", &builder).is_err());
}

#[test]
fn corrupted_or_truncated_bundle_is_rejected() {
    let frozen = ensemble().freeze();
    let store = MemStore::new();
    frozen.save_bundle(&store, "bundle").unwrap();
    let sealed = store.get("bundle").unwrap();
    // flip one payload bit
    let mut flipped = sealed.to_vec();
    let idx = flipped.len() - 9;
    flipped[idx] ^= 0x01;
    store.put("bundle", &flipped).unwrap();
    let err = FrozenEnsemble::load_bundle(&store, "bundle", &builder).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
    // truncate the sealed frame at several points
    for cut in [0, 7, sealed.len() / 3, sealed.len() - 1] {
        store.put("bundle", &sealed[..cut]).unwrap();
        assert!(
            FrozenEnsemble::load_bundle(&store, "bundle", &builder).is_err(),
            "cut {cut}"
        );
    }
}

#[test]
fn finished_run_freezes_from_its_checkpoint_store() {
    let store = MemStore::new();
    let mut nets: Vec<Network> = (0..2).map(|i| member(50 + i)).collect();
    {
        let mut sess = RunSession::open(&store, "Bagging", 123).unwrap();
        for (t, net) in nets.iter_mut().enumerate() {
            sess.record_member(
                MemberRecord {
                    label: format!("bagging-{t}"),
                    alpha: 1.0,
                    seed: t as u64,
                    net_key: String::new(),
                    cumulative_epochs: 4,
                    test_accuracy: 0.5,
                    weights: vec![],
                },
                net,
            )
            .unwrap();
        }
    }
    // a fresh process: only the store and an architecture builder
    let sess = RunSession::open(&store, "Bagging", 123).unwrap();
    assert_eq!(sess.completed(), 2);
    let frozen = FrozenEnsemble::freeze_run(&sess, &mut || Ok(member(999))).unwrap();
    assert_eq!(frozen.len(), 2);
    assert_eq!(frozen.members()[0].label(), "bagging-0");
    // serves exactly what the recorded networks compute
    let x = features(9);
    let mut expect = EnsembleModel::new();
    for (t, net) in nets.into_iter().enumerate() {
        expect.push(net, 1.0, format!("bagging-{t}"));
    }
    assert_eq!(
        frozen.soft_targets(&x).unwrap().data(),
        expect.soft_targets(&x).unwrap().data()
    );
    let d = dataset(9);
    assert!((0.0..=1.0).contains(&frozen.accuracy(&d).unwrap()));
}

#[test]
fn frozen_accuracy_paths_match_mutable() {
    let ens = ensemble();
    let frozen = ens.freeze();
    let d = dataset(41);
    assert_eq!(frozen.accuracy(&d).unwrap(), ens.accuracy(&d).unwrap());
    assert_eq!(
        frozen.accuracy_prefix(&d, 2).unwrap(),
        ens.accuracy_prefix(&d, 2).unwrap()
    );
    assert_eq!(
        frozen.average_member_accuracy(&d).unwrap(),
        ens.average_member_accuracy(&d).unwrap()
    );
    let fm = frozen.member_soft_targets(d.features()).unwrap();
    let mm = ens.member_soft_targets(d.features()).unwrap();
    for (a, b) in fm.iter().zip(&mm) {
        assert_eq!(a.data(), b.data());
    }
}

#[test]
fn pure_forward_matches_train_forward_eval() {
    // the engine's member pass is the pure path; the training stack's
    // predict_proba rides train_forward — both must agree bitwise
    let mut net = member(9);
    let x = features(19);
    let mut ctx = InferCtx::new();
    let pure = net.forward(&x, &mut ctx).unwrap();
    let cached = net.train_forward(&x, Mode::Eval).unwrap();
    assert_eq!(pure.data(), cached.data());
}
