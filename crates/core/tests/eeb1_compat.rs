//! Legacy `EEB1` compatibility: the checked-in fixture written by a v1
//! writer must keep loading bit-identically forever, even as the current
//! writer moved to `EEB2`.
//!
//! The fixture ensemble is fully deterministic — every parameter is
//! overwritten with a closed-form fill, so regeneration does not depend
//! on any RNG implementation. To regenerate after an intentional format
//! change (there should never be one for v1):
//!
//! ```text
//! cargo test -p edde-core --test eeb1_compat -- --ignored regenerate
//! ```

use edde_core::{FrozenEnsemble, Result};
use edde_nn::checkpoint::{self, CheckpointStore, MemStore};
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/two_member_mlp.eeb1")
}

/// A 4→8→3 MLP whose every parameter is a deterministic closed-form
/// value — no RNG anywhere, so the fixture is reproducible from source.
fn deterministic_member(tag: u64) -> Network {
    let mut r = StdRng::seed_from_u64(0);
    let mut net = mlp(&[4, 8, 3], 0.0, &mut r);
    let state: Vec<(String, Tensor)> = net
        .export_state()
        .iter()
        .enumerate()
        .map(|(ei, (name, t))| {
            let fill: Vec<f32> = (0..t.data().len())
                .map(|j| {
                    let k = (tag * 131 + ei as u64 * 37 + j as u64 * 11) % 19;
                    (k as f32 - 9.0) * 0.1
                })
                .collect();
            (name.clone(), Tensor::from_vec(fill, t.dims()).unwrap())
        })
        .collect();
    net.import_state(&state).unwrap();
    net
}

fn fixture_ensemble() -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    f.push(Arc::new(deterministic_member(1)), 1.25, "legacy-a");
    f.push(Arc::new(deterministic_member(2)), 0.75, "legacy-b");
    f
}

fn build(_: &str, _: usize) -> Result<Network> {
    let mut r = StdRng::seed_from_u64(99);
    Ok(mlp(&[4, 8, 3], 0.0, &mut r))
}

#[test]
fn checked_in_eeb1_fixture_loads_bit_identically() {
    let sealed = std::fs::read(fixture_path())
        .expect("fixture missing: run the ignored `regenerate` test once");
    let store = MemStore::new();
    store.put("bundle", &sealed).unwrap();

    let loaded = FrozenEnsemble::load_bundle(&store, "bundle", &build).unwrap();
    assert_eq!(loaded.len(), 2);
    assert_eq!(loaded.members()[0].label(), "legacy-a");
    assert_eq!(loaded.members()[0].alpha(), 1.25);
    assert_eq!(loaded.members()[1].label(), "legacy-b");
    assert_eq!(loaded.members()[1].alpha(), 0.75);
    assert!(loaded.members().iter().all(|m| !m.is_quantized()));

    // the loaded ensemble reproduces the deterministic reference bit for
    // bit on a probe batch
    let reference = fixture_ensemble();
    let x = Tensor::from_vec(
        (0..6 * 4).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect(),
        &[6, 4],
    )
    .unwrap();
    assert_eq!(
        loaded.soft_targets(&x).unwrap().data(),
        reference.soft_targets(&x).unwrap().data()
    );

    // a v1 re-encode of the loaded ensemble reproduces the fixture
    // payload byte for byte — nothing was lost or renormalized in flight
    let payload = checkpoint::unseal(bytes::Bytes::from(sealed)).unwrap();
    assert_eq!(&payload[0..4], b"EEB1");
    assert_eq!(loaded.encode_v1().unwrap(), payload);

    // the shared 12-byte header peeks without decoding members
    assert_eq!(FrozenEnsemble::peek_member_count(&payload).unwrap(), 2);
}

#[test]
fn current_writer_matches_the_fixture_writer_byte_for_byte() {
    // guards the v1 writer itself: if encode_v1 drifts, the fixture test
    // above would "fail" for the wrong reason
    let sealed = std::fs::read(fixture_path())
        .expect("fixture missing: run the ignored `regenerate` test once");
    let payload = checkpoint::unseal(bytes::Bytes::from(sealed)).unwrap();
    assert_eq!(fixture_ensemble().encode_v1().unwrap(), payload);
}

#[test]
#[ignore = "writes the checked-in fixture; run once after an intentional v1 format change"]
fn regenerate() {
    let sealed = checkpoint::seal(&fixture_ensemble().encode_v1().unwrap());
    std::fs::write(fixture_path(), &sealed).unwrap();
    eprintln!("wrote {} bytes to {:?}", sealed.len(), fixture_path());
}
