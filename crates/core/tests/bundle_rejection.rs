//! Bundle rejection matrix: every way a serving bundle (`EEB2`, or
//! legacy `EEB1`) can be bad on load maps to a distinct typed error, so
//! hot-swap infrastructure can react to the cause instead of
//! string-matching. A valid frame with a bad payload is a
//! [`BundleError`]; a torn frame never reaches the payload parser — the
//! CRC seal rejects it first. Damage *inside* a per-tensor codec stream
//! (bit-flips in compressed bytes, truncated stage headers, unknown
//! stage ids, unusable int8 scales) surfaces as
//! [`BundleError::Codec`] naming the tensor and the stage that refused
//! it — never a panic.

use edde_core::{BundleCodec, BundleError, EnsembleError, FrozenEnsemble, Result};
use edde_nn::checkpoint::{self, CheckpointStore, MemStore};
use edde_nn::models::mlp;
use edde_nn::Network;
use edde_tensor::codec::{CodecError, STAGE_INT8};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn member(seed: u64, classes: usize) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[4, 8, classes], 0.0, &mut r)
}

fn ensemble() -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    f.push(Arc::new(member(1, 3)), 1.0, "a");
    f.push(Arc::new(member(2, 3)), 0.5, "b");
    f
}

fn build_ok(_: &str, _: usize) -> Result<Network> {
    Ok(member(99, 3))
}

/// Seals `payload` into a valid CRC frame and loads it, returning the
/// typed rejection.
fn load_sealed(payload: &[u8], build: &dyn Fn(&str, usize) -> Result<Network>) -> EnsembleError {
    let store = MemStore::new();
    store.put("bundle", &checkpoint::seal(payload)).unwrap();
    FrozenEnsemble::load_bundle(&store, "bundle", build).unwrap_err()
}

/// Walks an `EEB2` payload to the first member's first entry and returns
/// `(coded_len_field_offset, stream_start, stream_end)` — the codec
/// stream the per-stage corruption tests operate on.
fn first_entry_stream(payload: &[u8]) -> (usize, usize, usize) {
    let u32at = |o: usize| u32::from_le_bytes(payload[o..o + 4].try_into().unwrap()) as usize;
    let u64at = |o: usize| u64::from_le_bytes(payload[o..o + 8].try_into().unwrap()) as usize;
    assert_eq!(&payload[0..4], b"EEB2");
    let mut o = 12; // magic + version + member count
    o += 4 + u32at(o); // member label
    o += 4; // alpha
    o += 4 + u32at(o); // arch tag
    o += 8; // num_classes + entry count
    o += 4 + u32at(o); // entry name
    let rank = u32at(o);
    o += 4 + 8 * rank;
    let len_off = o;
    let coded_len = u64at(o);
    (len_off, len_off + 8, len_off + 8 + coded_len)
}

/// An int8+compressed payload whose first entry is an int8 weight stream
/// (stage layout: `count=3; int8 hdr (scale at +7..+11); dbp hdr; lz
/// hdr; payload_len; payload`).
fn int8_payload() -> Vec<u8> {
    let payload = ensemble()
        .encode_with(&BundleCodec::int8())
        .unwrap()
        .to_vec();
    let (_, start, _) = first_entry_stream(&payload);
    let id = u16::from_le_bytes(payload[start + 1..start + 3].try_into().unwrap());
    assert_eq!(id, STAGE_INT8, "first entry must be an int8 weight matrix");
    payload
}

#[test]
fn wrong_magic_is_a_typed_bad_magic() {
    let mut payload = ensemble().encode().to_vec();
    payload[0] = b'X';
    match load_sealed(&payload, &build_ok) {
        EnsembleError::Bundle(BundleError::BadMagic(magic)) => {
            assert_eq!(&magic, b"XEB2");
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn stale_version_is_a_typed_unsupported_version() {
    let mut payload = ensemble().encode().to_vec();
    payload[4..8].copy_from_slice(&99u32.to_le_bytes());
    match load_sealed(&payload, &build_ok) {
        EnsembleError::Bundle(BundleError::UnsupportedVersion(v)) => assert_eq!(v, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // ... including a v1 payload claiming a version this reader never
    // shipped under that magic
    let mut v1 = ensemble().encode_v1().unwrap().to_vec();
    v1[4..8].copy_from_slice(&7u32.to_le_bytes());
    match load_sealed(&v1, &build_ok) {
        EnsembleError::Bundle(BundleError::UnsupportedVersion(v)) => assert_eq!(v, 7),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_payload_is_a_typed_truncation_at_every_cut() {
    let payload = ensemble().encode();
    for cut in [0, 5, 11, 13, 20, payload.len() / 2, payload.len() - 1] {
        match load_sealed(&payload[..cut], &build_ok) {
            EnsembleError::Bundle(BundleError::Truncated(_)) => {}
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn builder_class_count_mismatch_is_a_typed_arch_mismatch() {
    let payload = ensemble().encode();
    match load_sealed(&payload, &|_, _| Ok(member(0, 2))) {
        EnsembleError::Bundle(BundleError::ArchMismatch { expected, got, .. }) => {
            assert_eq!(expected, 3);
            assert_eq!(got, 2);
        }
        other => panic!("expected ArchMismatch, got {other:?}"),
    }
}

#[test]
fn torn_frame_is_rejected_by_the_seal_not_the_parser() {
    let store = MemStore::new();
    ensemble().save_bundle(&store, "bundle").unwrap();
    let mut raw = store.get("bundle").unwrap().to_vec();
    let idx = raw.len() / 2;
    raw[idx] ^= 0x01;
    store.put("bundle", &raw).unwrap();
    let err = FrozenEnsemble::load_bundle(&store, "bundle", &build_ok).unwrap_err();
    // CRC failure is a frame-level error, not a BundleError: the payload
    // parser never runs on torn bytes.
    assert!(
        !matches!(err, EnsembleError::Bundle(_)),
        "torn frame must be rejected by the seal, got {err:?}"
    );
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn bit_flip_inside_a_compressed_payload_is_a_typed_codec_rejection() {
    let mut payload = int8_payload();
    let (_, start, _) = first_entry_stream(&payload);
    // First byte of the LZ payload (after the 39-byte stage headers and
    // the 8-byte payload length): a control byte, so the flip scrambles
    // the match/literal framing rather than one weight value.
    payload[start + 47] ^= 0x55;
    match load_sealed(&payload, &build_ok) {
        EnsembleError::Bundle(BundleError::Codec { tensor, error, .. }) => {
            assert_eq!(tensor, "fc0.weight");
            // the scrambled framing trips either the consistency check or
            // the end-of-stream bound — both typed, never a panic
            assert!(
                matches!(error, CodecError::Corrupt { .. } | CodecError::Truncated(_)),
                "expected Corrupt/Truncated, got {error:?}"
            );
        }
        other => panic!("expected Codec rejection, got {other:?}"),
    }
}

#[test]
fn truncated_stage_header_is_a_typed_codec_rejection() {
    let payload = int8_payload();
    let (len_off, start, end) = first_entry_stream(&payload);
    // Rebuild the bundle with the first stream cut to 2 bytes: the stage
    // count reads fine, the first stage id cannot.
    let mut hacked = Vec::new();
    hacked.extend_from_slice(&payload[..len_off]);
    hacked.extend_from_slice(&2u64.to_le_bytes());
    hacked.extend_from_slice(&payload[start..start + 2]);
    hacked.extend_from_slice(&payload[end..]);
    match load_sealed(&hacked, &build_ok) {
        EnsembleError::Bundle(BundleError::Codec { tensor, error, .. }) => {
            assert_eq!(tensor, "fc0.weight");
            assert!(
                matches!(error, CodecError::Truncated(_)),
                "expected Truncated, got {error:?}"
            );
        }
        other => panic!("expected Codec rejection, got {other:?}"),
    }
}

#[test]
fn unknown_codec_id_is_a_typed_codec_rejection() {
    let mut payload = int8_payload();
    let (_, start, _) = first_entry_stream(&payload);
    payload[start + 1..start + 3].copy_from_slice(&0x7777u16.to_le_bytes());
    match load_sealed(&payload, &build_ok) {
        EnsembleError::Bundle(BundleError::Codec { stage, error, .. }) => {
            assert_eq!(stage, "header");
            assert_eq!(error, CodecError::UnknownId(0x7777));
        }
        other => panic!("expected Codec rejection, got {other:?}"),
    }
}

#[test]
fn zero_or_nan_int8_scale_is_a_typed_codec_rejection() {
    for bad in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
        let mut payload = int8_payload();
        let (_, start, _) = first_entry_stream(&payload);
        // int8 stage params: the f32 scale at stream offset +7..+11.
        payload[start + 7..start + 11].copy_from_slice(&bad.to_le_bytes());
        match load_sealed(&payload, &build_ok) {
            EnsembleError::Bundle(BundleError::Codec { stage, error, .. }) => {
                assert_eq!(stage, "int8", "scale {bad}");
                assert!(
                    matches!(error, CodecError::BadScale(_)),
                    "scale {bad}: expected BadScale, got {error:?}"
                );
            }
            other => panic!("scale {bad}: expected Codec rejection, got {other:?}"),
        }
    }
}

#[test]
fn rejection_causes_are_mutually_distinct() {
    let payload = ensemble().encode();
    let mut bad_magic = payload.to_vec();
    bad_magic[0] = b'X';
    let mut bad_version = payload.to_vec();
    bad_version[4..8].copy_from_slice(&7u32.to_le_bytes());
    let q = int8_payload();
    let (_, start, _) = first_entry_stream(&q);
    let mut unknown_id = q.clone();
    unknown_id[start + 1..start + 3].copy_from_slice(&0x7777u16.to_le_bytes());
    let mut zero_scale = q.clone();
    zero_scale[start + 7..start + 11].copy_from_slice(&0.0f32.to_le_bytes());
    let errors = [
        load_sealed(&bad_magic, &build_ok),
        load_sealed(&bad_version, &build_ok),
        load_sealed(&payload[..payload.len() - 1], &build_ok),
        load_sealed(&payload, &|_, _| Ok(member(0, 2))),
        load_sealed(&unknown_id, &build_ok),
        load_sealed(&zero_scale, &build_ok),
    ];
    for (i, a) in errors.iter().enumerate() {
        assert!(matches!(a, EnsembleError::Bundle(_)), "{a:?}");
        for b in errors.iter().skip(i + 1) {
            assert_ne!(a, b, "two rejection paths collided on one error");
        }
    }
}

#[test]
fn validate_swap_rejects_structural_changes_and_empty_candidates() {
    let live = ensemble();
    let err = live.validate_swap(&FrozenEnsemble::new()).unwrap_err();
    assert_eq!(err, EnsembleError::EmptyEnsemble);

    // wrong member count: rejected before the class-count comparison
    let mut fewer = FrozenEnsemble::new();
    fewer.push(Arc::new(member(5, 3)), 1.0, "c");
    match live.validate_swap(&fewer).unwrap_err() {
        EnsembleError::Bundle(BundleError::MemberCountMismatch { expected, got }) => {
            assert_eq!((expected, got), (2, 1));
        }
        other => panic!("expected MemberCountMismatch, got {other:?}"),
    }

    // right member count, wrong class count
    let mut narrower = FrozenEnsemble::new();
    narrower.push(Arc::new(member(5, 2)), 1.0, "c");
    narrower.push(Arc::new(member(6, 2)), 1.0, "d");
    match live.validate_swap(&narrower).unwrap_err() {
        EnsembleError::Bundle(BundleError::ArchMismatch { expected, got, .. }) => {
            assert_eq!((expected, got), (3, 2));
        }
        other => panic!("expected ArchMismatch, got {other:?}"),
    }

    // compatible candidate passes; empty live accepts anything non-empty
    assert!(live.validate_swap(&ensemble()).is_ok());
    assert!(FrozenEnsemble::new().validate_swap(&fewer).is_ok());
    assert_eq!(live.num_classes(), Some(3));
    assert_eq!(live.arch_signature().len(), 2);
}
