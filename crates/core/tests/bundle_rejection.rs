//! `EEB1` bundle rejection matrix: every way a serving bundle can be bad
//! on load maps to a distinct typed error, so hot-swap infrastructure can
//! react to the cause instead of string-matching. A valid frame with a
//! bad payload is a [`BundleError`]; a torn frame never reaches the
//! payload parser — the CRC seal rejects it first.

use edde_core::{BundleError, EnsembleError, FrozenEnsemble, Result};
use edde_nn::checkpoint::{self, CheckpointStore, MemStore};
use edde_nn::models::mlp;
use edde_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn member(seed: u64, classes: usize) -> Network {
    let mut r = StdRng::seed_from_u64(seed);
    mlp(&[4, 8, classes], 0.0, &mut r)
}

fn ensemble() -> FrozenEnsemble {
    let mut f = FrozenEnsemble::new();
    f.push(Arc::new(member(1, 3)), 1.0, "a");
    f.push(Arc::new(member(2, 3)), 0.5, "b");
    f
}

fn build_ok(_: &str, _: usize) -> Result<Network> {
    Ok(member(99, 3))
}

/// Seals `payload` into a valid CRC frame and loads it, returning the
/// typed rejection.
fn load_sealed(payload: &[u8], build: &dyn Fn(&str, usize) -> Result<Network>) -> EnsembleError {
    let store = MemStore::new();
    store.put("bundle", &checkpoint::seal(payload)).unwrap();
    FrozenEnsemble::load_bundle(&store, "bundle", build).unwrap_err()
}

#[test]
fn wrong_magic_is_a_typed_bad_magic() {
    let mut payload = ensemble().encode().to_vec();
    payload[0] = b'X';
    match load_sealed(&payload, &build_ok) {
        EnsembleError::Bundle(BundleError::BadMagic(magic)) => {
            assert_eq!(&magic, b"XEB1");
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn stale_version_is_a_typed_unsupported_version() {
    let mut payload = ensemble().encode().to_vec();
    payload[4..8].copy_from_slice(&99u32.to_le_bytes());
    match load_sealed(&payload, &build_ok) {
        EnsembleError::Bundle(BundleError::UnsupportedVersion(v)) => assert_eq!(v, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_payload_is_a_typed_truncation_at_every_cut() {
    let payload = ensemble().encode();
    for cut in [0, 5, 11, 13, 20, payload.len() / 2, payload.len() - 1] {
        match load_sealed(&payload[..cut], &build_ok) {
            EnsembleError::Bundle(BundleError::Truncated(_)) => {}
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn builder_class_count_mismatch_is_a_typed_arch_mismatch() {
    let payload = ensemble().encode();
    match load_sealed(&payload, &|_, _| Ok(member(0, 2))) {
        EnsembleError::Bundle(BundleError::ArchMismatch { expected, got, .. }) => {
            assert_eq!(expected, 3);
            assert_eq!(got, 2);
        }
        other => panic!("expected ArchMismatch, got {other:?}"),
    }
}

#[test]
fn torn_frame_is_rejected_by_the_seal_not_the_parser() {
    let store = MemStore::new();
    ensemble().save_bundle(&store, "bundle").unwrap();
    let mut raw = store.get("bundle").unwrap().to_vec();
    let idx = raw.len() / 2;
    raw[idx] ^= 0x01;
    store.put("bundle", &raw).unwrap();
    let err = FrozenEnsemble::load_bundle(&store, "bundle", &build_ok).unwrap_err();
    // CRC failure is a frame-level error, not a BundleError: the payload
    // parser never runs on torn bytes.
    assert!(
        !matches!(err, EnsembleError::Bundle(_)),
        "torn frame must be rejected by the seal, got {err:?}"
    );
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn rejection_causes_are_mutually_distinct() {
    let payload = ensemble().encode();
    let mut bad_magic = payload.to_vec();
    bad_magic[0] = b'X';
    let mut bad_version = payload.to_vec();
    bad_version[4..8].copy_from_slice(&2u32.to_le_bytes());
    let errors = [
        load_sealed(&bad_magic, &build_ok),
        load_sealed(&bad_version, &build_ok),
        load_sealed(&payload[..payload.len() - 1], &build_ok),
        load_sealed(&payload, &|_, _| Ok(member(0, 2))),
    ];
    for (i, a) in errors.iter().enumerate() {
        assert!(matches!(a, EnsembleError::Bundle(_)), "{a:?}");
        for b in errors.iter().skip(i + 1) {
            assert_ne!(a, b, "two rejection paths collided on one error");
        }
    }
}

#[test]
fn validate_swap_rejects_class_count_changes_and_empty_candidates() {
    let live = ensemble();
    let err = live.validate_swap(&FrozenEnsemble::new()).unwrap_err();
    assert_eq!(err, EnsembleError::EmptyEnsemble);

    let mut narrower = FrozenEnsemble::new();
    narrower.push(Arc::new(member(5, 2)), 1.0, "c");
    match live.validate_swap(&narrower).unwrap_err() {
        EnsembleError::Bundle(BundleError::ArchMismatch { expected, got, .. }) => {
            assert_eq!((expected, got), (3, 2));
        }
        other => panic!("expected ArchMismatch, got {other:?}"),
    }

    // compatible candidate passes; empty live accepts anything non-empty
    assert!(live.validate_swap(&ensemble()).is_ok());
    assert!(FrozenEnsemble::new().validate_swap(&narrower).is_ok());
    assert_eq!(live.num_classes(), Some(3));
    assert_eq!(live.arch_signature().len(), 2);
}
