//! Bit-identity of concurrent member training.
//!
//! Bagging members are data-independent and train on per-member derived
//! RNG streams, so training them concurrently on the tensor pool must
//! produce the exact ensemble a sequential loop does — the weights, the
//! trace, and the resumable checkpoints. These tests pin that equivalence
//! at 1 and 8 threads, and the run/run_resumable unification it enables.

use edde_core::methods::{Bagging, EnsembleMethod};
use edde_core::{ExperimentEnv, FaultPlan, ModelFactory, RecoveryPolicy, Trainer};
use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
use edde_nn::checkpoint::{CheckpointStore, MemStore};
use edde_nn::models::mlp;
use edde_tensor::parallel::set_num_threads;
use edde_tensor::Tensor;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests in this file: they set the global thread override.
fn thread_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        set_num_threads(0);
    }
}

fn blob_env(seed: u64) -> ExperimentEnv {
    let data = gaussian_blobs(
        &GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 30,
            test_per_class: 15,
            spread: 0.8,
        },
        seed,
    );
    let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 16, 3], 0.0, r)));
    ExperimentEnv::new(
        data,
        factory,
        Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        },
        0.1,
        seed,
    )
}

/// Per-member probability bit patterns — the strongest practical weight
/// fingerprint (distinct weights would almost surely produce distinct
/// member outputs, and identical forward passes are what the ensemble
/// actually consumes).
fn member_bits(run: &mut edde_core::methods::RunResult, x: &Tensor) -> Vec<Vec<u32>> {
    run.model
        .member_soft_targets(x)
        .unwrap()
        .iter()
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn parallel_members_match_sequential_bitwise_at_1_and_8_threads() {
    let _g = thread_guard();
    let _restore = RestoreThreads;
    let env = blob_env(31);
    let x = env.data.test.features().clone();

    set_num_threads(1);
    let mut seq = Bagging::new(4, 3).sequential().run(&env).unwrap();
    let reference = member_bits(&mut seq, &x);

    for threads in [1usize, 8] {
        set_num_threads(threads);
        let mut par = Bagging::new(4, 3).run(&env).unwrap();
        assert_eq!(
            member_bits(&mut par, &x),
            reference,
            "parallel members at {threads} threads diverged from sequential"
        );
        assert_eq!(par.trace, seq.trace, "trace diverged at {threads} threads");
        assert_eq!(par.total_epochs, seq.total_epochs);
    }
}

#[test]
fn plain_run_and_resumable_run_build_the_same_ensemble() {
    // Bagging uses per-member streams in both modes now, so the
    // checkpointed path must reproduce the plain one bit for bit.
    let _g = thread_guard();
    let _restore = RestoreThreads;
    set_num_threads(8);
    let env = blob_env(32);
    let x = env.data.test.features().clone();
    let mut plain = Bagging::new(3, 3).run(&env).unwrap();
    let store = MemStore::new();
    let mut resumable = Bagging::new(3, 3).run_resumable(&env, &store).unwrap();
    assert_eq!(member_bits(&mut plain, &x), member_bits(&mut resumable, &x));
    assert_eq!(plain.trace, resumable.trace);
}

#[test]
fn parallel_run_resumes_a_killed_sequential_prefix_bitwise() {
    // A checkpoint prefix written by a sequential run (fault injection
    // forces the sequential path) must resume and finish identically under
    // the parallel path: fingerprints exclude the execution knob, and
    // member streams are order-free.
    let _g = thread_guard();
    let _restore = RestoreThreads;
    set_num_threads(8);
    let env = blob_env(33);
    let x = env.data.test.features().clone();

    // Reference: an uninterrupted parallel resumable run.
    let full_store = MemStore::new();
    let mut full = Bagging::new(3, 2).run_resumable(&env, &full_store).unwrap();

    // "Kill" a run mid-member-2: 90 bootstrap samples at batch 16 are
    // 6 steps per epoch, 12 per member; a NaN at global step 14 with
    // recovery disabled aborts after member 1 was persisted.
    let store = MemStore::new();
    let mut dying = env.clone();
    dying.trainer.recovery = RecoveryPolicy::disabled();
    dying.trainer.fault = Some(FaultPlan::nan_loss_at_step(14));
    Bagging::new(3, 2)
        .run_resumable(&dying, &store)
        .unwrap_err();
    assert!(store.contains("member-0"), "member 1 should have survived");
    assert!(!store.contains("member-1"), "member 2 must not be recorded");

    // Resume on the parallel path: the prefix restores, members 2..3
    // train concurrently, and the ensemble matches the reference bitwise.
    let mut resumed = Bagging::new(3, 2).run_resumable(&env, &store).unwrap();
    assert_eq!(member_bits(&mut resumed, &x), member_bits(&mut full, &x));
    assert_eq!(resumed.trace, full.trace);
}
