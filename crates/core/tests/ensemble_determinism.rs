//! Bitwise determinism of ensemble inference across thread counts.
//!
//! Member inference fans out over the tensor pool but the Eq. 16 α-weighted
//! average is reduced serially in member order, so `soft_targets` (and
//! everything built on it) must be bit-identical at every thread setting.

use edde_core::EnsembleModel;
use edde_nn::models::mlp;
use edde_tensor::parallel::set_num_threads;
use edde_tensor::rng::rand_uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct RestoreDefault;
impl Drop for RestoreDefault {
    fn drop(&mut self) {
        set_num_threads(0);
    }
}

#[test]
fn ensemble_soft_targets_are_bit_identical_across_thread_counts() {
    let mut r = StdRng::seed_from_u64(21);
    let mut model = EnsembleModel::new();
    for (t, alpha) in [1.0f32, 0.6, 1.7, 0.3, 1.1].into_iter().enumerate() {
        let net = mlp(&[12, 16, 5], 0.0, &mut r);
        model.push(net, alpha, format!("m{t}"));
    }
    let x = rand_uniform(&[64, 12], -2.0, 2.0, &mut r);
    let _restore = RestoreDefault;

    set_num_threads(1);
    let serial = model.soft_targets(&x).unwrap();
    let serial_again = model.soft_targets(&x).unwrap();
    assert_eq!(
        serial.data(),
        serial_again.data(),
        "repeated serial calls differ"
    );

    set_num_threads(8);
    let parallel = model.soft_targets(&x).unwrap();
    assert_eq!(serial.data(), parallel.data(), "1 vs 8 threads differ");
    let predictions_serial = {
        set_num_threads(1);
        model.predict(&x).unwrap()
    };
    set_num_threads(8);
    assert_eq!(predictions_serial, model.predict(&x).unwrap());
}
