//! Sharded serving bundles: chunked storage plus lazy member loading.
//!
//! A whole-blob `EEB2` bundle is one sealed value — simple, but a serving
//! process pays for every member up front (full read, full CRC, full
//! decode) even when it only needs one, and a writer pays one durable
//! store round-trip per member. The *sharded* form stores the same
//! member payloads through [`edde_nn::chunkstore`]: a grid of fixed-size
//! chunks per member (each the `EDC2`-sealed slice of a per-tensor codec
//! stream) and one `ESR1` **root record** under the bundle key itself,
//! which embeds every member's `EDS1` index record:
//!
//! ```text
//! ESR1 root record (sealed in an EDC2 frame):
//!   magic        : b"ESR1"
//!   version      : u32 LE (currently 1)
//!   member count : u32 LE
//!   chunk_bytes  : u64 LE
//!   codec tag    : u32 LE length + utf-8 bytes (e.g. "int8+dbp+lz")
//!   per member   : u64 LE length + EDS1 index record bytes (unsealed —
//!                  the root's own frame covers them)
//! ```
//!
//! The root is written **last** and is the only durable put — the group
//! commit. Until it lands, the bundle key does not resolve and a crashed
//! write leaves only orphaned chunks for garbage collection; after it
//! lands, every chunk it transitively references is already in the store.
//!
//! Embedding the indexes (rather than giving each member an index key of
//! its own, as the trainer's per-member progress records do) cuts the
//! store round-trips on both sides: a bundle write is *chunks + one
//! root* — with small parts inlined into their index, one value per
//! weight matrix — and opening a bundle is a single read.
//!
//! Because the sharded writer chunks the *same* per-tensor coded streams
//! ([`crate::frozen::member_coded_entries`]) the `EEB2` writer serializes,
//! a sharded bundle round-trips bit-identically to its whole-blob twin —
//! including int8 members, which are quantized once per tensor, never
//! per chunk.
//!
//! [`FrozenEnsemble::open_sharded`] reads only the root and the index
//! records: enough to validate a hot-swap candidate's member count,
//! classes, and architectures without touching any chunk. The returned
//! [`ShardedEnsemble`] decodes a member's chunks on first use and caches
//! the member behind a `OnceLock` — serving a prediction with the first
//! `k` members costs exactly `k` members' worth of chunk reads.

use crate::error::{BundleError, EnsembleError, Result};
use crate::frozen::{
    alpha_weighted_average, get_str, member_coded_entries, member_from_coded_entries, put_str,
    BundleCodec, FrozenEnsemble, FrozenMember,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edde_nn::checkpoint::{self, CheckpointStore};
use edde_nn::chunkstore::{self, ChunkIndex};
use edde_nn::infer::with_thread_ctx;
use edde_nn::Network;
use edde_tensor::parallel::parallel_map;
use edde_tensor::Tensor;
use std::sync::{Arc, OnceLock};

/// Sharded-bundle root record magic.
const SHARD_MAGIC: &[u8; 4] = b"ESR1";

/// Current root record version.
const SHARD_VERSION: u32 = 1;

/// Builder signature shared with [`FrozenEnsemble::load_bundle`], in the
/// shareable form the lazy loader holds on to.
pub type NetworkBuilder = Arc<dyn Fn(&str, usize) -> Result<Network> + Send + Sync>;

/// The root record of a sharded bundle, embedded member indexes included.
#[derive(Debug, Clone, PartialEq)]
struct ShardRoot {
    chunk_bytes: u64,
    codec_tag: String,
    indexes: Vec<ChunkIndex>,
}

impl ShardRoot {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(SHARD_MAGIC);
        buf.put_u32_le(SHARD_VERSION);
        buf.put_u32_le(self.indexes.len() as u32);
        buf.put_u64_le(self.chunk_bytes);
        put_str(&mut buf, &self.codec_tag);
        for index in &self.indexes {
            let blob = index.encode();
            buf.put_u64_le(blob.len() as u64);
            buf.put_slice(&blob);
        }
        buf.freeze()
    }

    fn decode(mut buf: Bytes) -> Result<Self> {
        if buf.remaining() < 4 + 4 + 4 + 8 {
            return Err(BundleError::Truncated("shard root header").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != SHARD_MAGIC {
            return Err(BundleError::BadMagic(magic).into());
        }
        let version = buf.get_u32_le();
        if version != SHARD_VERSION {
            return Err(BundleError::UnsupportedVersion(version).into());
        }
        let member_count = buf.get_u32_le() as usize;
        let chunk_bytes = buf.get_u64_le();
        if chunk_bytes == 0 {
            return Err(BundleError::Payload("shard root: zero chunk size".into()).into());
        }
        let codec_tag = get_str(&mut buf, "shard root codec tag")?;
        let mut indexes = Vec::with_capacity(member_count.min(1024));
        for t in 0..member_count {
            if buf.remaining() < 8 {
                return Err(BundleError::Truncated("shard root index list").into());
            }
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(BundleError::Truncated("shard root index blob").into());
            }
            let blob = buf.slice(..len);
            buf.advance(len);
            let index = ChunkIndex::decode(blob).map_err(BundleError::Chunk)?;
            if index.member != t {
                return Err(BundleError::Payload(format!(
                    "shard root: index {t} names member {}",
                    index.member
                ))
                .into());
            }
            if index.chunk_bytes != chunk_bytes {
                return Err(BundleError::Payload(format!(
                    "member {t}: index chunk size {} disagrees with root {chunk_bytes}",
                    index.chunk_bytes
                ))
                .into());
            }
            indexes.push(index);
        }
        Ok(ShardRoot {
            chunk_bytes,
            codec_tag,
            indexes,
        })
    }
}

/// The per-member header a sharded bundle stores in its index record's
/// meta blob — everything [`FrozenEnsemble::decode`] reads before the
/// entry list.
#[derive(Debug, Clone, PartialEq)]
struct MemberMeta {
    label: String,
    alpha: f32,
    arch: String,
    num_classes: usize,
}

impl MemberMeta {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        put_str(&mut buf, &self.label);
        buf.put_f32_le(self.alpha);
        put_str(&mut buf, &self.arch);
        buf.put_u32_le(self.num_classes as u32);
        buf.freeze()
    }

    fn decode(mut buf: Bytes) -> Result<Self> {
        let label = get_str(&mut buf, "sharded member label")?;
        if buf.remaining() < 4 {
            return Err(BundleError::Truncated("sharded member weight").into());
        }
        let alpha = buf.get_f32_le();
        let arch = get_str(&mut buf, "sharded member arch tag")?;
        if buf.remaining() < 4 {
            return Err(BundleError::Truncated("sharded member header").into());
        }
        let num_classes = buf.get_u32_le() as usize;
        Ok(MemberMeta {
            label,
            alpha,
            arch,
            num_classes,
        })
    }
}

impl FrozenEnsemble {
    /// Writes the ensemble as a sharded bundle under `key` with the
    /// default exact-f32 codec. See
    /// [`FrozenEnsemble::save_bundle_sharded_with`].
    pub fn save_bundle_sharded(&self, store: &dyn CheckpointStore, key: &str) -> Result<()> {
        self.save_bundle_sharded_with(store, key, &BundleCodec::f32(), true)
    }

    /// Writes the ensemble as a sharded bundle: per member, a chunk grid
    /// (relaxed-durability puts, chunk sealing fanned over the worker
    /// pool when `parallel` is set), then one durable `ESR1` root record
    /// under `key` embedding every member's `EDS1` index — the group
    /// commit. One fsync per bundle instead of one per member; a crash
    /// before the root leaves no readable bundle, only garbage. Parts no
    /// larger than [`chunkstore::inline_threshold`] travel inside their
    /// index record, so a typical member costs one store value per weight
    /// matrix rather than one per tensor.
    ///
    /// The per-tensor coded streams are the same bytes the whole-blob
    /// `EEB2` writer serializes, so loading the sharded bundle yields
    /// bit-identical members to [`FrozenEnsemble::load_bundle`] on the
    /// whole-blob twin. Chunk size comes from `EDDE_CHUNK_BYTES`
    /// (default 64 KiB) and is recorded in the root and every index.
    ///
    /// Sharded bundles should live in a store (directory) of their own:
    /// their chunk keys share the `member-*` namespace a training
    /// session's garbage collector sweeps.
    pub fn save_bundle_sharded_with(
        &self,
        store: &dyn CheckpointStore,
        key: &str,
        codec: &BundleCodec,
        parallel: bool,
    ) -> Result<()> {
        let cb = chunkstore::chunk_bytes();
        let mut indexes = Vec::with_capacity(self.len());
        for (t, m) in self.members().iter().enumerate() {
            let meta = MemberMeta {
                label: m.label().to_string(),
                alpha: m.alpha(),
                arch: m.arch().to_string(),
                num_classes: m.num_classes(),
            };
            let entries = member_coded_entries(m, codec)?;
            indexes.push(chunkstore::write_chunks_only(
                store,
                t,
                &meta.encode(),
                &entries,
                parallel,
                cb,
            )?);
        }
        let root = ShardRoot {
            chunk_bytes: cb as u64,
            codec_tag: codec.tag(),
            indexes,
        };
        store.put(key, &checkpoint::seal(&root.encode()))?;
        Ok(())
    }

    /// Opens a sharded bundle for lazy serving with a single store read:
    /// the `ESR1` root under `key` carries every member's `EDS1` index —
    /// *no chunk is touched*. The returned [`ShardedEnsemble`] knows
    /// every member's label, `α`, architecture, class count, and chunk
    /// layout, and decodes a member's chunks only when that member first
    /// serves.
    pub fn open_sharded(
        store: Arc<dyn CheckpointStore>,
        key: &str,
        build: NetworkBuilder,
    ) -> Result<ShardedEnsemble> {
        let root = ShardRoot::decode(checkpoint::unseal(store.get(key)?)?)?;
        let mut metas = Vec::with_capacity(root.indexes.len());
        for index in &root.indexes {
            metas.push(MemberMeta::decode(index.meta.clone())?);
        }
        let cells = (0..root.indexes.len()).map(|_| OnceLock::new()).collect();
        Ok(ShardedEnsemble {
            store,
            build,
            codec_tag: root.codec_tag,
            indexes: root.indexes,
            metas,
            cells,
        })
    }
}

/// A sharded bundle opened for serving: structural metadata for every
/// member, chunk decode deferred to first use. Cheap to open, cheap to
/// validate, and pay-per-member to serve — `&self` everywhere, so one
/// instance (or an `Arc`) serves concurrent callers.
pub struct ShardedEnsemble {
    store: Arc<dyn CheckpointStore>,
    build: NetworkBuilder,
    codec_tag: String,
    indexes: Vec<ChunkIndex>,
    metas: Vec<MemberMeta>,
    cells: Vec<OnceLock<FrozenMember>>,
}

impl std::fmt::Debug for ShardedEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEnsemble")
            .field("members", &self.metas.len())
            .field("resident", &self.resident_members())
            .field("codec", &self.codec_tag)
            .finish_non_exhaustive()
    }
}

impl ShardedEnsemble {
    /// Number of members (from the root record; none need be resident).
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when the bundle has no members.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Codec tag the bundle was written with, e.g. `"int8+dbp+lz"`.
    pub fn codec_tag(&self) -> &str {
        &self.codec_tag
    }

    /// Output class count shared by the members, or `None` when empty —
    /// from index metadata alone.
    pub fn num_classes(&self) -> Option<usize> {
        self.metas.first().map(|m| m.num_classes)
    }

    /// `(arch tag, class count)` per member from index metadata alone —
    /// the same structural fingerprint
    /// [`FrozenEnsemble::arch_signature`] computes from decoded members.
    pub fn arch_signature(&self) -> Vec<(String, usize)> {
        self.metas
            .iter()
            .map(|m| (m.arch.clone(), m.num_classes))
            .collect()
    }

    /// How many members are currently materialized (chunks decoded and
    /// cached). Freshly opened bundles report 0; serving with the first
    /// `k` members raises it to exactly `k`.
    pub fn resident_members(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }

    /// Member `t`, decoding its chunks on first use. Subsequent calls
    /// return the cached member; a failed decode is *not* cached, so a
    /// repaired store heals on retry.
    pub fn member(&self, t: usize) -> Result<&FrozenMember> {
        let cell = self.cells.get(t).ok_or(EnsembleError::EmptyEnsemble)?;
        if let Some(m) = cell.get() {
            return Ok(m);
        }
        let decoded = self.decode_member(t)?;
        // Another thread may have raced us here; both decoded the same
        // bytes, so either value is correct.
        let _ = cell.set(decoded);
        Ok(cell.get().expect("cell was just initialized"))
    }

    /// Decodes member `t` from its chunk grid — the entry streams are
    /// byte-identical to the whole-blob bundle's, so this yields the
    /// same member bits `EEB2` decode would.
    fn decode_member(&self, t: usize) -> Result<FrozenMember> {
        let index = &self.indexes[t];
        let meta = &self.metas[t];
        let mut entries = Vec::with_capacity(index.parts.len());
        for (p, part) in index.parts.iter().enumerate() {
            let stream =
                chunkstore::read_part(self.store.as_ref(), index, p).map_err(BundleError::from)?;
            entries.push((part.name.clone(), part.dims.clone(), stream));
        }
        member_from_coded_entries(
            meta.label.clone(),
            meta.alpha,
            &meta.arch,
            meta.num_classes,
            entries,
            &*self.build,
        )
    }

    /// Ensemble soft targets using the first `prefix` members — only
    /// those members are materialized. Voting semantics are identical to
    /// [`FrozenEnsemble::soft_targets_prefix`]: pool-parallel member
    /// passes, serial α-reduce in member order, bit-identical at every
    /// thread count.
    pub fn soft_targets_prefix(&self, features: &Tensor, prefix: usize) -> Result<Tensor> {
        if prefix == 0 || prefix > self.len() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        let members: Vec<&FrozenMember> =
            (0..prefix).map(|t| self.member(t)).collect::<Result<_>>()?;
        let alphas: Vec<f32> = members.iter().map(|m| m.alpha()).collect();
        let probs = parallel_map(&members, |_, m| {
            with_thread_ctx(|ctx| m.soft_targets_tau(features, 1.0, ctx))
        });
        alpha_weighted_average(probs, &alphas)
    }

    /// Ensemble soft targets over all members (materializes all of them).
    pub fn soft_targets(&self, features: &Tensor) -> Result<Tensor> {
        self.soft_targets_prefix(features, self.len())
    }

    /// Hard predictions of the full ensemble.
    pub fn predict(&self, features: &Tensor) -> Result<Vec<usize>> {
        let probs = self.soft_targets(features)?;
        Ok(edde_tensor::ops::argmax_rows(&probs)?)
    }

    /// Materializes every member and returns the eager serving form —
    /// what a hot-swap installs after index-level validation passes.
    pub fn materialize(&self) -> Result<FrozenEnsemble> {
        let members: Vec<FrozenMember> = (0..self.len())
            .map(|t| self.member(t).cloned())
            .collect::<Result<_>>()?;
        Ok(FrozenEnsemble::from_members(members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::checkpoint::MemStore;
    use edde_nn::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> NetworkBuilder {
        Arc::new(|arch: &str, num_classes: usize| {
            let mut r = StdRng::seed_from_u64(0);
            match arch {
                "mlp-2" => Ok(mlp(&[4, 8, num_classes], 0.0, &mut r)),
                other => Err(EnsembleError::BadConfig(format!("unknown arch {other:?}"))),
            }
        })
    }

    fn sample() -> FrozenEnsemble {
        let mut f = FrozenEnsemble::new();
        for seed in 0..3u64 {
            let mut r = StdRng::seed_from_u64(seed + 1);
            f.push(
                Arc::new(mlp(&[4, 8, 3], 0.0, &mut r)),
                1.0 + seed as f32,
                format!("m{seed}"),
            );
        }
        f
    }

    #[test]
    fn sharded_round_trip_matches_whole_blob_bitwise() {
        let f = sample();
        let store = MemStore::new();
        f.save_bundle(&store, "blob").unwrap();
        f.save_bundle_sharded(&store, "root").unwrap();
        let whole = FrozenEnsemble::load_bundle(&store, "blob", &|a, n| build()(a, n)).unwrap();
        let sharded = FrozenEnsemble::open_sharded(Arc::new(store), "root", build()).unwrap();
        assert_eq!(sharded.resident_members(), 0);
        let lazy = sharded.materialize().unwrap();
        assert_eq!(sharded.resident_members(), 3);
        let x = Tensor::ones(&[6, 4]);
        let a = whole.soft_targets(&x).unwrap();
        let b = lazy.soft_targets(&x).unwrap();
        assert_eq!(a.data(), b.data());
        for (wm, lm) in whole.members().iter().zip(lazy.members()) {
            assert_eq!(wm.label(), lm.label());
            assert_eq!(wm.alpha(), lm.alpha());
            let ws = wm.network().unwrap().export_state();
            let ls = lm.network().unwrap().export_state();
            assert_eq!(ws.len(), ls.len());
            for ((wn, wt), (ln, lt)) in ws.iter().zip(&ls) {
                assert_eq!(wn, ln);
                assert_eq!(wt.data(), lt.data(), "tensor {wn} differs");
            }
        }
    }

    #[test]
    fn lazy_prefix_decodes_only_what_it_serves() {
        let f = sample();
        let store = MemStore::new();
        f.save_bundle_sharded(&store, "root").unwrap();
        let sharded = FrozenEnsemble::open_sharded(Arc::new(store), "root", build()).unwrap();
        assert_eq!(sharded.resident_members(), 0);
        let x = Tensor::ones(&[2, 4]);
        let p1 = sharded.soft_targets_prefix(&x, 1).unwrap();
        assert_eq!(sharded.resident_members(), 1);
        let full = sharded.soft_targets(&x).unwrap();
        assert_eq!(sharded.resident_members(), 3);
        assert_eq!(p1.dims(), full.dims());
        // prefix-1 vote is just member 0's softmax; full vote differs
        assert_ne!(p1.data(), full.data());
    }

    #[test]
    fn open_sharded_validates_the_root_record() {
        let f = sample();
        let store = Arc::new(MemStore::new());
        f.save_bundle_sharded(store.as_ref(), "root").unwrap();
        // small members travel entirely inside the root's embedded
        // indexes: the bundle is chunk-free and survives with root alone
        let sharded = FrozenEnsemble::open_sharded(store.clone(), "root", build()).unwrap();
        assert_eq!(sharded.len(), 3);
        assert!(sharded.materialize().is_ok());
        // torn root: the EDC2 frame catches any truncation
        let sealed = store.get("root").unwrap();
        store.put("root", &sealed[..sealed.len() / 2]).unwrap();
        assert!(FrozenEnsemble::open_sharded(store.clone(), "root", build()).is_err());
        // missing root
        store.remove("root").unwrap();
        assert!(FrozenEnsemble::open_sharded(store, "root", build()).is_err());
    }
}
