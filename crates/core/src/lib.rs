//! # edde-core
//!
//! The primary contribution of *Efficient Diversity-Driven Ensemble for Deep
//! Neural Networks* (Zhang, Jiang, Shao, Cui — ICDE 2020), plus every
//! baseline the paper compares against, behind one interface.
//!
//! ## What EDDE is
//!
//! EDDE (Algorithm 1 of the paper) trains an ensemble of neural networks
//! under a tight epoch budget by combining three mechanisms:
//!
//! 1. **β-knowledge transfer** ([`transfer`]): each new base model is
//!    initialized from the lower (generic) `β` fraction of the previous
//!    model's parameters, with the upper (task-specific) layers
//!    re-initialized — accelerating convergence *without* collapsing
//!    diversity the way full-weight transfer (Snapshot Ensemble) does.
//!    The β value itself is selected by the seen-fold/unseen-fold probe of
//!    §IV-B ([`transfer::select_beta`]).
//! 2. **Diversity-driven optimization** ([`edde_nn::loss::DiversityDriven`],
//!    driven by [`trainer`]): the loss `CE − γ‖h(x) − H(x)‖₂` explicitly
//!    pushes each model's soft target away from the running ensemble's.
//! 3. **A Boosting-based pipeline** ([`methods::Edde`]): sample weights are
//!    rebuilt each round from `Sim_t` and `Bias_t` (Eq. 12–14) and member
//!    weights `α_t` follow Eq. 15; prediction is α-weighted soft voting
//!    (Eq. 16).
//!
//! ## Baselines
//!
//! [`methods`] also implements Single Model, Bagging, AdaBoost.M1,
//! AdaBoost.NC (Wang, Chen & Yao 2010), Snapshot Ensemble (Huang et al.
//! 2017), and Born-Again Networks (Furlanello et al. 2018) — everything in
//! the paper's Tables II–VI and Figures 1/7/8.
//!
//! ## Measurement
//!
//! [`diversity`] is the paper's soft-target diversity measure (Eq. 2/3/7),
//! [`bias_variance`] the bias/variance analysis behind Figure 1, and
//! [`evaluate`] the accuracy-versus-budget traces behind Figure 7.
//!
//! Every evaluation statistic is a **streaming reducer** ([`stream`]):
//! the materialized entry points feed the reducers from a sequential
//! [`edde_data::stream::DatasetStream`], so evaluation memory is bounded
//! by one batch, and any [`edde_data::stream::BatchSource`] — including
//! unbounded drifted streams — can be scored with the identical fold.
//! [`stream::disagreement_scores`] turns the Eq. 2 diversity quantity
//! into a per-sample OOD score, with [`stream::AurocAccumulator`]
//! computing detection AUROC in fixed memory.

pub mod bias_variance;
pub mod diversity;
pub mod ensemble;
pub mod env;
pub mod error;
pub mod evaluate;
pub mod frozen;
pub mod methods;
pub mod quant;
pub mod recovery;
pub mod report;
pub mod runstate;
pub mod sharded;
pub mod stream;
pub mod trainer;
pub mod transfer;

pub use ensemble::{EnsembleMember, EnsembleModel};
pub use env::{
    env_bool, env_f64, env_usize, eval_batch, EddeConfig, EddeConfigBuilder, ExperimentEnv,
    ModelFactory,
};
pub use error::{BundleError, EnsembleError, Result};
pub use frozen::{network_soft_targets_tau, BundleCodec, FrozenEnsemble, FrozenMember};
pub use methods::{
    train_members_in_order, AdaBoostM1, AdaBoostNc, Bagging, Bans, Edde, EnsembleMethod, Ncl,
    RunResult, SingleModel, Snapshot, TracePoint,
};
pub use quant::{QuantizedDense, QuantizedMlp};
pub use recovery::{FaultPlan, FaultyStore, RecoveryPolicy};
pub use runstate::{
    epoch_seed, MemberProgress, MemberRecord, RunManifest, RunProtocol, RunSession,
};
pub use sharded::{NetworkBuilder, ShardedEnsemble};
pub use stream::{
    disagreement_auroc, disagreement_scores, network_stream_accuracy, stream_accuracy,
    stream_accuracy_prefix, stream_average_member_accuracy, stream_bias_variance, stream_diversity,
    stream_evaluate, AurocAccumulator, DisagreementReport, MemberScorer, StreamAccuracy,
    StreamBiasVariance, StreamDiversity, StreamEvalReport,
};
pub use trainer::{
    EpochCheckpoints, LossSpec, TrainEvent, TrainLoop, TrainObserver, TrainRng, TrainStats, Trainer,
};
