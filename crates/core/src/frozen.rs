//! The frozen inference engine: immutable, shareable ensemble serving.
//!
//! Training needs `&mut` networks (forward passes cache backward state);
//! serving does not. This module is the single soft-target engine every
//! inference path runs on — [`network_soft_targets_tau`] batches a pure
//! [`Network::forward`] pass through a per-thread [`InferCtx`], and
//! [`FrozenEnsemble`] is the `Arc`-shared serving form of a trained
//! ensemble: members, ensemble weights `α_t`, and labels, with Eq. 16
//! soft voting fanned out over the worker pool. A member is either a
//! float [`Network`] or a natively-quantized [`QuantizedMlp`] — int8
//! bundles serve on the integer kernel without dequantizing to f32.
//!
//! Results are bit-identical to the mutable training-stack path at every
//! thread count and on every SIMD backend: member passes are independent,
//! and the α-weighted reduction runs serially in member order.
//!
//! A frozen ensemble also round-trips through a CRC-sealed bundle
//! ([`FrozenEnsemble::save_bundle`]/[`FrozenEnsemble::load_bundle`]).
//! The current format is `EEB2`: each tensor travels through a
//! self-describing [`edde_tensor::codec`] chain (f32, f16, or symmetric
//! int8, optionally compressed), selected per bundle with a
//! [`BundleCodec`] via [`FrozenEnsemble::save_bundle_with`]. Legacy
//! `EEB1` bundles still load bit-identically; both formats share the
//! 12-byte `magic/version/member-count` header, so
//! [`FrozenEnsemble::peek_member_count`] can vet a hot-swap candidate
//! before any member state is decoded.

use crate::error::{BundleError, EnsembleError, Result};
use crate::quant::{QuantizedDense, QuantizedMlp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edde_data::stream::DatasetStream;
use edde_data::Dataset;
use edde_nn::checkpoint::{self, CheckpointStore};
use edde_nn::infer::{with_thread_ctx, InferCtx};
use edde_nn::Network;
use edde_tensor::codec as tcodec;
use edde_tensor::codec::{CodecChain, DecodedTensor};
use edde_tensor::ops::softmax_rows_in_place;
use edde_tensor::parallel::parallel_map;
use edde_tensor::Tensor;
use std::sync::Arc;

/// Legacy bundle payload magic (raw `EDT1` member blobs).
const BUNDLE_MAGIC_V1: &[u8; 4] = b"EEB1";

/// Current bundle payload magic (per-tensor codec chains). The payload is
/// additionally sealed in an `EDC2` checksummed frame, like the `EDM2`
/// run manifest.
const BUNDLE_MAGIC: &[u8; 4] = b"EEB2";

/// Version accepted under the `EEB1` magic.
const BUNDLE_VERSION_V1: u32 = 1;

/// Current bundle format version.
const BUNDLE_VERSION: u32 = 2;

/// Upper bound on a stored tensor's rank — corruption guard, comfortably
/// above anything the layer zoo produces.
const MAX_ENTRY_RANK: usize = 8;

/// The shared batching envelope behind every soft-target path: score
/// `features` in batches of `batch` rows through `forward`, divide
/// logits by `tau`, softmax. Batching never affects results; all
/// scratch comes from `ctx`. The batch size is an explicit argument —
/// callers resolve it once (from an [`crate::EddeConfig`] or the
/// [`crate::env::eval_batch`] wrapper) instead of per chunk, so steady-
/// state evaluation performs no environment reads.
fn batched_soft_targets(
    forward: &mut dyn FnMut(&Tensor, &mut InferCtx) -> Result<Tensor>,
    k: usize,
    features: &Tensor,
    tau: f32,
    batch: usize,
    ctx: &mut InferCtx,
) -> Result<Tensor> {
    debug_assert!(batch > 0, "eval batch must be positive");
    let dims = features.dims().to_vec();
    let n = dims[0];
    let row: usize = dims[1..].iter().product();
    let mut out = Tensor::zeros(&[n, k]);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let mut bdims = dims.clone();
        bdims[0] = end - start;
        let mut chunk = ctx.alloc(&bdims);
        chunk
            .data_mut()
            .copy_from_slice(&features.data()[start * row..end * row]);
        let mut logits = forward(&chunk, ctx)?;
        ctx.recycle(chunk);
        // z/1.0 == z bitwise, so skipping the scale at tau = 1 keeps the
        // temperature path and the plain path on identical arithmetic.
        if tau != 1.0 {
            for z in logits.data_mut() {
                *z /= tau;
            }
        }
        softmax_rows_in_place(&mut logits)?;
        out.data_mut()[start * k..end * k].copy_from_slice(logits.data());
        ctx.recycle(logits);
        start = end;
    }
    Ok(out)
}

/// Batched eval-mode softmax of one network at temperature `tau`, on the
/// pure forward path.
///
/// This is the one soft-target engine: `tau = 1.0` is the plain
/// `predict_proba` semantics ensemble voting uses, `tau > 1.0` the
/// τ-softened teacher targets BANs distills from. Scoring runs in batches
/// of [`crate::env::eval_batch`] rows to bound the im2col working set;
/// batching never affects results. Scratch comes from `ctx`, so steady-
/// state evaluation performs no fresh allocations beyond the output.
pub fn network_soft_targets_tau(
    net: &Network,
    features: &Tensor,
    tau: f32,
    ctx: &mut InferCtx,
) -> Result<Tensor> {
    network_soft_targets_tau_batched(net, features, tau, crate::env::eval_batch(), ctx)
}

/// [`network_soft_targets_tau`] with an explicit row-batch size — the
/// zero-env-read form for callers that resolved an
/// [`crate::EddeConfig`] at construction. Bit-identical for any
/// positive `batch`.
pub fn network_soft_targets_tau_batched(
    net: &Network,
    features: &Tensor,
    tau: f32,
    batch: usize,
    ctx: &mut InferCtx,
) -> Result<Tensor> {
    batched_soft_targets(
        &mut |chunk, ctx| Ok(net.forward(chunk, ctx)?),
        net.num_classes(),
        features,
        tau,
        batch,
        ctx,
    )
}

/// Every member's soft-target matrix, fanned out over the worker pool with
/// each worker's thread-local context; one result per network, in member
/// order. The eval batch is resolved once, not per member.
pub(crate) fn fan_out_soft_targets(nets: &[&Network], features: &Tensor) -> Vec<Result<Tensor>> {
    let batch = crate::env::eval_batch();
    parallel_map(nets, move |_, net| {
        with_thread_ctx(|ctx| network_soft_targets_tau_batched(net, features, 1.0, batch, ctx))
    })
}

/// The serial tail of Eq. 16 over borrowed member matrices: α-weighted
/// average of member soft targets, renormalized by `Σα`. Fixed summation
/// order (member order) keeps the result bit-identical at every thread
/// count; element-wise arithmetic keeps it bit-identical for any row
/// batching. This is the one vote reduce — the materialized path and the
/// streaming reducers ([`crate::stream`]) both run on it.
pub(crate) fn alpha_weighted_average_of(probs: &[Tensor], alphas: &[f32]) -> Result<Tensor> {
    let mut acc: Option<Tensor> = None;
    let mut alpha_sum = 0.0f32;
    for (p, &alpha) in probs.iter().zip(alphas) {
        let weighted = p.map(|v| v * alpha);
        alpha_sum += alpha;
        acc = Some(match acc {
            None => weighted,
            Some(a) => a.zip_map(&weighted, |x, y| x + y)?,
        });
    }
    let acc = acc.ok_or(EnsembleError::EmptyEnsemble)?;
    if alpha_sum <= 0.0 {
        return Err(EnsembleError::BadConfig(
            "member weights sum to zero".into(),
        ));
    }
    Ok(acc.map(|v| v / alpha_sum))
}

/// [`alpha_weighted_average_of`] over fallible member passes.
pub(crate) fn alpha_weighted_average(probs: Vec<Result<Tensor>>, alphas: &[f32]) -> Result<Tensor> {
    let probs: Vec<Tensor> = probs.into_iter().collect::<Result<_>>()?;
    alpha_weighted_average_of(&probs, alphas)
}

/// Pool-parallel member passes plus the serial α-reduce — the full Eq. 16
/// soft vote both [`crate::EnsembleModel`] and [`FrozenEnsemble`] run on.
pub(crate) fn weighted_soft_vote(
    nets: &[&Network],
    alphas: &[f32],
    features: &Tensor,
) -> Result<Tensor> {
    alpha_weighted_average(fan_out_soft_targets(nets, features), alphas)
}

/// The serving form of one member: float, or natively int8.
#[derive(Clone)]
enum MemberNet {
    F32(Arc<Network>),
    Int8(Arc<QuantizedMlp>),
}

/// One frozen base model with its ensemble weight `α_t`.
#[derive(Clone)]
pub struct FrozenMember {
    net: MemberNet,
    alpha: f32,
    label: String,
}

impl FrozenMember {
    /// Wraps an already-shared float network.
    pub fn new(network: Arc<Network>, alpha: f32, label: impl Into<String>) -> Self {
        FrozenMember {
            net: MemberNet::F32(network),
            alpha,
            label: label.into(),
        }
    }

    /// Wraps an already-shared quantized member.
    pub fn new_quantized(q: Arc<QuantizedMlp>, alpha: f32, label: impl Into<String>) -> Self {
        FrozenMember {
            net: MemberNet::Int8(q),
            alpha,
            label: label.into(),
        }
    }

    /// The float network, or `None` for a quantized member.
    pub fn network(&self) -> Option<&Network> {
        match &self.net {
            MemberNet::F32(net) => Some(net),
            MemberNet::Int8(_) => None,
        }
    }

    /// The quantized form, or `None` for a float member.
    pub fn quantized(&self) -> Option<&QuantizedMlp> {
        match &self.net {
            MemberNet::F32(_) => None,
            MemberNet::Int8(q) => Some(q),
        }
    }

    /// True when the member serves natively in int8.
    pub fn is_quantized(&self) -> bool {
        matches!(self.net, MemberNet::Int8(_))
    }

    /// Architecture tag, e.g. `"mlp-3"`.
    pub fn arch(&self) -> &str {
        match &self.net {
            MemberNet::F32(net) => net.arch(),
            MemberNet::Int8(q) => q.arch(),
        }
    }

    /// Output class count.
    pub fn num_classes(&self) -> usize {
        match &self.net {
            MemberNet::F32(net) => net.num_classes(),
            MemberNet::Int8(q) => q.num_classes(),
        }
    }

    /// Ensemble weight `α_t`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Human-readable tag, e.g. `"edde-3"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// This member's batched soft targets at temperature `tau` — the same
    /// envelope as [`network_soft_targets_tau`], on the float or the
    /// native int8 forward depending on the member's form.
    pub fn soft_targets_tau(
        &self,
        features: &Tensor,
        tau: f32,
        ctx: &mut InferCtx,
    ) -> Result<Tensor> {
        self.soft_targets_tau_batched(features, tau, crate::env::eval_batch(), ctx)
    }

    /// [`soft_targets_tau`](Self::soft_targets_tau) with an explicit
    /// row-batch size — the zero-env-read form for callers holding a
    /// resolved [`crate::EddeConfig`]. Bit-identical for any positive
    /// `batch`.
    pub fn soft_targets_tau_batched(
        &self,
        features: &Tensor,
        tau: f32,
        batch: usize,
        ctx: &mut InferCtx,
    ) -> Result<Tensor> {
        match &self.net {
            MemberNet::F32(net) => network_soft_targets_tau_batched(net, features, tau, batch, ctx),
            MemberNet::Int8(q) => batched_soft_targets(
                &mut |chunk, ctx| q.forward(chunk, ctx),
                q.num_classes(),
                features,
                tau,
                batch,
                ctx,
            ),
        }
    }
}

impl std::fmt::Debug for FrozenMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenMember")
            .field("label", &self.label)
            .field("alpha", &self.alpha)
            .field("arch", &self.arch())
            .field("quantized", &self.is_quantized())
            .finish_non_exhaustive()
    }
}

/// Per-bundle codec selection for [`FrozenEnsemble::save_bundle_with`]:
/// one [`CodecChain`] for weight matrices (rank ≥ 2) and one for vectors
/// (biases and other rank ≤ 1 state, which are tiny and precision-
/// sensitive, so the presets keep them exact f32).
#[derive(Debug, Clone)]
pub struct BundleCodec {
    /// Chain applied to rank ≥ 2 tensors (the weight matrices).
    pub weights: CodecChain,
    /// Chain applied to rank ≤ 1 tensors (biases, running statistics).
    pub vectors: CodecChain,
}

impl BundleCodec {
    /// Exact f32 everywhere, no compression — the default.
    pub fn f32() -> Self {
        BundleCodec {
            weights: CodecChain::f32(),
            vectors: CodecChain::f32(),
        }
    }

    /// Half-precision weights with delta+bitpack and LZ compression;
    /// vectors stay exact f32.
    pub fn f16() -> Self {
        BundleCodec {
            weights: CodecChain::f16(),
            vectors: CodecChain::f32(),
        }
    }

    /// Symmetric int8 weights with delta+bitpack and LZ compression;
    /// vectors stay exact f32. Bundles written this way load back as
    /// natively-quantized members.
    pub fn int8() -> Self {
        BundleCodec {
            weights: CodecChain::int8(),
            vectors: CodecChain::f32(),
        }
    }

    /// Short tag of the weights chain, e.g. `"int8+dbp+lz"` — used in
    /// bench rows and logs.
    pub fn tag(&self) -> String {
        self.weights.tag()
    }
}

impl Default for BundleCodec {
    fn default() -> Self {
        BundleCodec::f32()
    }
}

/// An immutable ensemble `H_T = Σ_t α_t h_t` for serving: every method
/// takes `&self`, so one instance (or one `Arc<FrozenEnsemble>`) serves
/// concurrent batched predictions with zero member cloning.
#[derive(Clone, Default)]
pub struct FrozenEnsemble {
    members: Vec<FrozenMember>,
}

impl std::fmt::Debug for FrozenEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenEnsemble")
            .field("members", &self.members)
            .finish()
    }
}

impl FrozenEnsemble {
    /// An empty frozen ensemble.
    pub fn new() -> Self {
        FrozenEnsemble {
            members: Vec::new(),
        }
    }

    /// Assembles an ensemble from already-built members (the sharded
    /// loader's materialization path).
    pub(crate) fn from_members(members: Vec<FrozenMember>) -> Self {
        FrozenEnsemble { members }
    }

    /// Adds a float member.
    pub fn push(&mut self, network: Arc<Network>, alpha: f32, label: impl Into<String>) {
        self.members.push(FrozenMember::new(network, alpha, label));
    }

    /// Adds a natively-quantized member.
    pub fn push_quantized(&mut self, q: Arc<QuantizedMlp>, alpha: f32, label: impl Into<String>) {
        self.members
            .push(FrozenMember::new_quantized(q, alpha, label));
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in training order.
    pub fn members(&self) -> &[FrozenMember] {
        &self.members
    }

    /// Output class count shared by every member, or `None` for an empty
    /// ensemble. All members of a well-formed ensemble agree on it (the
    /// α-reduce requires identical output shapes), so this is the live
    /// serving configuration a hot-swap candidate must match.
    pub fn num_classes(&self) -> Option<usize> {
        self.members.first().map(|m| m.num_classes())
    }

    /// `(arch tag, class count)` per member, in member order — a cheap
    /// structural fingerprint for logging and swap-compatibility checks.
    pub fn arch_signature(&self) -> Vec<(String, usize)> {
        self.members
            .iter()
            .map(|m| (m.arch().to_string(), m.num_classes()))
            .collect()
    }

    /// A quantized copy of the ensemble: every float member converted to
    /// its native int8 serving form (already-quantized members carry over
    /// unchanged), with `α_t` and labels preserved.
    pub fn quantize(&self) -> Result<FrozenEnsemble> {
        let mut out = FrozenEnsemble::new();
        for m in &self.members {
            match &m.net {
                MemberNet::F32(net) => out.push_quantized(
                    Arc::new(QuantizedMlp::from_network(net)?),
                    m.alpha,
                    m.label.clone(),
                ),
                MemberNet::Int8(_) => out.members.push(m.clone()),
            }
        }
        Ok(out)
    }

    /// Validates `candidate` as a hot-swap replacement for `self`: it must
    /// be non-empty, carry the same member count (the live `α` vector and
    /// per-member routing assume it), and agree on the output class count
    /// (callers' request and response shapes must keep working across the
    /// swap). Each rejection is a distinct typed error
    /// ([`BundleError::MemberCountMismatch`], [`BundleError::ArchMismatch`])
    /// so a rejected candidate can be reported without touching the live
    /// ensemble. An empty live ensemble accepts any non-empty candidate.
    pub fn validate_swap(&self, candidate: &FrozenEnsemble) -> Result<()> {
        if candidate.is_empty() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        if !self.is_empty() && self.len() != candidate.len() {
            return Err(BundleError::MemberCountMismatch {
                expected: self.len(),
                got: candidate.len(),
            }
            .into());
        }
        match (self.num_classes(), candidate.num_classes()) {
            (Some(expected), Some(got)) if expected != got => {
                let arch = candidate.members[0].arch().to_string();
                Err(BundleError::ArchMismatch {
                    arch,
                    expected,
                    got,
                }
                .into())
            }
            _ => Ok(()),
        }
    }

    /// Freezes every completed member of a resumable run directly from its
    /// checkpoint store: `make` builds a fresh architecture-compatible
    /// network per member (its initialization is fully overwritten by the
    /// restore). The session's recorded `α_t` and labels carry over — no
    /// trainer, environment, or method code involved.
    pub fn freeze_run(
        session: &crate::runstate::RunSession<'_>,
        make: &mut dyn FnMut() -> Result<Network>,
    ) -> Result<Self> {
        let mut frozen = FrozenEnsemble::new();
        for (t, rec) in session.members().iter().enumerate() {
            let mut net = make()?;
            session.restore_network(t, &mut net)?;
            frozen.push(Arc::new(net), rec.alpha, rec.label.clone());
        }
        Ok(frozen)
    }

    /// Ensemble soft target `H_t(x)` for every row of `features`, using the
    /// first `prefix` members (pass `self.len()` for the full ensemble).
    pub fn soft_targets_prefix(&self, features: &Tensor, prefix: usize) -> Result<Tensor> {
        self.soft_targets_prefix_batched(features, prefix, crate::env::eval_batch())
    }

    /// [`soft_targets_prefix`](Self::soft_targets_prefix) with an
    /// explicit row-batch size — the zero-env-read form for callers
    /// holding a resolved [`crate::EddeConfig`] (the serve engine's
    /// drain loop runs on it). Bit-identical for any positive `batch`.
    pub fn soft_targets_prefix_batched(
        &self,
        features: &Tensor,
        prefix: usize,
        batch: usize,
    ) -> Result<Tensor> {
        if prefix == 0 || prefix > self.members.len() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        let members = &self.members[..prefix];
        let alphas: Vec<f32> = members.iter().map(|m| m.alpha).collect();
        let probs = parallel_map(members, move |_, m| {
            with_thread_ctx(|ctx| m.soft_targets_tau_batched(features, 1.0, batch, ctx))
        });
        alpha_weighted_average(probs, &alphas)
    }

    /// Ensemble soft target `H_T(x)` over all members.
    pub fn soft_targets(&self, features: &Tensor) -> Result<Tensor> {
        self.soft_targets_prefix(features, self.members.len())
    }

    /// [`soft_targets`](Self::soft_targets) with an explicit row-batch
    /// size — see [`soft_targets_prefix_batched`](Self::soft_targets_prefix_batched).
    pub fn soft_targets_batched(&self, features: &Tensor, batch: usize) -> Result<Tensor> {
        self.soft_targets_prefix_batched(features, self.members.len(), batch)
    }

    /// Hard predictions of the full ensemble.
    pub fn predict(&self, features: &Tensor) -> Result<Vec<usize>> {
        let probs = self.soft_targets(features)?;
        Ok(edde_tensor::ops::argmax_rows(&probs)?)
    }

    /// Ensemble test accuracy. Shares one fold implementation with the
    /// mutable path and the streaming path: a [`crate::stream`] accuracy
    /// reducer fed by a sequential [`edde_data::stream::DatasetStream`],
    /// so memory stays `O(eval_batch)` regardless of `data.len()`.
    pub fn accuracy(&self, data: &Dataset) -> Result<f32> {
        self.accuracy_prefix(data, self.len())
    }

    /// Ensemble accuracy using only the first `prefix` members.
    pub fn accuracy_prefix(&self, data: &Dataset, prefix: usize) -> Result<f32> {
        let mut src = DatasetStream::sequential(data, crate::env::eval_batch());
        crate::stream::stream_accuracy_prefix(self, &mut src, prefix)
    }

    /// Mean *individual* member accuracy.
    pub fn average_member_accuracy(&self, data: &Dataset) -> Result<f32> {
        let mut src = DatasetStream::sequential(data, crate::env::eval_batch());
        crate::stream::stream_average_member_accuracy(self, &mut src)
    }

    /// Each member's soft-target matrix on `features`.
    pub fn member_soft_targets(&self, features: &Tensor) -> Result<Vec<Tensor>> {
        parallel_map(&self.members, |_, m| {
            with_thread_ctx(|ctx| m.soft_targets_tau(features, 1.0, ctx))
        })
        .into_iter()
        .collect()
    }

    /// Serializes the ensemble into an unsealed `EEB2` payload with the
    /// exact-f32 codec (no compression) — the infallible default.
    pub fn encode(&self) -> Bytes {
        self.encode_with(&BundleCodec::f32())
            .expect("f32 codec chain cannot reject finite or non-finite input")
    }

    /// Serializes the ensemble into an unsealed `EEB2` payload: per
    /// member, label, `α_t`, architecture tag, class count, and one
    /// self-describing codec-chain stream per state tensor. Quantized
    /// members always write their weights as the int8 they already hold
    /// (byte-exact, only `codec`'s compression stages apply); float
    /// members go through `codec`'s full chains.
    pub fn encode_with(&self, codec: &BundleCodec) -> Result<Bytes> {
        let mut buf = BytesMut::new();
        buf.put_slice(BUNDLE_MAGIC);
        buf.put_u32_le(BUNDLE_VERSION);
        buf.put_u32_le(self.members.len() as u32);
        for m in &self.members {
            put_str(&mut buf, &m.label);
            buf.put_f32_le(m.alpha);
            put_str(&mut buf, m.arch());
            buf.put_u32_le(m.num_classes() as u32);
            let entries = member_coded_entries(m, codec)?;
            buf.put_u32_le(entries.len() as u32);
            for (name, dims, coded) in &entries {
                put_entry_header(&mut buf, name, dims, coded.len());
                buf.put_slice(coded);
            }
        }
        Ok(buf.freeze())
    }

    /// Serializes the ensemble into the legacy `EEB1` payload (raw `EDT1`
    /// member blobs) — byte-identical to what pre-`EEB2` writers
    /// produced, kept for fixtures and downgrade paths. Quantized members
    /// have no f32 state to write, so they are rejected.
    pub fn encode_v1(&self) -> Result<Bytes> {
        let mut buf = BytesMut::new();
        buf.put_slice(BUNDLE_MAGIC_V1);
        buf.put_u32_le(BUNDLE_VERSION_V1);
        buf.put_u32_le(self.members.len() as u32);
        for m in &self.members {
            let MemberNet::F32(net) = &m.net else {
                return Err(EnsembleError::BadConfig(format!(
                    "member {:?} is quantized and has no EEB1 form",
                    m.label
                )));
            };
            put_str(&mut buf, &m.label);
            buf.put_f32_le(m.alpha);
            put_str(&mut buf, net.arch());
            buf.put_u32_le(net.num_classes() as u32);
            let blob = edde_tensor::serialize::encode_params(&net.export_state());
            buf.put_u64_le(blob.len() as u64);
            buf.put_slice(&blob);
        }
        Ok(buf.freeze())
    }

    /// Reads only the shared 12-byte header of an unsealed payload and
    /// returns the member count — enough for a serving process to reject
    /// a structurally incompatible hot-swap candidate before spending any
    /// decode work on member state. Accepts both `EEB1` and `EEB2`.
    pub fn peek_member_count(payload: &[u8]) -> Result<usize> {
        if payload.len() < 12 {
            return Err(BundleError::Truncated("header").into());
        }
        let magic: [u8; 4] = payload[0..4].try_into().expect("4-byte slice");
        let version = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte slice"));
        match (&magic, version) {
            (BUNDLE_MAGIC_V1, BUNDLE_VERSION_V1) | (BUNDLE_MAGIC, BUNDLE_VERSION) => {
                Ok(u32::from_le_bytes(payload[8..12].try_into().expect("4-byte slice")) as usize)
            }
            (BUNDLE_MAGIC_V1, v) | (BUNDLE_MAGIC, v) => {
                Err(BundleError::UnsupportedVersion(v).into())
            }
            _ => Err(BundleError::BadMagic(magic).into()),
        }
    }

    /// Deserializes a bundle payload (`EEB2`, or legacy `EEB1`). `build`
    /// constructs a fresh network for an `(arch, num_classes)` pair — the
    /// one piece of model code a serving process needs; everything else
    /// comes from the bundle. An `EEB2` member whose weight matrices are
    /// all int8 loads as a natively-quantized member without calling
    /// `build` at all.
    ///
    /// Every rejection path returns a distinct [`BundleError`] variant
    /// (wrapped in [`EnsembleError::Bundle`]): wrong magic, unsupported
    /// version, truncation at any field, a codec-chain rejection
    /// ([`BundleError::Codec`] with the offending tensor and stage), a
    /// malformed member payload, or a builder whose network does not
    /// match the recorded class count.
    pub fn decode(mut buf: Bytes, build: &dyn Fn(&str, usize) -> Result<Network>) -> Result<Self> {
        if buf.remaining() < 12 {
            return Err(BundleError::Truncated("header").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        let version = buf.get_u32_le();
        let v2 = match (&magic, version) {
            (BUNDLE_MAGIC_V1, BUNDLE_VERSION_V1) => false,
            (BUNDLE_MAGIC, BUNDLE_VERSION) => true,
            (BUNDLE_MAGIC_V1, v) | (BUNDLE_MAGIC, v) => {
                return Err(BundleError::UnsupportedVersion(v).into())
            }
            _ => return Err(BundleError::BadMagic(magic).into()),
        };
        let count = buf.get_u32_le() as usize;
        let mut frozen = FrozenEnsemble::new();
        for _ in 0..count {
            if v2 {
                decode_member_v2(&mut buf, build, &mut frozen)?;
            } else {
                decode_member_v1(&mut buf, build, &mut frozen)?;
            }
        }
        Ok(frozen)
    }

    /// Writes the ensemble into a store under `key` with the default
    /// exact-f32 codec, sealed in a checksummed `EDC2` frame — a torn or
    /// bit-flipped bundle is rejected on load rather than served.
    pub fn save_bundle(&self, store: &dyn CheckpointStore, key: &str) -> Result<()> {
        store.put(key, &checkpoint::seal(&self.encode()))?;
        Ok(())
    }

    /// Like [`FrozenEnsemble::save_bundle`], but with an explicit
    /// [`BundleCodec`] — e.g. [`BundleCodec::int8`] for a compressed
    /// quantized bundle that loads back onto the native int8 kernels.
    pub fn save_bundle_with(
        &self,
        store: &dyn CheckpointStore,
        key: &str,
        codec: &BundleCodec,
    ) -> Result<()> {
        store.put(key, &checkpoint::seal(&self.encode_with(codec)?))?;
        Ok(())
    }

    /// Loads a sealed bundle previously written by
    /// [`FrozenEnsemble::save_bundle`] (either format version), verifying
    /// the frame checksum.
    pub fn load_bundle(
        store: &dyn CheckpointStore,
        key: &str,
        build: &dyn Fn(&str, usize) -> Result<Network>,
    ) -> Result<Self> {
        let payload = checkpoint::unseal(store.get(key)?)?;
        Self::decode(payload, build)
    }
}

/// One tensor's serialized form: `(name, dims, coded byte stream)`.
pub(crate) type CodedEntry = (String, Vec<usize>, Vec<u8>);

/// One member's state as `(name, dims, coded stream)` entries — the
/// member-granular payload both the whole-blob `EEB2` writer and the
/// sharded writer serialize, so the two paths carry byte-identical
/// per-tensor streams by construction. Float members go through `codec`'s
/// full chains (weights chain for rank ≥ 2, vectors chain otherwise);
/// quantized members pass their int8 weights through byte-exactly (only
/// the weights chain's compression stages apply — re-quantizing
/// already-quantized values would compound error), biases through the
/// vectors chain.
pub(crate) fn member_coded_entries(
    m: &FrozenMember,
    codec: &BundleCodec,
) -> Result<Vec<CodedEntry>> {
    let mut entries = Vec::new();
    match &m.net {
        MemberNet::F32(net) => {
            for (name, t) in net.export_state() {
                let chain = if t.dims().len() >= 2 {
                    &codec.weights
                } else {
                    &codec.vectors
                };
                let coded = tcodec::encode(t.data(), chain)
                    .map_err(|e| BundleError::codec(name.clone(), e))?;
                entries.push((name, t.dims().to_vec(), coded));
            }
        }
        MemberNet::Int8(q) => {
            for (i, layer) in q.layers().iter().enumerate() {
                let wname = format!("fc{i}.weight");
                let coded =
                    tcodec::encode_q8(layer.weight_q(), layer.weight_scale(), &codec.weights.bytes)
                        .map_err(|e| BundleError::codec(wname.clone(), e))?;
                entries.push((
                    wname,
                    vec![layer.in_features(), layer.out_features()],
                    coded,
                ));
                let bname = format!("fc{i}.bias");
                let coded = tcodec::encode(layer.bias(), &codec.vectors)
                    .map_err(|e| BundleError::codec(bname.clone(), e))?;
                entries.push((bname, vec![layer.out_features()], coded));
            }
        }
    }
    Ok(entries)
}

fn put_entry_header(buf: &mut BytesMut, name: &str, dims: &[usize], coded_len: usize) {
    put_str(buf, name);
    buf.put_u32_le(dims.len() as u32);
    for &d in dims {
        buf.put_u64_le(d as u64);
    }
    buf.put_u64_le(coded_len as u64);
}

/// Decodes one legacy `EEB1` member (raw `EDT1` blob) into `frozen` —
/// byte-identical semantics to the original v1 reader.
fn decode_member_v1(
    buf: &mut Bytes,
    build: &dyn Fn(&str, usize) -> Result<Network>,
    frozen: &mut FrozenEnsemble,
) -> Result<()> {
    let label = get_str(buf, "member label")?;
    if buf.remaining() < 4 {
        return Err(BundleError::Truncated("member weight").into());
    }
    let alpha = buf.get_f32_le();
    let arch = get_str(buf, "member arch tag")?;
    if buf.remaining() < 12 {
        return Err(BundleError::Truncated("member header").into());
    }
    let num_classes = buf.get_u32_le() as usize;
    let blob_len = buf.get_u64_le() as usize;
    if buf.remaining() < blob_len {
        return Err(BundleError::Truncated("member state").into());
    }
    let blob = buf.slice(..blob_len);
    *buf = buf.slice(blob_len..);
    let state = edde_tensor::serialize::decode_params(blob)
        .map_err(|e| BundleError::Payload(format!("member state: {e}")))?;
    let mut net = build(&arch, num_classes)?;
    if net.num_classes() != num_classes {
        return Err(BundleError::ArchMismatch {
            arch,
            expected: num_classes,
            got: net.num_classes(),
        }
        .into());
    }
    net.import_state(&state)?;
    frozen.push(Arc::new(net), alpha, label);
    Ok(())
}

/// Decodes one `EEB2` member into `frozen`, choosing the native int8 form
/// when every weight matrix arrived quantized.
fn decode_member_v2(
    buf: &mut Bytes,
    build: &dyn Fn(&str, usize) -> Result<Network>,
    frozen: &mut FrozenEnsemble,
) -> Result<()> {
    let label = get_str(buf, "member label")?;
    if buf.remaining() < 4 {
        return Err(BundleError::Truncated("member weight").into());
    }
    let alpha = buf.get_f32_le();
    let arch = get_str(buf, "member arch tag")?;
    if buf.remaining() < 8 {
        return Err(BundleError::Truncated("member header").into());
    }
    let num_classes = buf.get_u32_le() as usize;
    let entry_count = buf.get_u32_le() as usize;
    let mut entries: Vec<CodedEntry> = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let name = get_str(buf, "entry name")?;
        if buf.remaining() < 4 {
            return Err(BundleError::Truncated("entry rank").into());
        }
        let rank = buf.get_u32_le() as usize;
        if rank > MAX_ENTRY_RANK {
            return Err(BundleError::Payload(format!(
                "entry {name:?}: rank {rank} exceeds the format limit"
            ))
            .into());
        }
        if buf.remaining() < rank * 8 {
            return Err(BundleError::Truncated("entry dims").into());
        }
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u64_le() as usize).collect();
        if buf.remaining() < 8 {
            return Err(BundleError::Truncated("entry length").into());
        }
        let coded_len = buf.get_u64_le() as usize;
        if buf.remaining() < coded_len {
            return Err(BundleError::Truncated("entry payload").into());
        }
        let coded = buf.slice(..coded_len);
        *buf = buf.slice(coded_len..);
        entries.push((name, dims, coded.to_vec()));
    }
    let member = member_from_coded_entries(label, alpha, &arch, num_classes, entries, build)?;
    frozen.members.push(member);
    Ok(())
}

/// Assembles one member from its `(name, dims, coded stream)` entries —
/// the decode-side twin of [`member_coded_entries`], shared by the `EEB2`
/// reader and the sharded lazy loader. Runs every stream through its
/// self-describing codec chain, validates element counts against dims,
/// and chooses the native int8 form when every weight matrix arrived
/// quantized.
pub(crate) fn member_from_coded_entries(
    label: String,
    alpha: f32,
    arch: &str,
    num_classes: usize,
    coded_entries: Vec<CodedEntry>,
    build: &dyn Fn(&str, usize) -> Result<Network>,
) -> Result<FrozenMember> {
    let mut entries: Vec<(String, Vec<usize>, DecodedTensor)> =
        Vec::with_capacity(coded_entries.len());
    for (name, dims, coded) in coded_entries {
        let decoded = tcodec::decode(&coded).map_err(|e| BundleError::codec(name.clone(), e))?;
        let expect: usize = dims.iter().product();
        if decoded.len() != expect {
            return Err(BundleError::Payload(format!(
                "entry {name:?}: {} decoded values for dims {dims:?}",
                decoded.len()
            ))
            .into());
        }
        entries.push((name, dims, decoded));
    }
    let has_matrix = entries.iter().any(|(_, d, _)| d.len() >= 2);
    let all_matrices_int8 = entries
        .iter()
        .filter(|(_, d, _)| d.len() >= 2)
        .all(|(_, _, v)| matches!(v, DecodedTensor::Int8 { .. }));
    if arch.starts_with("mlp-") && has_matrix && all_matrices_int8 {
        let q = quantized_from_entries(arch, num_classes, entries)?;
        Ok(FrozenMember::new_quantized(Arc::new(q), alpha, label))
    } else {
        let mut state = Vec::with_capacity(entries.len());
        for (name, dims, decoded) in entries {
            state.push((name, Tensor::from_vec(decoded.into_f32(), &dims)?));
        }
        let mut net = build(arch, num_classes)?;
        if net.num_classes() != num_classes {
            return Err(BundleError::ArchMismatch {
                arch: arch.to_string(),
                expected: num_classes,
                got: net.num_classes(),
            }
            .into());
        }
        net.import_state(&state)?;
        Ok(FrozenMember::new(Arc::new(net), alpha, label))
    }
}

/// Assembles a natively-quantized MLP from decoded `EEB2` entries: the
/// `fc{i}.weight` (int8) / `fc{i}.bias` sequence, every entry accounted
/// for.
fn quantized_from_entries(
    arch: &str,
    num_classes: usize,
    entries: Vec<(String, Vec<usize>, DecodedTensor)>,
) -> Result<QuantizedMlp> {
    let total = entries.len();
    let mut entries: Vec<Option<(String, Vec<usize>, DecodedTensor)>> =
        entries.into_iter().map(Some).collect();
    let mut take = |name: &str| -> Option<(Vec<usize>, DecodedTensor)> {
        entries
            .iter_mut()
            .find(|e| matches!(e, Some((n, _, _)) if n == name))
            .and_then(|e| e.take())
            .map(|(_, d, v)| (d, v))
    };
    let mut layers = Vec::new();
    let mut used = 0usize;
    let mut i = 0usize;
    loop {
        let wname = format!("fc{i}.weight");
        let Some((wdims, wval)) = take(&wname) else {
            break;
        };
        let bname = format!("fc{i}.bias");
        let Some((bdims, bval)) = take(&bname) else {
            return Err(BundleError::Payload(format!("quantized member missing {bname:?}")).into());
        };
        used += 2;
        if wdims.len() != 2 || bdims.len() != 1 || bdims[0] != wdims[1] {
            return Err(BundleError::Payload(format!(
                "quantized member {wname:?}/{bname:?} shapes do not chain"
            ))
            .into());
        }
        let DecodedTensor::Int8 { q, scale } = wval else {
            return Err(
                BundleError::Payload(format!("quantized member {wname:?} is not int8")).into(),
            );
        };
        layers.push(QuantizedDense::new(
            q,
            scale,
            bval.into_f32(),
            wdims[0],
            wdims[1],
        )?);
        i += 1;
    }
    if used != total {
        return Err(BundleError::Payload(format!(
            "quantized member has {} entries outside the fc{{i}} sequence",
            total - used
        ))
        .into());
    }
    let qm = QuantizedMlp::from_parts(arch, layers)?;
    if qm.num_classes() != num_classes {
        return Err(BundleError::ArchMismatch {
            arch: arch.to_string(),
            expected: num_classes,
            got: qm.num_classes(),
        }
        .into());
    }
    Ok(qm)
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes, what: &'static str) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(BundleError::Truncated(what).into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(BundleError::Truncated(what).into());
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw)
        .map_err(|e| BundleError::Payload(format!("{what} not utf-8: {e}")).into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::checkpoint::MemStore;
    use edde_nn::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn member(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[4, 8, 3], 0.0, &mut r)
    }

    fn frozen_pair() -> FrozenEnsemble {
        let mut f = FrozenEnsemble::new();
        f.push(Arc::new(member(1)), 1.5, "a");
        f.push(Arc::new(member(2)), 0.5, "b");
        f
    }

    #[test]
    fn soft_targets_are_probabilities_and_prefix_selects() {
        let f = frozen_pair();
        let x = Tensor::ones(&[5, 4]);
        let probs = f.soft_targets(&x).unwrap();
        assert_eq!(probs.dims(), &[5, 3]);
        for i in 0..5 {
            let s: f32 = probs.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let first = f.soft_targets_prefix(&x, 1).unwrap();
        let solo = with_thread_ctx(|ctx| {
            network_soft_targets_tau(f.members()[0].network().unwrap(), &x, 1.0, ctx)
        })
        .unwrap();
        // same weighted-reduce arithmetic the vote applies to one member
        assert_eq!(first.data(), solo.map(|v| (v * 1.5) / 1.5).data());
        assert_eq!(f.predict(&x).unwrap().len(), 5);
    }

    #[test]
    fn empty_and_bad_prefix_error() {
        let f = FrozenEnsemble::new();
        let x = Tensor::ones(&[1, 4]);
        assert!(f.soft_targets(&x).is_err());
        let f2 = frozen_pair();
        assert!(f2.soft_targets_prefix(&x, 0).is_err());
        assert!(f2.soft_targets_prefix(&x, 3).is_err());
    }

    #[test]
    fn bundle_round_trips_bit_exactly() {
        let f = frozen_pair();
        let store = MemStore::new();
        f.save_bundle(&store, "bundle").unwrap();
        let back = FrozenEnsemble::load_bundle(&store, "bundle", &|_, _| Ok(member(99))).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.members()[0].label(), "a");
        assert_eq!(back.members()[1].alpha(), 0.5);
        let x = Tensor::ones(&[3, 4]);
        assert_eq!(
            back.soft_targets(&x).unwrap().data(),
            f.soft_targets(&x).unwrap().data()
        );
    }

    #[test]
    fn legacy_eeb1_payload_round_trips_bit_exactly() {
        let f = frozen_pair();
        let payload = f.encode_v1().unwrap();
        assert_eq!(&payload[0..4], b"EEB1");
        let back = FrozenEnsemble::decode(payload.clone(), &|_, _| Ok(member(99))).unwrap();
        let x = Tensor::ones(&[3, 4]);
        assert_eq!(
            back.soft_targets(&x).unwrap().data(),
            f.soft_targets(&x).unwrap().data()
        );
        // a v1 re-encode of the decoded ensemble reproduces the bytes
        assert_eq!(back.encode_v1().unwrap(), payload);
    }

    #[test]
    fn int8_bundle_loads_natively_quantized_and_is_much_smaller() {
        // big enough that tensor payloads dominate the fixed headers
        let mut f = FrozenEnsemble::new();
        for seed in [1u64, 2] {
            let mut r = StdRng::seed_from_u64(seed);
            f.push(
                Arc::new(mlp(&[32, 48, 3], 0.0, &mut r)),
                1.0,
                format!("m{seed}"),
            );
        }
        let store = MemStore::new();
        f.save_bundle_with(&store, "q", &BundleCodec::int8())
            .unwrap();
        f.save_bundle(&store, "f").unwrap();
        let qlen = store.get("q").unwrap().len();
        let flen = store.get("f").unwrap().len();
        assert!(
            (qlen as f64) < (flen as f64) / 3.0,
            "int8 bundle {qlen}B vs f32 {flen}B"
        );
        // build must never be called: the member loads in native int8 form
        let back = FrozenEnsemble::load_bundle(&store, "q", &|_, _| {
            panic!("native quantized load must not build a float network")
        })
        .unwrap();
        assert!(back.members().iter().all(|m| m.is_quantized()));
        assert_eq!(back.num_classes(), Some(3));
        let x = Tensor::ones(&[4, 32]);
        let qt = back.soft_targets(&x).unwrap();
        let ft = f.soft_targets(&x).unwrap();
        for (a, b) in qt.data().iter().zip(ft.data()) {
            assert!((a - b).abs() < 0.05, "quantized {a} vs float {b}");
        }
        // and a quantized ensemble re-saves byte-stably
        let store2 = MemStore::new();
        back.save_bundle_with(&store2, "q", &BundleCodec::int8())
            .unwrap();
        assert_eq!(store2.get("q").unwrap(), store.get("q").unwrap());
    }

    #[test]
    fn f16_bundle_round_trips_within_half_precision() {
        let f = frozen_pair();
        let store = MemStore::new();
        f.save_bundle_with(&store, "h", &BundleCodec::f16())
            .unwrap();
        let back = FrozenEnsemble::load_bundle(&store, "h", &|_, _| Ok(member(99))).unwrap();
        assert!(back.members().iter().all(|m| !m.is_quantized()));
        let x = Tensor::ones(&[4, 4]);
        let ht = back.soft_targets(&x).unwrap();
        let ft = f.soft_targets(&x).unwrap();
        for (a, b) in ht.data().iter().zip(ft.data()) {
            assert!((a - b).abs() < 5e-3, "f16 {a} vs f32 {b}");
        }
    }

    #[test]
    fn quantize_preserves_structure_and_alphas() {
        let f = frozen_pair();
        let q = f.quantize().unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.members().iter().all(|m| m.is_quantized()));
        assert_eq!(q.members()[0].alpha(), 1.5);
        assert_eq!(q.members()[1].label(), "b");
        assert_eq!(q.arch_signature(), f.arch_signature());
        // idempotent: quantizing again carries members over untouched
        assert_eq!(q.quantize().unwrap().len(), 2);
    }

    #[test]
    fn peek_member_count_reads_both_formats() {
        let f = frozen_pair();
        assert_eq!(FrozenEnsemble::peek_member_count(&f.encode()).unwrap(), 2);
        assert_eq!(
            FrozenEnsemble::peek_member_count(&f.encode_v1().unwrap()).unwrap(),
            2
        );
        assert!(FrozenEnsemble::peek_member_count(&[0u8; 5]).is_err());
    }

    #[test]
    fn corrupted_bundle_is_rejected() {
        let f = frozen_pair();
        let store = MemStore::new();
        f.save_bundle(&store, "bundle").unwrap();
        let mut raw = store.get("bundle").unwrap().to_vec();
        let idx = raw.len() - 5;
        raw[idx] ^= 0x40;
        store.put("bundle", &raw).unwrap();
        let err =
            FrozenEnsemble::load_bundle(&store, "bundle", &|_, _| Ok(member(99))).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // truncated payloads inside a valid frame are also rejected
        let payload = f.encode();
        for cut in [0, 3, 11, payload.len() / 2, payload.len() - 1] {
            assert!(
                FrozenEnsemble::decode(payload.slice(0..cut), &|_, _| Ok(member(0))).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_class_count_mismatch() {
        let f = frozen_pair();
        let err = FrozenEnsemble::decode(f.encode(), &|_, _| {
            let mut r = StdRng::seed_from_u64(0);
            Ok(mlp(&[4, 8, 2], 0.0, &mut r))
        })
        .unwrap_err();
        assert!(err.to_string().contains("classes"), "{err}");
    }

    #[test]
    fn validate_swap_rejects_member_count_changes_before_decode_work() {
        let live = frozen_pair();
        let mut bigger = frozen_pair();
        bigger.push(Arc::new(member(3)), 1.0, "c");
        let err = live.validate_swap(&bigger).unwrap_err();
        assert!(
            matches!(
                err,
                EnsembleError::Bundle(BundleError::MemberCountMismatch {
                    expected: 2,
                    got: 3
                })
            ),
            "{err}"
        );
        // an empty live config accepts any non-empty candidate
        assert!(FrozenEnsemble::new().validate_swap(&bigger).is_ok());
        assert!(live.validate_swap(&frozen_pair()).is_ok());
    }
}
