//! The frozen inference engine: immutable, shareable ensemble serving.
//!
//! Training needs `&mut` networks (forward passes cache backward state);
//! serving does not. This module is the single soft-target engine every
//! inference path runs on — [`network_soft_targets_tau`] batches a pure
//! [`Network::forward`] pass through a per-thread [`InferCtx`], and
//! [`FrozenEnsemble`] is the `Arc`-shared serving form of a trained
//! ensemble: members, ensemble weights `α_t`, and labels, with Eq. 16
//! soft voting fanned out over the worker pool.
//!
//! Results are bit-identical to the mutable training-stack path at every
//! thread count and on every SIMD backend: member passes are independent,
//! and the α-weighted reduction runs serially in member order.
//!
//! A frozen ensemble also round-trips through a CRC-sealed `EEB1` bundle
//! ([`FrozenEnsemble::save_bundle`]/[`FrozenEnsemble::load_bundle`]), so a
//! finished [`crate::runstate::RunSession`] can be frozen from its
//! checkpoint store ([`FrozenEnsemble::freeze_run`]) and served without
//! any trainer code — the loader needs only an architecture builder.

use crate::error::{BundleError, EnsembleError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edde_data::Dataset;
use edde_nn::checkpoint::{self, CheckpointStore};
use edde_nn::infer::{with_thread_ctx, InferCtx};
use edde_nn::metrics::accuracy;
use edde_nn::Network;
use edde_tensor::ops::softmax_rows_in_place;
use edde_tensor::parallel::parallel_map;
use edde_tensor::Tensor;
use std::sync::Arc;

/// Bundle payload magic (the payload is additionally sealed in an `EDC2`
/// checksummed frame, like the `EDM2` run manifest).
const BUNDLE_MAGIC: &[u8; 4] = b"EEB1";

/// Current bundle format version.
const BUNDLE_VERSION: u32 = 1;

/// Batched eval-mode softmax of one network at temperature `tau`, on the
/// pure forward path.
///
/// This is the one soft-target engine: `tau = 1.0` is the plain
/// `predict_proba` semantics ensemble voting uses, `tau > 1.0` the
/// τ-softened teacher targets BANs distills from. Scoring runs in batches
/// of [`crate::env::eval_batch`] rows to bound the im2col working set;
/// batching never affects results. Scratch comes from `ctx`, so steady-
/// state evaluation performs no fresh allocations beyond the output.
pub fn network_soft_targets_tau(
    net: &Network,
    features: &Tensor,
    tau: f32,
    ctx: &mut InferCtx,
) -> Result<Tensor> {
    let dims = features.dims().to_vec();
    let n = dims[0];
    let row: usize = dims[1..].iter().product();
    let k = net.num_classes();
    let batch = crate::env::eval_batch();
    let mut out = Tensor::zeros(&[n, k]);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let mut bdims = dims.clone();
        bdims[0] = end - start;
        let mut chunk = ctx.alloc(&bdims);
        chunk
            .data_mut()
            .copy_from_slice(&features.data()[start * row..end * row]);
        let mut logits = net.forward(&chunk, ctx)?;
        ctx.recycle(chunk);
        // z/1.0 == z bitwise, so skipping the scale at tau = 1 keeps the
        // temperature path and the plain path on identical arithmetic.
        if tau != 1.0 {
            for z in logits.data_mut() {
                *z /= tau;
            }
        }
        softmax_rows_in_place(&mut logits)?;
        out.data_mut()[start * k..end * k].copy_from_slice(logits.data());
        ctx.recycle(logits);
        start = end;
    }
    Ok(out)
}

/// Every member's soft-target matrix, fanned out over the worker pool with
/// each worker's thread-local context; one result per network, in member
/// order.
pub(crate) fn fan_out_soft_targets(nets: &[&Network], features: &Tensor) -> Vec<Result<Tensor>> {
    parallel_map(nets, |_, net| {
        with_thread_ctx(|ctx| network_soft_targets_tau(net, features, 1.0, ctx))
    })
}

/// The serial tail of Eq. 16: α-weighted average of member soft targets,
/// renormalized by `Σα`. Fixed summation order (member order) keeps the
/// result bit-identical at every thread count.
pub(crate) fn alpha_weighted_average(probs: Vec<Result<Tensor>>, alphas: &[f32]) -> Result<Tensor> {
    let mut acc: Option<Tensor> = None;
    let mut alpha_sum = 0.0f32;
    for (p, &alpha) in probs.into_iter().zip(alphas) {
        let weighted = p?.map(|v| v * alpha);
        alpha_sum += alpha;
        acc = Some(match acc {
            None => weighted,
            Some(a) => a.zip_map(&weighted, |x, y| x + y)?,
        });
    }
    let acc = acc.ok_or(EnsembleError::EmptyEnsemble)?;
    if alpha_sum <= 0.0 {
        return Err(EnsembleError::BadConfig(
            "member weights sum to zero".into(),
        ));
    }
    Ok(acc.map(|v| v / alpha_sum))
}

/// Pool-parallel member passes plus the serial α-reduce — the full Eq. 16
/// soft vote both [`crate::EnsembleModel`] and [`FrozenEnsemble`] run on.
pub(crate) fn weighted_soft_vote(
    nets: &[&Network],
    alphas: &[f32],
    features: &Tensor,
) -> Result<Tensor> {
    alpha_weighted_average(fan_out_soft_targets(nets, features), alphas)
}

/// One frozen base model with its ensemble weight `α_t`.
#[derive(Clone)]
pub struct FrozenMember {
    network: Arc<Network>,
    alpha: f32,
    label: String,
}

impl FrozenMember {
    /// Wraps an already-shared network.
    pub fn new(network: Arc<Network>, alpha: f32, label: impl Into<String>) -> Self {
        FrozenMember {
            network,
            alpha,
            label: label.into(),
        }
    }

    /// The member network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Ensemble weight `α_t`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Human-readable tag, e.g. `"edde-3"`.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for FrozenMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenMember")
            .field("label", &self.label)
            .field("alpha", &self.alpha)
            .field("arch", &self.network.arch())
            .finish_non_exhaustive()
    }
}

/// An immutable ensemble `H_T = Σ_t α_t h_t` for serving: every method
/// takes `&self`, so one instance (or one `Arc<FrozenEnsemble>`) serves
/// concurrent batched predictions with zero member cloning.
#[derive(Clone, Default)]
pub struct FrozenEnsemble {
    members: Vec<FrozenMember>,
}

impl std::fmt::Debug for FrozenEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenEnsemble")
            .field("members", &self.members)
            .finish()
    }
}

impl FrozenEnsemble {
    /// An empty frozen ensemble.
    pub fn new() -> Self {
        FrozenEnsemble {
            members: Vec::new(),
        }
    }

    /// Adds a member.
    pub fn push(&mut self, network: Arc<Network>, alpha: f32, label: impl Into<String>) {
        self.members.push(FrozenMember::new(network, alpha, label));
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in training order.
    pub fn members(&self) -> &[FrozenMember] {
        &self.members
    }

    /// Output class count shared by every member, or `None` for an empty
    /// ensemble. All members of a well-formed ensemble agree on it (the
    /// α-reduce requires identical output shapes), so this is the live
    /// serving configuration a hot-swap candidate must match.
    pub fn num_classes(&self) -> Option<usize> {
        self.members.first().map(|m| m.network.num_classes())
    }

    /// `(arch tag, class count)` per member, in member order — a cheap
    /// structural fingerprint for logging and swap-compatibility checks.
    pub fn arch_signature(&self) -> Vec<(String, usize)> {
        self.members
            .iter()
            .map(|m| (m.network.arch().to_string(), m.network.num_classes()))
            .collect()
    }

    /// Validates `candidate` as a hot-swap replacement for `self`: it must
    /// be non-empty and agree on the output class count (callers' request
    /// and response shapes must keep working across the swap). Returns the
    /// typed [`BundleError::ArchMismatch`] describing the first offending
    /// member, so a rejected candidate can be reported without touching
    /// the live ensemble.
    pub fn validate_swap(&self, candidate: &FrozenEnsemble) -> Result<()> {
        if candidate.is_empty() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        match (self.num_classes(), candidate.num_classes()) {
            (Some(expected), Some(got)) if expected != got => {
                let arch = candidate.members[0].network.arch().to_string();
                Err(BundleError::ArchMismatch {
                    arch,
                    expected,
                    got,
                }
                .into())
            }
            _ => Ok(()),
        }
    }

    /// Freezes every completed member of a resumable run directly from its
    /// checkpoint store: `make` builds a fresh architecture-compatible
    /// network per member (its initialization is fully overwritten by the
    /// restore). The session's recorded `α_t` and labels carry over — no
    /// trainer, environment, or method code involved.
    pub fn freeze_run(
        session: &crate::runstate::RunSession<'_>,
        make: &mut dyn FnMut() -> Result<Network>,
    ) -> Result<Self> {
        let mut frozen = FrozenEnsemble::new();
        for (t, rec) in session.members().iter().enumerate() {
            let mut net = make()?;
            session.restore_network(t, &mut net)?;
            frozen.push(Arc::new(net), rec.alpha, rec.label.clone());
        }
        Ok(frozen)
    }

    /// Ensemble soft target `H_t(x)` for every row of `features`, using the
    /// first `prefix` members (pass `self.len()` for the full ensemble).
    pub fn soft_targets_prefix(&self, features: &Tensor, prefix: usize) -> Result<Tensor> {
        if prefix == 0 || prefix > self.members.len() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        let nets: Vec<&Network> = self.members[..prefix]
            .iter()
            .map(|m| m.network.as_ref())
            .collect();
        let alphas: Vec<f32> = self.members[..prefix].iter().map(|m| m.alpha).collect();
        weighted_soft_vote(&nets, &alphas, features)
    }

    /// Ensemble soft target `H_T(x)` over all members.
    pub fn soft_targets(&self, features: &Tensor) -> Result<Tensor> {
        self.soft_targets_prefix(features, self.members.len())
    }

    /// Hard predictions of the full ensemble.
    pub fn predict(&self, features: &Tensor) -> Result<Vec<usize>> {
        let probs = self.soft_targets(features)?;
        Ok(edde_tensor::ops::argmax_rows(&probs)?)
    }

    /// Ensemble test accuracy.
    pub fn accuracy(&self, data: &Dataset) -> Result<f32> {
        let probs = self.soft_targets(data.features())?;
        Ok(accuracy(&probs, data.labels())?)
    }

    /// Ensemble accuracy using only the first `prefix` members.
    pub fn accuracy_prefix(&self, data: &Dataset, prefix: usize) -> Result<f32> {
        let probs = self.soft_targets_prefix(data.features(), prefix)?;
        Ok(accuracy(&probs, data.labels())?)
    }

    /// Mean *individual* member accuracy.
    pub fn average_member_accuracy(&self, data: &Dataset) -> Result<f32> {
        if self.members.is_empty() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        let m = self.members.len();
        let accs = parallel_map(&self.members, |_, member| -> Result<f32> {
            let probs = with_thread_ctx(|ctx| {
                network_soft_targets_tau(member.network(), data.features(), 1.0, ctx)
            })?;
            Ok(accuracy(&probs, data.labels())?)
        });
        let mut total = 0.0f32;
        for a in accs {
            total += a?;
        }
        Ok(total / m as f32)
    }

    /// Each member's soft-target matrix on `features`.
    pub fn member_soft_targets(&self, features: &Tensor) -> Result<Vec<Tensor>> {
        let nets: Vec<&Network> = self.members.iter().map(|m| m.network.as_ref()).collect();
        fan_out_soft_targets(&nets, features).into_iter().collect()
    }

    /// Serializes the ensemble into an unsealed `EEB1` payload: per member,
    /// label, `α_t`, architecture tag, class count, and the full
    /// parameter-and-buffer state ([`Network::export_state`] via the same
    /// wire format checkpoints use).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(BUNDLE_MAGIC);
        buf.put_u32_le(BUNDLE_VERSION);
        buf.put_u32_le(self.members.len() as u32);
        for m in &self.members {
            put_str(&mut buf, &m.label);
            buf.put_f32_le(m.alpha);
            put_str(&mut buf, m.network.arch());
            buf.put_u32_le(m.network.num_classes() as u32);
            let blob = edde_tensor::serialize::encode_params(&m.network.export_state());
            buf.put_u64_le(blob.len() as u64);
            buf.put_slice(&blob);
        }
        buf.freeze()
    }

    /// Deserializes an `EEB1` payload. `build` constructs a fresh network
    /// for an `(arch, num_classes)` pair — the one piece of model code a
    /// serving process needs; everything else comes from the bundle.
    ///
    /// Every rejection path returns a distinct [`BundleError`] variant
    /// (wrapped in [`EnsembleError::Bundle`]): wrong magic, unsupported
    /// version, truncation at any field, a malformed member payload, or a
    /// builder whose network does not match the recorded class count.
    pub fn decode(mut buf: Bytes, build: &dyn Fn(&str, usize) -> Result<Network>) -> Result<Self> {
        if buf.remaining() < 12 {
            return Err(BundleError::Truncated("header").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != BUNDLE_MAGIC {
            return Err(BundleError::BadMagic(magic).into());
        }
        let version = buf.get_u32_le();
        if version != BUNDLE_VERSION {
            return Err(BundleError::UnsupportedVersion(version).into());
        }
        let count = buf.get_u32_le() as usize;
        let mut frozen = FrozenEnsemble::new();
        for _ in 0..count {
            let label = get_str(&mut buf, "member label")?;
            if buf.remaining() < 4 {
                return Err(BundleError::Truncated("member weight").into());
            }
            let alpha = buf.get_f32_le();
            let arch = get_str(&mut buf, "member arch tag")?;
            if buf.remaining() < 12 {
                return Err(BundleError::Truncated("member header").into());
            }
            let num_classes = buf.get_u32_le() as usize;
            let blob_len = buf.get_u64_le() as usize;
            if buf.remaining() < blob_len {
                return Err(BundleError::Truncated("member state").into());
            }
            let blob = buf.slice(..blob_len);
            buf = buf.slice(blob_len..);
            let state = edde_tensor::serialize::decode_params(blob)
                .map_err(|e| BundleError::Payload(format!("member state: {e}")))?;
            let mut net = build(&arch, num_classes)?;
            if net.num_classes() != num_classes {
                return Err(BundleError::ArchMismatch {
                    arch,
                    expected: num_classes,
                    got: net.num_classes(),
                }
                .into());
            }
            net.import_state(&state)?;
            frozen.push(Arc::new(net), alpha, label);
        }
        Ok(frozen)
    }

    /// Writes the ensemble into a store under `key`, sealed in a
    /// checksummed `EDC2` frame — a torn or bit-flipped bundle is rejected
    /// on load rather than served.
    pub fn save_bundle(&self, store: &dyn CheckpointStore, key: &str) -> Result<()> {
        store.put(key, &checkpoint::seal(&self.encode()))?;
        Ok(())
    }

    /// Loads a sealed bundle previously written by
    /// [`FrozenEnsemble::save_bundle`], verifying the frame checksum.
    pub fn load_bundle(
        store: &dyn CheckpointStore,
        key: &str,
        build: &dyn Fn(&str, usize) -> Result<Network>,
    ) -> Result<Self> {
        let payload = checkpoint::unseal(store.get(key)?)?;
        Self::decode(payload, build)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes, what: &'static str) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(BundleError::Truncated(what).into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(BundleError::Truncated(what).into());
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw)
        .map_err(|e| BundleError::Payload(format!("{what} not utf-8: {e}")).into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::checkpoint::MemStore;
    use edde_nn::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn member(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[4, 8, 3], 0.0, &mut r)
    }

    fn frozen_pair() -> FrozenEnsemble {
        let mut f = FrozenEnsemble::new();
        f.push(Arc::new(member(1)), 1.5, "a");
        f.push(Arc::new(member(2)), 0.5, "b");
        f
    }

    #[test]
    fn soft_targets_are_probabilities_and_prefix_selects() {
        let f = frozen_pair();
        let x = Tensor::ones(&[5, 4]);
        let probs = f.soft_targets(&x).unwrap();
        assert_eq!(probs.dims(), &[5, 3]);
        for i in 0..5 {
            let s: f32 = probs.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let first = f.soft_targets_prefix(&x, 1).unwrap();
        let solo =
            with_thread_ctx(|ctx| network_soft_targets_tau(f.members()[0].network(), &x, 1.0, ctx))
                .unwrap();
        // same weighted-reduce arithmetic the vote applies to one member
        assert_eq!(first.data(), solo.map(|v| (v * 1.5) / 1.5).data());
        assert_eq!(f.predict(&x).unwrap().len(), 5);
    }

    #[test]
    fn empty_and_bad_prefix_error() {
        let f = FrozenEnsemble::new();
        let x = Tensor::ones(&[1, 4]);
        assert!(f.soft_targets(&x).is_err());
        let f2 = frozen_pair();
        assert!(f2.soft_targets_prefix(&x, 0).is_err());
        assert!(f2.soft_targets_prefix(&x, 3).is_err());
    }

    #[test]
    fn bundle_round_trips_bit_exactly() {
        let f = frozen_pair();
        let store = MemStore::new();
        f.save_bundle(&store, "bundle").unwrap();
        let back = FrozenEnsemble::load_bundle(&store, "bundle", &|_, _| Ok(member(99))).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.members()[0].label(), "a");
        assert_eq!(back.members()[1].alpha(), 0.5);
        let x = Tensor::ones(&[3, 4]);
        assert_eq!(
            back.soft_targets(&x).unwrap().data(),
            f.soft_targets(&x).unwrap().data()
        );
    }

    #[test]
    fn corrupted_bundle_is_rejected() {
        let f = frozen_pair();
        let store = MemStore::new();
        f.save_bundle(&store, "bundle").unwrap();
        let mut raw = store.get("bundle").unwrap().to_vec();
        let idx = raw.len() - 5;
        raw[idx] ^= 0x40;
        store.put("bundle", &raw).unwrap();
        let err =
            FrozenEnsemble::load_bundle(&store, "bundle", &|_, _| Ok(member(99))).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // truncated payloads inside a valid frame are also rejected
        let payload = f.encode();
        for cut in [0, 3, 11, payload.len() / 2, payload.len() - 1] {
            assert!(
                FrozenEnsemble::decode(payload.slice(0..cut), &|_, _| Ok(member(0))).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_class_count_mismatch() {
        let f = frozen_pair();
        let err = FrozenEnsemble::decode(f.encode(), &|_, _| {
            let mut r = StdRng::seed_from_u64(0);
            Ok(mlp(&[4, 8, 2], 0.0, &mut r))
        })
        .unwrap_err();
        assert!(err.to_string().contains("classes"), "{err}");
    }
}
