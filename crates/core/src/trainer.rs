//! The shared weighted training loop every ensemble method drives.

use crate::error::{EnsembleError, Result};
use crate::recovery::{FaultPlan, RecoveryPolicy};
use edde_data::augment::{augment_batch, AugmentConfig};
use edde_data::{Batcher, Dataset};
use edde_nn::loss::{CrossEntropy, Distillation, DiversityDriven};
use edde_nn::optim::{LrSchedule, Sgd};
use edde_nn::{Mode, Network, NnError};
use edde_tensor::Tensor;
use rand::rngs::StdRng;

/// Which objective a training run optimizes.
///
/// The referenced soft-target matrices are aligned with the *dataset*: row
/// `i` corresponds to dataset sample `i`, and the trainer slices rows per
/// batch via the batch's original indices.
pub enum LossSpec<'a> {
    /// Plain weighted cross-entropy — the baselines' objective.
    CrossEntropy,
    /// EDDE's diversity-driven loss (Eq. 10): `ensemble_soft` holds
    /// `H_{t−1}(x_i)` for every training sample.
    Diversity {
        /// Strength γ of the diversity term.
        gamma: f32,
        /// `[N, k]` ensemble soft targets aligned with the dataset.
        ensemble_soft: &'a Tensor,
    },
    /// BANs' distillation objective; `teacher_soft` holds the previous
    /// generation's (τ-softened) soft targets.
    Distill {
        /// Weight of the soft-target term.
        lambda: f32,
        /// Softmax temperature.
        temperature: f32,
        /// `[N, k]` teacher soft targets aligned with the dataset.
        teacher_soft: &'a Tensor,
    },
}

/// Statistics of a completed training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean loss over the final epoch.
    pub final_loss: f32,
    /// Epochs actually run.
    pub epochs: usize,
    /// Divergence rollbacks performed by the [`RecoveryPolicy`]. `0` for a
    /// healthy run.
    pub rollbacks: usize,
}

/// Epoch-based mini-batch trainer with per-sample weights, LR schedules and
/// optional image augmentation.
///
/// Training takes `&self` and all mutable state (network, optimizer, RNG)
/// is caller-supplied, so one `Trainer` drives several members
/// concurrently (`Send + Sync`); see
/// [`crate::methods::EnsembleMethod::run`] on Bagging. The one exception
/// is [`Trainer::fault`]: its injected-fault step counter is shared
/// global state, so fault-injecting configurations are run one member at
/// a time.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Mini-batch size (the paper uses 50/64/128 depending on the dataset).
    pub batch_size: usize,
    /// SGD momentum (0.9 throughout).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Random crop/flip augmentation, for image tasks only.
    pub augment: Option<AugmentConfig>,
    /// Divergence recovery: epoch-boundary snapshots plus bounded
    /// rollback-and-retry with learning-rate backoff.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault injection for tests; `None` in real runs.
    pub fault: Option<FaultPlan>,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            batch_size: 64,
            momentum: 0.9,
            weight_decay: 1e-4,
            augment: None,
            recovery: RecoveryPolicy::default(),
            fault: None,
        }
    }
}

/// Whether an error is a divergence the [`RecoveryPolicy`] may retry, as
/// opposed to a configuration/shape error that retrying cannot fix.
fn is_recoverable(e: &EnsembleError) -> bool {
    matches!(
        e,
        EnsembleError::Diverged(_) | EnsembleError::Nn(NnError::NonFinite(_))
    )
}

/// Rewraps a final (unrecovered) divergence with how far recovery got.
fn divergence_with_context(e: EnsembleError, epoch: usize, rollbacks: usize) -> EnsembleError {
    EnsembleError::Diverged(format!(
        "{e} (epoch {epoch}, after {rollbacks} rollback(s); retry budget exhausted)"
    ))
}

impl Trainer {
    /// Trains `net` on `data` for `epochs` epochs.
    ///
    /// * `schedule` supplies the learning rate per epoch;
    /// * `weights`, when present, is one non-negative weight per dataset
    ///   sample (boosting's `W_t`);
    /// * `loss` selects the objective (see [`LossSpec`]).
    ///
    /// Returns an error if the loss ever becomes non-finite — divergence is
    /// surfaced, never silently trained through.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &self,
        net: &mut Network,
        data: &Dataset,
        schedule: &LrSchedule,
        epochs: usize,
        weights: Option<&[f32]>,
        loss: &LossSpec<'_>,
        rng: &mut StdRng,
    ) -> Result<TrainStats> {
        self.train_traced(net, data, schedule, epochs, weights, loss, rng, |_, _| {
            Ok(())
        })
    }

    /// Like [`Trainer::train`], but invokes `on_epoch(net, epoch)` after each
    /// completed epoch — used to snapshot models mid-run (Snapshot Ensemble)
    /// and to record accuracy-versus-epoch traces (Fig. 7).
    #[allow(clippy::too_many_arguments)]
    pub fn train_traced(
        &self,
        net: &mut Network,
        data: &Dataset,
        schedule: &LrSchedule,
        epochs: usize,
        weights: Option<&[f32]>,
        loss: &LossSpec<'_>,
        rng: &mut StdRng,
        mut on_epoch: impl FnMut(&mut Network, usize) -> Result<()>,
    ) -> Result<TrainStats> {
        if let Some(w) = weights {
            if w.len() != data.len() {
                return Err(EnsembleError::DataMismatch(format!(
                    "{} weights for {} samples",
                    w.len(),
                    data.len()
                )));
            }
        }
        self.validate_aligned(data, loss)?;
        self.recovery.validate().map_err(EnsembleError::BadConfig)?;
        let batcher = Batcher::new(self.batch_size);
        let mut opt = Sgd::new(
            schedule.lr_at(0).max(1e-8),
            self.momentum,
            self.weight_decay,
        );
        let ce = CrossEntropy::new();
        let mut final_loss = 0.0f32;
        let mut lr_scale = 1.0f32;
        let mut rollbacks = 0usize;
        let mut retries_left = self.recovery.max_retries;
        let mut epoch = 0usize;
        while epoch < epochs {
            // Snapshot model + optimizer momentum + RNG at the epoch
            // boundary so a divergent epoch can be replayed (with a smaller
            // learning rate) from exactly this point.
            let snapshot = if retries_left > 0 {
                Some((net.export_state(), opt.clone(), rng.clone()))
            } else {
                None
            };
            opt.set_lr((schedule.lr_at(epoch) * lr_scale).max(1e-8));
            match self.run_one_epoch(
                net, data, &batcher, &mut opt, &ce, weights, loss, rng, epoch,
            ) {
                Ok(epoch_loss) => {
                    final_loss = epoch_loss;
                    on_epoch(net, epoch)?;
                    epoch += 1;
                }
                Err(e) if is_recoverable(&e) => {
                    let Some((state, snap_opt, snap_rng)) = snapshot else {
                        return Err(divergence_with_context(e, epoch, rollbacks));
                    };
                    net.import_state(&state)?;
                    opt = snap_opt;
                    *rng = snap_rng;
                    retries_left -= 1;
                    rollbacks += 1;
                    lr_scale *= self.recovery.lr_backoff;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(TrainStats {
            final_loss,
            epochs,
            rollbacks,
        })
    }

    /// One pass over the data. Returns the mean loss, or a divergence /
    /// hard error. Leaves rollback decisions to the caller.
    #[allow(clippy::too_many_arguments)]
    fn run_one_epoch(
        &self,
        net: &mut Network,
        data: &Dataset,
        batcher: &Batcher,
        opt: &mut Sgd,
        ce: &CrossEntropy,
        weights: Option<&[f32]>,
        loss: &LossSpec<'_>,
        rng: &mut StdRng,
        epoch: usize,
    ) -> Result<f32> {
        let mut epoch_loss = 0.0f64;
        let batches = batcher.epoch(data, rng);
        let n_batches = batches.len().max(1);
        for batch in batches {
            let features = match &self.augment {
                Some(cfg) if batch.features.rank() == 4 => {
                    augment_batch(&batch.features, cfg, rng)?
                }
                _ => batch.features.clone(),
            };
            let batch_weights: Option<Vec<f32>> =
                weights.map(|w| batch.indices.iter().map(|&i| w[i]).collect());
            net.zero_grad();
            let logits = net.forward(&features, Mode::Train)?;
            let out = match loss {
                LossSpec::CrossEntropy => {
                    ce.compute(&logits, &batch.labels, batch_weights.as_deref())?
                }
                LossSpec::Diversity {
                    gamma,
                    ensemble_soft,
                } => {
                    let targets = ensemble_soft.index_select0(&batch.indices)?;
                    DiversityDriven::new(*gamma).compute(
                        &logits,
                        &batch.labels,
                        batch_weights.as_deref(),
                        &targets,
                    )?
                }
                LossSpec::Distill {
                    lambda,
                    temperature,
                    teacher_soft,
                } => {
                    let targets = teacher_soft.index_select0(&batch.indices)?;
                    Distillation::new(*lambda, *temperature).compute(
                        &logits,
                        &batch.labels,
                        &targets,
                    )?
                }
            };
            let mut batch_loss = out.loss;
            if let Some(fault) = &self.fault {
                if fault.corrupt_this_step() {
                    batch_loss = f32::NAN;
                }
            }
            if !batch_loss.is_finite() {
                return Err(EnsembleError::Diverged(format!(
                    "non-finite loss at epoch {epoch}"
                )));
            }
            net.backward(&out.grad_logits)?;
            if let Some(limit) = self.recovery.grad_norm_limit {
                let mut sq = 0.0f64;
                net.visit_params(&mut |_, p| {
                    sq += p
                        .grad
                        .data()
                        .iter()
                        .map(|&g| f64::from(g) * f64::from(g))
                        .sum::<f64>();
                });
                let norm = sq.sqrt() as f32;
                if !norm.is_finite() || norm > limit {
                    return Err(EnsembleError::Diverged(format!(
                        "gradient norm {norm} exceeds limit {limit} at epoch {epoch}"
                    )));
                }
            }
            opt.step(net)?;
            epoch_loss += f64::from(batch_loss);
        }
        Ok((epoch_loss / n_batches as f64) as f32)
    }

    fn validate_aligned(&self, data: &Dataset, loss: &LossSpec<'_>) -> Result<()> {
        let check = |t: &Tensor, what: &str| -> Result<()> {
            if t.rank() != 2 || t.dims()[0] != data.len() || t.dims()[1] != data.num_classes() {
                return Err(EnsembleError::DataMismatch(format!(
                    "{what} must be [{}, {}], got {:?}",
                    data.len(),
                    data.num_classes(),
                    t.dims()
                )));
            }
            Ok(())
        };
        match loss {
            LossSpec::CrossEntropy => Ok(()),
            LossSpec::Diversity { ensemble_soft, .. } => {
                check(ensemble_soft, "ensemble soft targets")
            }
            LossSpec::Distill { teacher_soft, .. } => check(teacher_soft, "teacher soft targets"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{FaultPlan, RecoveryPolicy};
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use rand::SeedableRng;

    fn blob_env() -> (Dataset, Dataset) {
        let cfg = GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 40,
            test_per_class: 20,
            spread: 0.6,
        };
        let tt = gaussian_blobs(&cfg, 11);
        (tt.train, tt.test)
    }

    #[test]
    fn cross_entropy_training_reaches_high_accuracy() {
        let (train, test) = blob_env();
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&[6, 32, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let schedule = LrSchedule::paper_step(0.1, 20);
        let stats = trainer
            .train(
                &mut net,
                &train,
                &schedule,
                20,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stats.epochs, 20);
        let probs = net.predict_proba(test.features()).unwrap();
        let acc = edde_nn::metrics::accuracy(&probs, test.labels()).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn sample_weights_shift_the_decision() {
        // Weight class 0 a hundred times heavier; the model should rarely
        // misclassify class-0 test points even at the expense of others.
        let (train, test) = blob_env();
        let weights: Vec<f32> = train
            .labels()
            .iter()
            .map(|&y| if y == 0 { 10.0 } else { 0.1 })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let schedule = LrSchedule::Constant { base: 0.05 };
        trainer
            .train(
                &mut net,
                &train,
                &schedule,
                10,
                Some(&weights),
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        let preds = net.predict(test.features()).unwrap();
        let class0_correct = preds
            .iter()
            .zip(test.labels())
            .filter(|(_, &y)| y == 0)
            .filter(|(p, y)| p == y)
            .count();
        let class0_total = test.labels().iter().filter(|&&y| y == 0).count();
        assert!(class0_correct as f32 / class0_total as f32 > 0.9);
    }

    #[test]
    fn weight_length_mismatch_is_rejected() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer::default();
        let err = trainer.train(
            &mut net,
            &train,
            &LrSchedule::Constant { base: 0.1 },
            1,
            Some(&[1.0, 2.0]),
            &LossSpec::CrossEntropy,
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn misaligned_soft_targets_are_rejected() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer::default();
        let bad = Tensor::zeros(&[5, 3]);
        let err = trainer.train(
            &mut net,
            &train,
            &LrSchedule::Constant { base: 0.1 },
            1,
            None,
            &LossSpec::Diversity {
                gamma: 0.1,
                ensemble_soft: &bad,
            },
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn diversity_loss_trains_and_stays_finite() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        // uniform ensemble targets
        let soft = Tensor::full(&[train.len(), 3], 1.0 / 3.0);
        let trainer = Trainer {
            batch_size: 32,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let stats = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.05 },
                5,
                None,
                &LossSpec::Diversity {
                    gamma: 0.2,
                    ensemble_soft: &soft,
                },
                &mut rng,
            )
            .unwrap();
        assert!(stats.final_loss.is_finite());
    }

    #[test]
    fn injected_nan_loss_is_recovered_by_rollback() {
        let (train, test) = blob_env();
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = mlp(&[6, 32, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            fault: Some(FaultPlan::nan_loss_at_step(12)),
            ..Trainer::default()
        };
        let schedule = LrSchedule::paper_step(0.1, 20);
        let stats = trainer
            .train(
                &mut net,
                &train,
                &schedule,
                20,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.epochs, 20);
        // Training still works after the rollback.
        let probs = net.predict_proba(test.features()).unwrap();
        let acc = edde_nn::metrics::accuracy(&probs, test.labels()).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn divergence_surfaces_once_retry_budget_is_exhausted() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            recovery: RecoveryPolicy {
                max_retries: 0,
                ..RecoveryPolicy::default()
            },
            fault: Some(FaultPlan::nan_loss_at_step(0)),
            ..Trainer::default()
        };
        let err = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                3,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EnsembleError::Diverged(_)), "{err}");
        assert!(err.to_string().contains("retry budget"), "{err}");
    }

    #[test]
    fn recovered_run_matches_clean_run_when_fault_replay_is_clean() {
        // A NaN injected once (monotonic step counter) is absent from the
        // replay; with the schedule-scale untouched for earlier epochs and
        // identical RNG restoration, the *first* divergent epoch replays on
        // the same batches. The run must complete and stay deterministic
        // given the same seed + fault plan.
        let (train, _) = blob_env();
        let run = || {
            let mut rng = StdRng::seed_from_u64(8);
            let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
            let trainer = Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                fault: Some(FaultPlan::nan_loss_at_step(5)),
                ..Trainer::default()
            };
            trainer
                .train(
                    &mut net,
                    &train,
                    &LrSchedule::Constant { base: 0.05 },
                    4,
                    None,
                    &LossSpec::CrossEntropy,
                    &mut rng,
                )
                .unwrap();
            net.export_state()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_norm_limit_triggers_recovery() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        // An absurdly tight limit: every step "diverges", so the retry
        // budget must run out.
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            recovery: RecoveryPolicy {
                max_retries: 2,
                grad_norm_limit: Some(1e-12),
                ..RecoveryPolicy::default()
            },
            ..Trainer::default()
        };
        let err = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                3,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EnsembleError::Diverged(_)), "{err}");
        assert!(err.to_string().contains("gradient norm"), "{err}");
    }

    #[test]
    fn invalid_recovery_policy_is_rejected() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer {
            recovery: RecoveryPolicy {
                lr_backoff: 2.0,
                ..RecoveryPolicy::default()
            },
            ..Trainer::default()
        };
        let err = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                1,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EnsembleError::BadConfig(_)), "{err}");
    }

    #[test]
    fn distillation_pulls_student_toward_teacher() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(5);
        // teacher: a trained model's soft targets
        let mut teacher = mlp(&[6, 32, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        trainer
            .train(
                &mut teacher,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                10,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        let teacher_soft = teacher.predict_proba(train.features()).unwrap();
        let mut student = mlp(&[6, 32, 3], 0.0, &mut rng);
        trainer
            .train(
                &mut student,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                10,
                None,
                &LossSpec::Distill {
                    lambda: 0.9,
                    temperature: 1.0,
                    teacher_soft: &teacher_soft,
                },
                &mut rng,
            )
            .unwrap();
        // student's probabilities should be closer to the teacher's than a
        // random network's are
        let student_soft = student.predict_proba(train.features()).unwrap();
        let mut random = mlp(&[6, 32, 3], 0.0, &mut rng);
        let random_soft = random.predict_proba(train.features()).unwrap();
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data().iter())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(dist(&student_soft, &teacher_soft) < dist(&random_soft, &teacher_soft));
    }
}
