//! The shared weighted training loop every ensemble method drives.
//!
//! [`TrainLoop`] is an epoch-granular state machine. Each iteration
//! captures the epoch-boundary state **once** (model parameters +
//! optimizer momentum, plus the RNG stream in legacy mode), optionally
//! persists it as a [`crate::runstate::MemberProgress`] checkpoint, runs
//! one epoch, and emits typed [`TrainEvent`]s to registered
//! [`TrainObserver`]s. One captured state serves both consumers that used
//! to snapshot separately: divergence recovery (rollback + LR backoff) and
//! mid-member checkpoint/resume.
//!
//! Event ordering guarantee, per epoch-boundary `e`:
//!
//! 1. [`TrainEvent::CheckpointWritten`] — iff persistence is configured,
//!    `e > 0`, and `e` lands on the checkpoint cadence (re-fired after a
//!    rollback re-enters the same boundary);
//! 2. [`TrainEvent::EpochStarted`] with the epoch's effective LR;
//! 3. either [`TrainEvent::EpochCompleted`], or
//!    [`TrainEvent::Diverged`] followed by [`TrainEvent::RolledBack`]
//!    (when retry budget remains — otherwise the divergence error
//!    returns and no further event fires).
//!
//! Observers never see a partially applied epoch: a diverged epoch's
//! effects are rolled back before `RolledBack` is emitted.

use crate::env::EddeConfig;
use crate::error::{EnsembleError, Result};
use crate::recovery::{FaultPlan, RecoveryPolicy};
use crate::runstate::{self, MemberProgress, ProgressParts};
use edde_data::augment::{augment_batch, AugmentConfig};
use edde_data::{Batcher, Dataset};
use edde_nn::checkpoint::{self, CheckpointStore};
use edde_nn::loss::{CrossEntropy, Distillation, DiversityDriven};
use edde_nn::optim::{LrSchedule, Sgd};
use edde_nn::{Mode, Network, NnError};
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which objective a training run optimizes.
///
/// The referenced soft-target matrices are aligned with the *dataset*: row
/// `i` corresponds to dataset sample `i`, and the trainer slices rows per
/// batch via the batch's original indices.
pub enum LossSpec<'a> {
    /// Plain weighted cross-entropy — the baselines' objective.
    CrossEntropy,
    /// EDDE's diversity-driven loss (Eq. 10): `ensemble_soft` holds
    /// `H_{t−1}(x_i)` for every training sample.
    Diversity {
        /// Strength γ of the diversity term.
        gamma: f32,
        /// `[N, k]` ensemble soft targets aligned with the dataset.
        ensemble_soft: &'a Tensor,
    },
    /// BANs' distillation objective; `teacher_soft` holds the previous
    /// generation's (τ-softened) soft targets.
    Distill {
        /// Weight of the soft-target term.
        lambda: f32,
        /// Softmax temperature.
        temperature: f32,
        /// `[N, k]` teacher soft targets aligned with the dataset.
        teacher_soft: &'a Tensor,
    },
}

/// Statistics of a completed training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStats {
    /// Mean loss over the final epoch.
    pub final_loss: f32,
    /// Epochs actually run.
    pub epochs: usize,
    /// Divergence rollbacks performed by the [`RecoveryPolicy`]. `0` for a
    /// healthy run.
    pub rollbacks: usize,
}

/// Epoch-based mini-batch trainer with per-sample weights, LR schedules and
/// optional image augmentation.
///
/// Training takes `&self` and all mutable state (network, optimizer, RNG)
/// is caller-supplied, so one `Trainer` drives several members
/// concurrently (`Send + Sync`); see
/// [`crate::methods::EnsembleMethod::run`] on Bagging. The one exception
/// is [`Trainer::fault`]: its injected-fault step counter is shared
/// global state, so fault-injecting configurations are run one member at
/// a time.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Mini-batch size (the paper uses 50/64/128 depending on the dataset).
    pub batch_size: usize,
    /// SGD momentum (0.9 throughout).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Random crop/flip augmentation, for image tasks only.
    pub augment: Option<AugmentConfig>,
    /// Divergence recovery: epoch-boundary snapshots plus bounded
    /// rollback-and-retry with learning-rate backoff.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault injection for tests; `None` in real runs.
    pub fault: Option<FaultPlan>,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            batch_size: 64,
            momentum: 0.9,
            weight_decay: 1e-4,
            augment: None,
            recovery: RecoveryPolicy::default(),
            fault: None,
        }
    }
}

/// Whether an error is a divergence the [`RecoveryPolicy`] may retry, as
/// opposed to a configuration/shape error that retrying cannot fix.
fn is_recoverable(e: &EnsembleError) -> bool {
    matches!(
        e,
        EnsembleError::Diverged(_) | EnsembleError::Nn(NnError::NonFinite(_))
    )
}

/// Rewraps a final (unrecovered) divergence with how far recovery got.
fn divergence_with_context(e: EnsembleError, epoch: usize, rollbacks: usize) -> EnsembleError {
    EnsembleError::Diverged(format!(
        "{e} (epoch {epoch}, after {rollbacks} rollback(s); retry budget exhausted)"
    ))
}

/// A typed notification from one [`TrainLoop`] iteration. See the module
/// docs for the per-boundary ordering guarantee.
pub enum TrainEvent<'a> {
    /// An epoch is about to run, with its effective (backoff-scaled)
    /// learning rate.
    EpochStarted {
        /// 0-based epoch index.
        epoch: usize,
        /// The learning rate this epoch trains with.
        lr: f32,
    },
    /// An epoch finished cleanly. `net` gives observers mid-run model
    /// access (Snapshot-style snapshots, Fig. 7 accuracy traces).
    EpochCompleted {
        /// 0-based epoch index.
        epoch: usize,
        /// Mean loss over the epoch.
        mean_loss: f32,
        /// The live network, after this epoch's updates.
        net: &'a mut Network,
    },
    /// An epoch diverged (non-finite loss or gradient-norm breach).
    Diverged {
        /// 0-based epoch index that diverged.
        epoch: usize,
        /// Human-readable divergence description.
        detail: &'a str,
    },
    /// The diverged epoch was rolled back to its boundary state and will
    /// be retried with a scaled-down learning rate.
    RolledBack {
        /// 0-based epoch index being retried.
        epoch: usize,
        /// Cumulative learning-rate backoff scale now in effect.
        lr_scale: f32,
        /// Remaining retry budget.
        retries_left: usize,
    },
    /// A [`MemberProgress`] record was persisted at an epoch boundary.
    CheckpointWritten {
        /// Epochs completed at the persisted boundary.
        epochs_done: usize,
        /// Store key the record was written under.
        key: &'a str,
    },
}

/// A registered consumer of [`TrainEvent`]s. An observer error aborts the
/// run (it surfaces exactly like the old `on_epoch` callback's error).
pub trait TrainObserver {
    /// Handles one event.
    fn on_event(&mut self, event: TrainEvent<'_>) -> Result<()>;
}

impl<F> TrainObserver for F
where
    F: FnMut(TrainEvent<'_>) -> Result<()>,
{
    fn on_event(&mut self, event: TrainEvent<'_>) -> Result<()> {
        self(event)
    }
}

/// How a [`TrainLoop`] consumes randomness.
pub enum TrainRng<'a> {
    /// Legacy protocol: one caller-owned stream threaded through every
    /// epoch (shuffles, augmentation). Bit-identical to the pre-`TrainLoop`
    /// trainer; required by plain (non-resumable) method runs, whose draw
    /// sequences are pinned by statistical tests. Cannot be combined with
    /// epoch checkpoints — the stream's mid-member state is not
    /// reconstructible from a seed.
    Threaded(&'a mut StdRng),
    /// Epoch-derived protocol ([`crate::runstate::RunProtocol::PerEpoch`]):
    /// epoch `e` draws from a fresh stream seeded with
    /// [`runstate::epoch_seed`]`(seed, e)`, so any epoch's randomness is a
    /// pure function of `(seed, e)` — the property mid-member resume needs.
    PerEpoch {
        /// The member's RNG root seed ([`runstate::member_seed`]).
        seed: u64,
    },
}

impl TrainRng<'_> {
    fn root_seed(&self) -> Option<u64> {
        match self {
            TrainRng::Threaded(_) => None,
            TrainRng::PerEpoch { seed } => Some(*seed),
        }
    }
}

/// Epoch-granular persistence configuration for a [`TrainLoop`]: where and
/// how often to write the member's [`MemberProgress`] record, and the
/// binding metadata a resume must match.
pub struct EpochCheckpoints<'a> {
    /// Destination store.
    pub store: &'a dyn CheckpointStore,
    /// Store key of the progress record
    /// ([`crate::runstate::RunSession::progress_key`]).
    pub key: String,
    /// Member index, bound into the record.
    pub member: usize,
    /// Run configuration fingerprint, bound into the record.
    pub fingerprint: u64,
    /// Write cadence in epochs (1 = every epoch boundary).
    pub every: usize,
    /// Persist progress through the chunk store
    /// ([`edde_nn::chunkstore`]) instead of one whole-blob record: model
    /// tensors become exact-f32 codec streams split into sealed chunks
    /// (chunk sealing fans over the worker pool), with the `EDS1` index
    /// record — carrying the progress header and optimizer state —
    /// written under [`EpochCheckpoints::key`]. Resume auto-detects the
    /// format from the record's magic, so flipping this between runs is
    /// safe; a torn or missing chunk restarts the member at epoch 0,
    /// exactly like a torn whole-blob record.
    pub sharded: bool,
    /// Runtime configuration, resolved once at construction. Sharded
    /// writes use its `chunk_bytes` on every epoch boundary instead of
    /// re-reading `EDDE_CHUNK_BYTES` per write.
    pub config: EddeConfig,
}

const CE_LOSS: &LossSpec<'static> = &LossSpec::CrossEntropy;

/// The epoch-granular training state machine. Builder-style configuration
/// over one [`Trainer`]; [`TrainLoop::run`] consumes it.
pub struct TrainLoop<'a> {
    trainer: &'a Trainer,
    data: &'a Dataset,
    schedule: &'a LrSchedule,
    epochs: usize,
    weights: Option<&'a [f32]>,
    loss: &'a LossSpec<'a>,
    observers: Vec<&'a mut dyn TrainObserver>,
    checkpoints: Option<EpochCheckpoints<'a>>,
}

impl<'a> TrainLoop<'a> {
    /// A loop over `epochs` epochs of `data` with plain cross-entropy, no
    /// observers and no persistence.
    pub fn new(
        trainer: &'a Trainer,
        data: &'a Dataset,
        schedule: &'a LrSchedule,
        epochs: usize,
    ) -> Self {
        TrainLoop {
            trainer,
            data,
            schedule,
            epochs,
            weights: None,
            loss: CE_LOSS,
            observers: Vec::new(),
            checkpoints: None,
        }
    }

    /// Per-sample weights (boosting's `W_t`); `None` trains unweighted.
    pub fn weights(mut self, weights: Option<&'a [f32]>) -> Self {
        self.weights = weights;
        self
    }

    /// The training objective (default [`LossSpec::CrossEntropy`]).
    pub fn loss(mut self, loss: &'a LossSpec<'a>) -> Self {
        self.loss = loss;
        self
    }

    /// Registers an observer. Observers are notified in registration order.
    pub fn observe(mut self, observer: &'a mut dyn TrainObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Enables epoch-granular [`MemberProgress`] persistence. Requires
    /// [`TrainRng::PerEpoch`] at [`TrainLoop::run`] time; if the store
    /// already holds a progress record under the configured key (matching
    /// member, fingerprint, seed and budget), the run resumes from it
    /// bit-exactly instead of restarting at epoch 0.
    pub fn checkpoint(mut self, checkpoints: EpochCheckpoints<'a>) -> Self {
        self.checkpoints = Some(checkpoints);
        self
    }

    /// Runs the loop to completion, resuming from a persisted progress
    /// record when one is configured and present.
    pub fn run(mut self, net: &mut Network, mut rng: TrainRng<'_>) -> Result<TrainStats> {
        let trainer = self.trainer;
        if let Some(w) = self.weights {
            if w.len() != self.data.len() {
                return Err(EnsembleError::DataMismatch(format!(
                    "{} weights for {} samples",
                    w.len(),
                    self.data.len()
                )));
            }
        }
        trainer.validate_aligned(self.data, self.loss)?;
        trainer
            .recovery
            .validate()
            .map_err(EnsembleError::BadConfig)?;
        if let Some(c) = &self.checkpoints {
            if c.every == 0 {
                return Err(EnsembleError::BadConfig(
                    "epoch checkpoint cadence must be >= 1".into(),
                ));
            }
            if rng.root_seed().is_none() {
                return Err(EnsembleError::BadConfig(
                    "epoch checkpoints require TrainRng::PerEpoch (a threaded RNG stream's \
                     mid-member state cannot be reconstructed on resume)"
                        .into(),
                ));
            }
        }
        let batcher = Batcher::new(trainer.batch_size);
        let mut opt = Sgd::new(
            self.schedule.lr_at(0).max(1e-8),
            trainer.momentum,
            trainer.weight_decay,
        );
        let ce = CrossEntropy::new();
        let mut final_loss = 0.0f32;
        let mut lr_scale = 1.0f32;
        let mut rollbacks = 0usize;
        let mut retries_left = trainer.recovery.max_retries;
        let mut epoch = 0usize;

        // ---- resume from a persisted progress record, if any ----
        if let Some(c) = &self.checkpoints {
            if c.store.contains(&c.key) {
                let seed = rng.root_seed().expect("checked above");
                // Progress records are written with relaxed durability, so
                // a crash can leave a torn frame behind; the checksum
                // catches it and the member simply restarts at epoch 0. A
                // record that reads back fine but belongs to another run
                // (member, fingerprint, seed, or budget mismatch) is
                // refused instead — that is operator error, not data loss.
                let decoded = checkpoint::get_sealed(c.store, &c.key)
                    .map_err(EnsembleError::from)
                    .and_then(|payload| decode_progress_record(c.store, payload));
                if let Ok(progress) = decoded {
                    progress.validate_binding(c.member, c.fingerprint, seed, self.epochs)?;
                    net.import_state(&progress.net_state)?;
                    opt.import_state(progress.opt_state.clone())?;
                    epoch = progress.epochs_done;
                    lr_scale = progress.lr_scale;
                    rollbacks = progress.rollbacks;
                    retries_left = progress.retries_left;
                    final_loss = progress.final_loss;
                }
            }
        }

        while epoch < self.epochs {
            // Capture the epoch-boundary state once; it serves both the
            // divergence rollback and the persisted progress record.
            let persist_now = self
                .checkpoints
                .as_ref()
                .is_some_and(|c| epoch > 0 && epoch.is_multiple_of(c.every));
            let need_rollback = retries_left > 0;
            let boundary_state = (need_rollback || persist_now).then(|| net.export_state());
            let mut boundary_opt = need_rollback.then(|| opt.clone());
            let mut boundary_rng = match (&rng, need_rollback) {
                (TrainRng::Threaded(r), true) => Some((**r).clone()),
                _ => None,
            };
            if persist_now {
                let c = self.checkpoints.as_ref().expect("persist_now");
                let state = boundary_state.as_deref().expect("captured above");
                // Relaxed durability either way: a crash losing this write
                // only costs resuming one boundary earlier, which is not
                // worth an fsync per epoch.
                if c.sharded {
                    let header = runstate::encode_progress(&ProgressParts {
                        member: c.member,
                        fingerprint: c.fingerprint,
                        rng_seed: rng.root_seed().expect("PerEpoch enforced"),
                        total_epochs: self.epochs,
                        epochs_done: epoch,
                        rollbacks,
                        retries_left,
                        lr_scale,
                        final_loss,
                        net_state: &[],
                        opt_state: &opt.export_state(),
                    });
                    let chain = edde_tensor::codec::CodecChain::f32();
                    let parts: Vec<(String, Vec<usize>, Vec<u8>)> = state
                        .iter()
                        .map(|(name, t)| {
                            let coded = edde_tensor::codec::encode(t.data(), &chain)
                                .map_err(|e| crate::error::BundleError::codec(name.clone(), e))?;
                            Ok((name.clone(), t.dims().to_vec(), coded))
                        })
                        .collect::<Result<_>>()?;
                    edde_nn::chunkstore::write_member_chunks_with(
                        c.store,
                        c.member,
                        &c.key,
                        &header,
                        &parts,
                        true,
                        c.config.chunk_bytes,
                    )?;
                } else {
                    let payload = runstate::encode_progress(&ProgressParts {
                        member: c.member,
                        fingerprint: c.fingerprint,
                        rng_seed: rng.root_seed().expect("PerEpoch enforced"),
                        total_epochs: self.epochs,
                        epochs_done: epoch,
                        rollbacks,
                        retries_left,
                        lr_scale,
                        final_loss,
                        net_state: state,
                        opt_state: &opt.export_state(),
                    });
                    checkpoint::put_sealed_relaxed(c.store, &c.key, &payload)?;
                }
                for obs in self.observers.iter_mut() {
                    obs.on_event(TrainEvent::CheckpointWritten {
                        epochs_done: epoch,
                        key: &c.key,
                    })?;
                }
            }
            opt.set_lr((self.schedule.lr_at(epoch) * lr_scale).max(1e-8));
            for obs in self.observers.iter_mut() {
                obs.on_event(TrainEvent::EpochStarted {
                    epoch,
                    lr: opt.lr(),
                })?;
            }
            let outcome = {
                let mut derived;
                let epoch_rng: &mut StdRng = match &mut rng {
                    TrainRng::Threaded(r) => r,
                    TrainRng::PerEpoch { seed } => {
                        derived = StdRng::seed_from_u64(runstate::epoch_seed(*seed, epoch));
                        &mut derived
                    }
                };
                trainer.run_one_epoch(
                    net,
                    self.data,
                    &batcher,
                    &mut opt,
                    &ce,
                    self.weights,
                    self.loss,
                    epoch_rng,
                    epoch,
                )
            };
            match outcome {
                Ok(epoch_loss) => {
                    final_loss = epoch_loss;
                    for obs in self.observers.iter_mut() {
                        obs.on_event(TrainEvent::EpochCompleted {
                            epoch,
                            mean_loss: epoch_loss,
                            net,
                        })?;
                    }
                    epoch += 1;
                }
                Err(e) if is_recoverable(&e) => {
                    let detail = e.to_string();
                    for obs in self.observers.iter_mut() {
                        obs.on_event(TrainEvent::Diverged {
                            epoch,
                            detail: &detail,
                        })?;
                    }
                    if !need_rollback {
                        return Err(divergence_with_context(e, epoch, rollbacks));
                    }
                    net.import_state(boundary_state.as_ref().expect("need_rollback"))?;
                    opt = boundary_opt.take().expect("need_rollback");
                    if let (TrainRng::Threaded(r), Some(snap)) = (&mut rng, boundary_rng.take()) {
                        **r = snap;
                    }
                    retries_left -= 1;
                    rollbacks += 1;
                    lr_scale *= trainer.recovery.lr_backoff;
                    for obs in self.observers.iter_mut() {
                        obs.on_event(TrainEvent::RolledBack {
                            epoch,
                            lr_scale,
                            retries_left,
                        })?;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(TrainStats {
            final_loss,
            epochs: self.epochs,
            rollbacks,
        })
    }
}

/// Decodes a progress record in either persisted form, dispatching on the
/// unsealed payload's magic: a whole-blob `EDP1` record decodes directly;
/// an `EDS1` index record pulls the progress header from its meta blob and
/// reassembles the model state from the chunk grid. Any chunk-level
/// failure surfaces as an error, which the resume path treats like a torn
/// record (restart at epoch 0).
fn decode_progress_record(
    store: &dyn CheckpointStore,
    payload: bytes::Bytes,
) -> Result<MemberProgress> {
    use edde_nn::chunkstore::{self, ChunkIndex, INDEX_MAGIC};
    if payload.len() < 4 || &payload[..4] != INDEX_MAGIC {
        return MemberProgress::decode(payload);
    }
    let index = ChunkIndex::decode(payload).map_err(EnsembleError::from)?;
    let mut progress = MemberProgress::decode(index.meta.clone())?;
    let mut state = Vec::with_capacity(index.parts.len());
    for (p, part) in index.parts.iter().enumerate() {
        let stream = chunkstore::read_part(store, &index, p).map_err(EnsembleError::from)?;
        let vals = edde_tensor::codec::decode_f32(&stream)
            .map_err(|e| crate::error::BundleError::codec(part.name.clone(), e))?;
        state.push((part.name.clone(), Tensor::from_vec(vals, &part.dims)?));
    }
    progress.net_state = state;
    Ok(progress)
}

impl Trainer {
    /// Trains `net` on `data` for `epochs` epochs.
    ///
    /// * `schedule` supplies the learning rate per epoch;
    /// * `weights`, when present, is one non-negative weight per dataset
    ///   sample (boosting's `W_t`);
    /// * `loss` selects the objective (see [`LossSpec`]).
    ///
    /// Returns an error if the loss ever becomes non-finite — divergence is
    /// surfaced, never silently trained through.
    ///
    /// This is the observer-free [`TrainLoop`] convenience over a
    /// caller-threaded RNG stream ([`TrainRng::Threaded`]), bit-identical
    /// to the historical trainer.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &self,
        net: &mut Network,
        data: &Dataset,
        schedule: &LrSchedule,
        epochs: usize,
        weights: Option<&[f32]>,
        loss: &LossSpec<'_>,
        rng: &mut StdRng,
    ) -> Result<TrainStats> {
        TrainLoop::new(self, data, schedule, epochs)
            .weights(weights)
            .loss(loss)
            .run(net, TrainRng::Threaded(rng))
    }

    /// One pass over the data. Returns the mean loss, or a divergence /
    /// hard error. Leaves rollback decisions to the caller.
    #[allow(clippy::too_many_arguments)]
    fn run_one_epoch(
        &self,
        net: &mut Network,
        data: &Dataset,
        batcher: &Batcher,
        opt: &mut Sgd,
        ce: &CrossEntropy,
        weights: Option<&[f32]>,
        loss: &LossSpec<'_>,
        rng: &mut StdRng,
        epoch: usize,
    ) -> Result<f32> {
        let mut epoch_loss = 0.0f64;
        let batches = batcher.epoch(data, rng);
        let n_batches = batches.len().max(1);
        for batch in batches {
            let features = match &self.augment {
                Some(cfg) if batch.features.rank() == 4 => {
                    augment_batch(&batch.features, cfg, rng)?
                }
                _ => batch.features.clone(),
            };
            let batch_weights: Option<Vec<f32>> =
                weights.map(|w| batch.indices.iter().map(|&i| w[i]).collect());
            net.zero_grad();
            let logits = net.train_forward(&features, Mode::Train)?;
            let out = match loss {
                LossSpec::CrossEntropy => {
                    ce.compute(&logits, &batch.labels, batch_weights.as_deref())?
                }
                LossSpec::Diversity {
                    gamma,
                    ensemble_soft,
                } => {
                    let targets = ensemble_soft.index_select0(&batch.indices)?;
                    DiversityDriven::new(*gamma).compute(
                        &logits,
                        &batch.labels,
                        batch_weights.as_deref(),
                        &targets,
                    )?
                }
                LossSpec::Distill {
                    lambda,
                    temperature,
                    teacher_soft,
                } => {
                    let targets = teacher_soft.index_select0(&batch.indices)?;
                    Distillation::new(*lambda, *temperature).compute(
                        &logits,
                        &batch.labels,
                        &targets,
                    )?
                }
            };
            let mut batch_loss = out.loss;
            if let Some(fault) = &self.fault {
                if fault.corrupt_this_step() {
                    batch_loss = f32::NAN;
                }
            }
            if !batch_loss.is_finite() {
                return Err(EnsembleError::Diverged(format!(
                    "non-finite loss at epoch {epoch}"
                )));
            }
            net.backward(&out.grad_logits)?;
            if let Some(limit) = self.recovery.grad_norm_limit {
                let mut sq = 0.0f64;
                net.visit_params(&mut |_, p| {
                    sq += p
                        .grad
                        .data()
                        .iter()
                        .map(|&g| f64::from(g) * f64::from(g))
                        .sum::<f64>();
                });
                let norm = sq.sqrt() as f32;
                if !norm.is_finite() || norm > limit {
                    return Err(EnsembleError::Diverged(format!(
                        "gradient norm {norm} exceeds limit {limit} at epoch {epoch}"
                    )));
                }
            }
            opt.step(net)?;
            epoch_loss += f64::from(batch_loss);
        }
        Ok((epoch_loss / n_batches as f64) as f32)
    }

    fn validate_aligned(&self, data: &Dataset, loss: &LossSpec<'_>) -> Result<()> {
        let check = |t: &Tensor, what: &str| -> Result<()> {
            if t.rank() != 2 || t.dims()[0] != data.len() || t.dims()[1] != data.num_classes() {
                return Err(EnsembleError::DataMismatch(format!(
                    "{what} must be [{}, {}], got {:?}",
                    data.len(),
                    data.num_classes(),
                    t.dims()
                )));
            }
            Ok(())
        };
        match loss {
            LossSpec::CrossEntropy => Ok(()),
            LossSpec::Diversity { ensemble_soft, .. } => {
                check(ensemble_soft, "ensemble soft targets")
            }
            LossSpec::Distill { teacher_soft, .. } => check(teacher_soft, "teacher soft targets"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{FaultPlan, RecoveryPolicy};
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use rand::SeedableRng;

    fn blob_env() -> (Dataset, Dataset) {
        let cfg = GaussianBlobsConfig {
            classes: 3,
            dim: 6,
            train_per_class: 40,
            test_per_class: 20,
            spread: 0.6,
        };
        let tt = gaussian_blobs(&cfg, 11);
        (tt.train, tt.test)
    }

    #[test]
    fn cross_entropy_training_reaches_high_accuracy() {
        let (train, test) = blob_env();
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&[6, 32, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let schedule = LrSchedule::paper_step(0.1, 20);
        let stats = trainer
            .train(
                &mut net,
                &train,
                &schedule,
                20,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stats.epochs, 20);
        let probs = net.predict_proba(test.features()).unwrap();
        let acc = edde_nn::metrics::accuracy(&probs, test.labels()).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn sample_weights_shift_the_decision() {
        // Weight class 0 a hundred times heavier; the model should rarely
        // misclassify class-0 test points even at the expense of others.
        let (train, test) = blob_env();
        let weights: Vec<f32> = train
            .labels()
            .iter()
            .map(|&y| if y == 0 { 10.0 } else { 0.1 })
            .collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let schedule = LrSchedule::Constant { base: 0.05 };
        trainer
            .train(
                &mut net,
                &train,
                &schedule,
                10,
                Some(&weights),
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        let preds = net.predict(test.features()).unwrap();
        let class0_correct = preds
            .iter()
            .zip(test.labels())
            .filter(|(_, &y)| y == 0)
            .filter(|(p, y)| p == y)
            .count();
        let class0_total = test.labels().iter().filter(|&&y| y == 0).count();
        assert!(class0_correct as f32 / class0_total as f32 > 0.9);
    }

    #[test]
    fn weight_length_mismatch_is_rejected() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer::default();
        let err = trainer.train(
            &mut net,
            &train,
            &LrSchedule::Constant { base: 0.1 },
            1,
            Some(&[1.0, 2.0]),
            &LossSpec::CrossEntropy,
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn misaligned_soft_targets_are_rejected() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer::default();
        let bad = Tensor::zeros(&[5, 3]);
        let err = trainer.train(
            &mut net,
            &train,
            &LrSchedule::Constant { base: 0.1 },
            1,
            None,
            &LossSpec::Diversity {
                gamma: 0.1,
                ensemble_soft: &bad,
            },
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn diversity_loss_trains_and_stays_finite() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        // uniform ensemble targets
        let soft = Tensor::full(&[train.len(), 3], 1.0 / 3.0);
        let trainer = Trainer {
            batch_size: 32,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let stats = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.05 },
                5,
                None,
                &LossSpec::Diversity {
                    gamma: 0.2,
                    ensemble_soft: &soft,
                },
                &mut rng,
            )
            .unwrap();
        assert!(stats.final_loss.is_finite());
    }

    #[test]
    fn injected_nan_loss_is_recovered_by_rollback() {
        let (train, test) = blob_env();
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = mlp(&[6, 32, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            fault: Some(FaultPlan::nan_loss_at_step(12)),
            ..Trainer::default()
        };
        let schedule = LrSchedule::paper_step(0.1, 20);
        let stats = trainer
            .train(
                &mut net,
                &train,
                &schedule,
                20,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.epochs, 20);
        // Training still works after the rollback.
        let probs = net.predict_proba(test.features()).unwrap();
        let acc = edde_nn::metrics::accuracy(&probs, test.labels()).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn divergence_surfaces_once_retry_budget_is_exhausted() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            recovery: RecoveryPolicy {
                max_retries: 0,
                ..RecoveryPolicy::default()
            },
            fault: Some(FaultPlan::nan_loss_at_step(0)),
            ..Trainer::default()
        };
        let err = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                3,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EnsembleError::Diverged(_)), "{err}");
        assert!(err.to_string().contains("retry budget"), "{err}");
    }

    #[test]
    fn recovered_run_matches_clean_run_when_fault_replay_is_clean() {
        // A NaN injected once (monotonic step counter) is absent from the
        // replay; with the schedule-scale untouched for earlier epochs and
        // identical RNG restoration, the *first* divergent epoch replays on
        // the same batches. The run must complete and stay deterministic
        // given the same seed + fault plan.
        let (train, _) = blob_env();
        let run = || {
            let mut rng = StdRng::seed_from_u64(8);
            let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
            let trainer = Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                fault: Some(FaultPlan::nan_loss_at_step(5)),
                ..Trainer::default()
            };
            trainer
                .train(
                    &mut net,
                    &train,
                    &LrSchedule::Constant { base: 0.05 },
                    4,
                    None,
                    &LossSpec::CrossEntropy,
                    &mut rng,
                )
                .unwrap();
            net.export_state()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn gradient_norm_limit_triggers_recovery() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        // An absurdly tight limit: every step "diverges", so the retry
        // budget must run out.
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            recovery: RecoveryPolicy {
                max_retries: 2,
                grad_norm_limit: Some(1e-12),
                ..RecoveryPolicy::default()
            },
            ..Trainer::default()
        };
        let err = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                3,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EnsembleError::Diverged(_)), "{err}");
        assert!(err.to_string().contains("gradient norm"), "{err}");
    }

    #[test]
    fn invalid_recovery_policy_is_rejected() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer {
            recovery: RecoveryPolicy {
                lr_backoff: 2.0,
                ..RecoveryPolicy::default()
            },
            ..Trainer::default()
        };
        let err = trainer
            .train(
                &mut net,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                1,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, EnsembleError::BadConfig(_)), "{err}");
    }

    #[test]
    fn events_fire_in_the_documented_boundary_order() {
        // One injected divergence in epoch 1 (120 samples / batch 16 = 8
        // steps per epoch; step 12 lands in epoch 1). The observer must see
        // checkpoint -> started -> diverged -> rolled-back, then the same
        // boundary re-entered: checkpoint (re-fired) -> started ->
        // completed.
        let (train, _) = blob_env();
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            fault: Some(FaultPlan::nan_loss_at_step(12)),
            ..Trainer::default()
        };
        let store = edde_nn::checkpoint::MemStore::new();
        let mut rng = StdRng::seed_from_u64(20);
        let mut net = mlp(&[6, 16, 3], 0.0, &mut rng);
        let mut tags: Vec<String> = Vec::new();
        let mut observer = |event: TrainEvent<'_>| -> Result<()> {
            tags.push(match event {
                TrainEvent::CheckpointWritten { epochs_done, .. } => format!("ckpt@{epochs_done}"),
                TrainEvent::EpochStarted { epoch, .. } => format!("start@{epoch}"),
                TrainEvent::EpochCompleted { epoch, .. } => format!("done@{epoch}"),
                TrainEvent::Diverged { epoch, .. } => format!("diverged@{epoch}"),
                TrainEvent::RolledBack { epoch, .. } => format!("rolledback@{epoch}"),
            });
            Ok(())
        };
        TrainLoop::new(&trainer, &train, &LrSchedule::Constant { base: 0.05 }, 3)
            .observe(&mut observer)
            .checkpoint(EpochCheckpoints {
                store: &store,
                key: "member-0-progress".into(),
                member: 0,
                fingerprint: 99,
                every: 1,
                sharded: false,
                config: EddeConfig::default(),
            })
            .run(&mut net, TrainRng::PerEpoch { seed: 42 })
            .unwrap();
        assert_eq!(
            tags,
            [
                "start@0",
                "done@0",
                "ckpt@1",
                "start@1",
                "diverged@1",
                "rolledback@1",
                "ckpt@1",
                "start@1",
                "done@1",
                "ckpt@2",
                "start@2",
                "done@2",
            ]
        );
    }

    #[test]
    fn mid_member_resume_is_bit_identical_to_an_uninterrupted_run() {
        let (train, _) = blob_env();
        let schedule = LrSchedule::paper_step(0.1, 4);
        let seed = 77u64; // PerEpoch root seed
        let fresh_net = || mlp(&[6, 16, 3], 0.0, &mut StdRng::seed_from_u64(123));
        let clean = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };

        // Reference: uninterrupted, no persistence.
        let mut reference_net = fresh_net();
        let reference_stats = TrainLoop::new(&clean, &train, &schedule, 4)
            .run(&mut reference_net, TrainRng::PerEpoch { seed })
            .unwrap();
        let reference = reference_net.export_state();

        // "Kill" a checkpointed run inside epoch 2 (steps 16..24): the
        // epoch-2 boundary record is on the store when the run dies.
        let store = edde_nn::checkpoint::MemStore::new();
        let checkpoints = || EpochCheckpoints {
            store: &store,
            key: "member-0-progress".into(),
            member: 0,
            fingerprint: 7,
            every: 1,
            sharded: false,
            config: EddeConfig::default(),
        };
        let dying = Trainer {
            recovery: RecoveryPolicy::disabled(),
            fault: Some(FaultPlan::nan_loss_at_step(20)),
            ..clean.clone()
        };
        let mut net = fresh_net();
        TrainLoop::new(&dying, &train, &schedule, 4)
            .checkpoint(checkpoints())
            .run(&mut net, TrainRng::PerEpoch { seed })
            .unwrap_err();
        let progress =
            MemberProgress::decode(checkpoint::get_sealed(&store, "member-0-progress").unwrap())
                .unwrap();
        assert_eq!(progress.epochs_done, 2, "died inside epoch 2");

        // Resume into a *fresh* network: the progress record supplies the
        // model and momentum, so the final weights must match the
        // uninterrupted run bit for bit.
        let mut resumed_net = mlp(&[6, 16, 3], 0.0, &mut StdRng::seed_from_u64(999));
        let resumed_stats = TrainLoop::new(&clean, &train, &schedule, 4)
            .checkpoint(checkpoints())
            .run(&mut resumed_net, TrainRng::PerEpoch { seed })
            .unwrap();
        assert_eq!(resumed_net.export_state(), reference);
        assert_eq!(resumed_stats, reference_stats);
    }

    #[test]
    fn epoch_checkpoints_require_a_per_epoch_rng() {
        let (train, _) = blob_env();
        let store = edde_nn::checkpoint::MemStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = mlp(&[6, 8, 3], 0.0, &mut rng);
        let trainer = Trainer::default();
        let err = TrainLoop::new(&trainer, &train, &LrSchedule::Constant { base: 0.1 }, 1)
            .checkpoint(EpochCheckpoints {
                store: &store,
                key: "member-0-progress".into(),
                member: 0,
                fingerprint: 1,
                every: 1,
                sharded: false,
                config: EddeConfig::default(),
            })
            .run(&mut net, TrainRng::Threaded(&mut rng))
            .unwrap_err();
        assert!(matches!(err, EnsembleError::BadConfig(_)), "{err}");
        assert!(err.to_string().contains("PerEpoch"), "{err}");
    }

    #[test]
    fn zero_checkpoint_cadence_is_rejected() {
        let (train, _) = blob_env();
        let store = edde_nn::checkpoint::MemStore::new();
        let mut net = mlp(&[6, 8, 3], 0.0, &mut StdRng::seed_from_u64(22));
        let trainer = Trainer::default();
        let err = TrainLoop::new(&trainer, &train, &LrSchedule::Constant { base: 0.1 }, 1)
            .checkpoint(EpochCheckpoints {
                store: &store,
                key: "member-0-progress".into(),
                member: 0,
                fingerprint: 1,
                every: 0,
                sharded: false,
                config: EddeConfig::default(),
            })
            .run(&mut net, TrainRng::PerEpoch { seed: 1 })
            .unwrap_err();
        assert!(matches!(err, EnsembleError::BadConfig(_)), "{err}");
        assert!(err.to_string().contains("cadence"), "{err}");
    }

    #[test]
    fn torn_progress_record_restarts_the_member_from_scratch() {
        // Progress records are written with relaxed durability, so a crash
        // can leave a torn frame. The checksum must catch it and the loop
        // must fall back to epoch 0 — matching a no-checkpoint run bit for
        // bit — rather than fail or resume from garbage.
        let (train, _) = blob_env();
        let schedule = LrSchedule::Constant { base: 0.05 };
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        let fresh_net = || mlp(&[6, 16, 3], 0.0, &mut StdRng::seed_from_u64(31));
        let mut reference_net = fresh_net();
        TrainLoop::new(&trainer, &train, &schedule, 2)
            .run(&mut reference_net, TrainRng::PerEpoch { seed: 9 })
            .unwrap();

        let store = edde_nn::checkpoint::MemStore::new();
        store
            .put("member-0-progress", b"torn partial write")
            .unwrap();
        let mut net = fresh_net();
        TrainLoop::new(&trainer, &train, &schedule, 2)
            .checkpoint(EpochCheckpoints {
                store: &store,
                key: "member-0-progress".into(),
                member: 0,
                fingerprint: 3,
                every: 1,
                sharded: false,
                config: EddeConfig::default(),
            })
            .run(&mut net, TrainRng::PerEpoch { seed: 9 })
            .unwrap();
        assert_eq!(net.export_state(), reference_net.export_state());
    }

    #[test]
    fn progress_from_another_run_is_refused() {
        // A progress record bound to fingerprint 5 must not resume a loop
        // opened under fingerprint 6.
        let (train, _) = blob_env();
        let store = edde_nn::checkpoint::MemStore::new();
        let mut net = mlp(&[6, 16, 3], 0.0, &mut StdRng::seed_from_u64(23));
        let opt_state = Sgd::new(0.1, 0.9, 0.0).export_state();
        let payload = runstate::encode_progress(&ProgressParts {
            member: 0,
            fingerprint: 5,
            rng_seed: 42,
            total_epochs: 4,
            epochs_done: 2,
            rollbacks: 0,
            retries_left: 2,
            lr_scale: 1.0,
            final_loss: 0.5,
            net_state: &net.export_state(),
            opt_state: &opt_state,
        });
        checkpoint::put_sealed(&store, "member-0-progress", &payload).unwrap();
        let trainer = Trainer::default();
        let err = TrainLoop::new(&trainer, &train, &LrSchedule::Constant { base: 0.1 }, 4)
            .checkpoint(EpochCheckpoints {
                store: &store,
                key: "member-0-progress".into(),
                member: 0,
                fingerprint: 6,
                every: 1,
                sharded: false,
                config: EddeConfig::default(),
            })
            .run(&mut net, TrainRng::PerEpoch { seed: 42 })
            .unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn distillation_pulls_student_toward_teacher() {
        let (train, _) = blob_env();
        let mut rng = StdRng::seed_from_u64(5);
        // teacher: a trained model's soft targets
        let mut teacher = mlp(&[6, 32, 3], 0.0, &mut rng);
        let trainer = Trainer {
            batch_size: 16,
            weight_decay: 0.0,
            ..Trainer::default()
        };
        trainer
            .train(
                &mut teacher,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                10,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )
            .unwrap();
        let teacher_soft = teacher.predict_proba(train.features()).unwrap();
        let mut student = mlp(&[6, 32, 3], 0.0, &mut rng);
        trainer
            .train(
                &mut student,
                &train,
                &LrSchedule::Constant { base: 0.1 },
                10,
                None,
                &LossSpec::Distill {
                    lambda: 0.9,
                    temperature: 1.0,
                    teacher_soft: &teacher_soft,
                },
                &mut rng,
            )
            .unwrap();
        // student's probabilities should be closer to the teacher's than a
        // random network's are
        let student_soft = student.predict_proba(train.features()).unwrap();
        let random = mlp(&[6, 32, 3], 0.0, &mut rng);
        let random_soft = random.predict_proba(train.features()).unwrap();
        let dist = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data().iter())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(dist(&student_soft, &teacher_soft) < dist(&random_soft, &teacher_soft));
    }
}
