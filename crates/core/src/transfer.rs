//! β-knowledge transfer (§IV-B): copy the lower (generic) fraction of a
//! teacher network's parameters into a freshly initialized student, and
//! select β adaptively with the seen-fold/unseen-fold probe of Fig. 4/5.

use crate::error::{EnsembleError, Result};
use crate::trainer::{LossSpec, Trainer};
use edde_data::kfold::BetaSplit;
use edde_data::Dataset;
use edde_nn::optim::LrSchedule;
use edde_nn::Network;
use edde_tensor::Tensor;
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};

/// What a [`transfer_partial`] call actually copied.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReport {
    /// Parameter tensors copied (in topological order).
    pub transferred_params: Vec<String>,
    /// Scalars copied, as a fraction of the total parameter count — the
    /// *effective* β after rounding to whole tensors.
    pub effective_beta: f32,
}

/// Copies the first (input-side) parameter tensors of `teacher` into
/// `student` until at least `beta` of the total scalar parameter count has
/// been transferred; the remaining (output-side) tensors keep the student's
/// fresh random initialization. Batch-norm running statistics travel with
/// their layer: a layer's buffers are copied iff any of its parameters
/// were.
///
/// `beta = 1.0` transfers everything (Snapshot-style); `beta = 0.0`
/// transfers nothing (independent training).
///
/// Both networks must share an architecture (same parameter names/shapes).
pub fn transfer_partial(
    teacher: &Network,
    student: &mut Network,
    beta: f32,
) -> Result<TransferReport> {
    if !(0.0..=1.0).contains(&beta) {
        return Err(EnsembleError::BadConfig(format!(
            "beta must be in [0, 1], got {beta}"
        )));
    }
    let layout = teacher.param_layout();
    let total: usize = layout.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return Err(EnsembleError::BadConfig("teacher has no parameters".into()));
    }
    // choose the prefix of tensors covering >= beta of all scalars
    // Ceil, not round: the effective (whole-tensor) beta must never fall
    // below the requested one.
    let budget = (beta as f64 * total as f64).ceil() as usize;
    let mut selected: HashSet<String> = HashSet::new();
    let mut covered = 0usize;
    for (name, n) in &layout {
        if covered >= budget {
            break;
        }
        selected.insert(name.clone());
        covered += n;
    }
    // export teacher state once, then copy selected params + their layers'
    // buffers into the student
    let state: HashMap<String, Tensor> = teacher.export_state().into_iter().collect();
    let layer_prefixes: HashSet<String> = selected
        .iter()
        .filter_map(|name| name.rsplit_once('.').map(|(l, _)| l.to_string()))
        .collect();
    let mut copy_err: Option<EnsembleError> = None;
    let mut transferred = Vec::new();
    student.visit_params(&mut |name, p| {
        if copy_err.is_some() || !selected.contains(name) {
            return;
        }
        match state.get(name) {
            Some(t) if t.dims() == p.value.dims() => {
                p.value = t.clone();
                transferred.push(name.to_string());
            }
            _ => {
                copy_err = Some(EnsembleError::DataMismatch(format!(
                    "teacher/student architecture mismatch at {name}"
                )));
            }
        }
    });
    student.visit_buffers(&mut |name, buf| {
        if copy_err.is_some() {
            return;
        }
        let belongs = name
            .rsplit_once('.')
            .map(|(l, _)| layer_prefixes.contains(l))
            .unwrap_or(false);
        if !belongs {
            return;
        }
        match state.get(name) {
            Some(t) if t.dims() == buf.dims() => *buf = t.clone(),
            _ => {
                copy_err = Some(EnsembleError::DataMismatch(format!(
                    "teacher/student architecture mismatch at buffer {name}"
                )));
            }
        }
    });
    if let Some(e) = copy_err {
        return Err(e);
    }
    Ok(TransferReport {
        transferred_params: transferred,
        effective_beta: covered.min(total) as f32 / total as f32,
    })
}

/// One row of the Fig. 5 sweep: student accuracy on the fold the teacher
/// saw versus the fold nobody saw, after a few fine-tuning epochs at a
/// given β.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaProbePoint {
    /// The β that was probed.
    pub beta: f32,
    /// Mean early-epoch accuracy on fold `n−1` (seen by the teacher).
    pub seen_acc: f32,
    /// Mean early-epoch accuracy on fold `n` (unseen by both).
    pub unseen_acc: f32,
}

/// Configuration of the β probe (§IV-B).
#[derive(Debug, Clone)]
pub struct BetaProbeConfig {
    /// Epochs used to pre-train the teacher on folds `1..n−1`.
    pub teacher_epochs: usize,
    /// Fine-tuning epochs per probe; the paper averages accuracy over the
    /// first 5 epochs.
    pub probe_epochs: usize,
    /// Learning rate for both phases.
    pub lr: f32,
    /// β values to sweep, highest first (the paper starts at 1 and decays).
    pub betas: Vec<f32>,
    /// Accept β once `seen_acc − unseen_acc` falls below this gap.
    pub gap_threshold: f32,
}

impl Default for BetaProbeConfig {
    fn default() -> Self {
        BetaProbeConfig {
            teacher_epochs: 12,
            probe_epochs: 5,
            lr: 0.05,
            betas: vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1],
            gap_threshold: 0.02,
        }
    }
}

/// Runs the full Fig. 5 sweep: trains a teacher on the teacher split, then
/// for each β initializes a student by partial transfer, fine-tunes it on
/// the student split, and records mean accuracy on the seen and unseen
/// probe folds over the first `probe_epochs` epochs.
///
/// The per-β students are independent restarts (the ROADMAP's
/// cross-validation-fold candidates for pool parallelism), so they fan out
/// over the worker pool via
/// [`crate::methods::train_members_in_order`], each on its own RNG stream
/// derived from a probe root drawn from `rng`
/// ([`crate::runstate::member_rng`] with the probe salt). Points are
/// committed in sweep order, so the result is deterministic and identical
/// at every thread count.
pub fn beta_probe(
    factory: &(dyn Fn(&mut StdRng) -> Result<Network> + Sync),
    split: &BetaSplit,
    trainer: &Trainer,
    config: &BetaProbeConfig,
    rng: &mut StdRng,
) -> Result<Vec<BetaProbePoint>> {
    let mut teacher = factory(rng)?;
    let schedule = LrSchedule::paper_step(config.lr, config.teacher_epochs);
    trainer.train(
        &mut teacher,
        &split.teacher_train,
        &schedule,
        config.teacher_epochs,
        None,
        &LossSpec::CrossEntropy,
        rng,
    )?;

    use rand::RngExt;
    let probe_root: u64 = rng.random();
    let probe_schedule = LrSchedule::Constant { base: config.lr };
    let teacher = &teacher;
    let mut points = Vec::with_capacity(config.betas.len());
    crate::methods::train_members_in_order(
        0,
        config.betas.len(),
        true,
        |i| {
            let beta = config.betas[i];
            let mut prng = crate::runstate::member_rng(probe_root, BETA_PROBE_SALT, i);
            let mut student = factory(&mut prng)?;
            transfer_partial(teacher, &mut student, beta)?;
            let mut seen_sum = 0.0f32;
            let mut unseen_sum = 0.0f32;
            for _ in 0..config.probe_epochs {
                trainer.train(
                    &mut student,
                    &split.student_train,
                    &probe_schedule,
                    1,
                    None,
                    &LossSpec::CrossEntropy,
                    &mut prng,
                )?;
                seen_sum += dataset_accuracy(&student, &split.seen_fold)?;
                unseen_sum += dataset_accuracy(&student, &split.unseen_fold)?;
            }
            let e = config.probe_epochs.max(1) as f32;
            Ok(BetaProbePoint {
                beta,
                seen_acc: seen_sum / e,
                unseen_acc: unseen_sum / e,
            })
        },
        |_, p| {
            points.push(p);
            Ok(())
        },
    )?;
    Ok(points)
}

/// Salt separating the β-probe student streams from every member stream.
const BETA_PROBE_SALT: u64 = 0xBE7A;

/// Picks the largest β whose seen/unseen gap is below the threshold —
/// "start from β = 1 and gradually reduce it, until h_t performs similarly
/// on the two datasets". Falls back to the smallest probed β when no point
/// satisfies the gap.
pub fn select_beta(points: &[BetaProbePoint], gap_threshold: f32) -> Result<f32> {
    if points.is_empty() {
        return Err(EnsembleError::BadConfig("no beta probe points".into()));
    }
    let mut sorted: Vec<&BetaProbePoint> = points.iter().collect();
    // highest beta first (fastest training wins among acceptable gaps)
    sorted.sort_by(|a, b| b.beta.partial_cmp(&a.beta).unwrap());
    for p in &sorted {
        if (p.seen_acc - p.unseen_acc) <= gap_threshold {
            return Ok(p.beta);
        }
    }
    Ok(sorted.last().unwrap().beta)
}

fn dataset_accuracy(net: &Network, data: &Dataset) -> Result<f32> {
    let mut src = edde_data::stream::DatasetStream::sequential(data, crate::env::eval_batch());
    crate::stream::network_stream_accuracy(net, &mut src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::models::mlp;
    use edde_nn::Mode;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[4, 8, 6, 3], 0.0, &mut r)
    }

    #[test]
    fn beta_one_copies_everything() {
        let mut teacher = net(0);
        let mut student = net(1);
        let report = transfer_partial(&teacher, &mut student, 1.0).unwrap();
        assert_eq!(report.effective_beta, 1.0);
        let x = Tensor::ones(&[2, 4]);
        assert_eq!(
            teacher.train_forward(&x, Mode::Eval).unwrap().data(),
            student.train_forward(&x, Mode::Eval).unwrap().data()
        );
    }

    #[test]
    fn beta_zero_copies_nothing() {
        let teacher = net(0);
        let mut student = net(1);
        let before = student.export_state();
        let report = transfer_partial(&teacher, &mut student, 0.0).unwrap();
        assert!(report.transferred_params.is_empty());
        assert_eq!(report.effective_beta, 0.0);
        let after = student.export_state();
        assert_eq!(before, after);
    }

    #[test]
    fn partial_beta_copies_an_input_side_prefix() {
        let teacher = net(0);
        let mut student = net(1);
        // mlp [4,8,6,3]: fc0.w (32) fc0.b (8) fc1.w (48) fc1.b (6) fc2.w (18) fc2.b (3)
        // total 115; beta=0.5 -> budget 57.5 -> 58 -> fc0.w + fc0.b + fc1.w = 88
        let report = transfer_partial(&teacher, &mut student, 0.5).unwrap();
        assert_eq!(
            report.transferred_params,
            vec!["fc0.weight", "fc0.bias", "fc1.weight"]
        );
        assert!(report.effective_beta > 0.5);
        // fc0 weights equal, fc2 weights differ
        let t_state: HashMap<String, Tensor> = teacher.export_state().into_iter().collect();
        let s_state: HashMap<String, Tensor> = student.export_state().into_iter().collect();
        assert_eq!(t_state["fc0.weight"], s_state["fc0.weight"]);
        assert_ne!(t_state["fc2.weight"], s_state["fc2.weight"]);
    }

    #[test]
    fn beta_is_monotone_in_transferred_count() {
        let mut prev = 0usize;
        for beta in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            let teacher = net(0);
            let mut student = net(1);
            let r = transfer_partial(&teacher, &mut student, beta).unwrap();
            assert!(r.transferred_params.len() >= prev);
            prev = r.transferred_params.len();
        }
    }

    #[test]
    fn architecture_mismatch_is_detected() {
        let teacher = net(0);
        let mut r = StdRng::seed_from_u64(2);
        let mut student = mlp(&[4, 16, 3], 0.0, &mut r);
        assert!(transfer_partial(&teacher, &mut student, 0.8).is_err());
    }

    #[test]
    fn invalid_beta_rejected() {
        let teacher = net(0);
        let mut student = net(1);
        assert!(transfer_partial(&teacher, &mut student, 1.5).is_err());
        assert!(transfer_partial(&teacher, &mut student, -0.1).is_err());
    }

    #[test]
    fn select_beta_prefers_largest_acceptable() {
        let points = vec![
            BetaProbePoint {
                beta: 1.0,
                seen_acc: 0.8,
                unseen_acc: 0.6,
            },
            BetaProbePoint {
                beta: 0.7,
                seen_acc: 0.7,
                unseen_acc: 0.69,
            },
            BetaProbePoint {
                beta: 0.4,
                seen_acc: 0.65,
                unseen_acc: 0.66,
            },
        ];
        assert_eq!(select_beta(&points, 0.02).unwrap(), 0.7);
        // impossible threshold -> smallest beta
        assert_eq!(select_beta(&points, -1.0).unwrap(), 0.4);
        assert!(select_beta(&[], 0.1).is_err());
    }

    #[test]
    fn bn_buffers_travel_with_their_layer() {
        use edde_nn::models::{resnet, ResNetConfig};
        let mut r = StdRng::seed_from_u64(5);
        let cfg = ResNetConfig::small(3, 4);
        let mut teacher = resnet(&cfg, &mut r).unwrap();
        // give the teacher distinctive running stats
        teacher.visit_buffers(&mut |_, t| t.data_mut().fill(0.123));
        let mut student = resnet(&cfg, &mut r).unwrap();
        transfer_partial(&teacher, &mut student, 0.5).unwrap();
        // some buffers copied (stem bn is in the transferred prefix),
        // some left at defaults
        let mut copied = 0;
        let mut kept = 0;
        student.visit_buffers(&mut |_, t| {
            if t.data().iter().all(|&v| (v - 0.123).abs() < 1e-6) {
                copied += 1;
            } else {
                kept += 1;
            }
        });
        assert!(copied > 0, "no buffers copied");
        assert!(kept > 0, "all buffers copied at beta=0.5");
    }
}
