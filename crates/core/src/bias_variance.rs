//! The bias/variance analysis behind Figure 1.
//!
//! The paper frames the methods on a bias–variance plane: a good ensemble
//! wants base models with **low bias** (each is individually accurate) and
//! **high variance** (they disagree with each other, i.e. are diverse).
//! Using the paper's own soft-target quantities:
//!
//! * **bias** — the mean of `Bias_t(x) = √2/2·‖h_t(x) − y‖₂` (Eq. 13) over
//!   all members and evaluation samples;
//! * **variance** — the mean of `√2/2·‖h_t(x) − h̄(x)‖₂` over members and
//!   samples, where `h̄(x)` is the unweighted mean member soft target.
//!
//! Both lie in `[0, 1]`, matching the axes of Figure 1.

use crate::ensemble::EnsembleModel;
use crate::error::{EnsembleError, Result};
use edde_data::Dataset;

/// A point on the bias–variance plane of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasVariance {
    /// Mean member bias (lower = individually stronger models).
    pub bias: f32,
    /// Mean member spread around the ensemble mean (higher = more diverse).
    pub variance: f32,
}

/// Computes the bias/variance point of a trained ensemble on `data`.
pub fn bias_variance(model: &EnsembleModel, data: &Dataset) -> Result<BiasVariance> {
    let t = model.len();
    if t == 0 {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let member_probs = model.member_soft_targets(data.features())?;
    let (n, k) = (data.len(), data.num_classes());
    if n == 0 {
        return Err(EnsembleError::DataMismatch("empty evaluation set".into()));
    }
    // mean member soft target per sample
    let mut mean = vec![0.0f32; n * k];
    for probs in &member_probs {
        for (m, &p) in mean.iter_mut().zip(probs.data().iter()) {
            *m += p;
        }
    }
    for m in &mut mean {
        *m /= t as f32;
    }

    let half_sqrt2 = std::f32::consts::FRAC_1_SQRT_2;
    let mut bias_total = 0.0f64;
    let mut var_total = 0.0f64;
    for probs in &member_probs {
        for i in 0..n {
            let row = &probs.data()[i * k..(i + 1) * k];
            let y = data.labels()[i];
            // ‖h_t(x) − y‖₂ with one-hot y
            let mut d_bias = 0.0f32;
            for (c, &p) in row.iter().enumerate() {
                let target = if c == y { 1.0 } else { 0.0 };
                d_bias += (p - target) * (p - target);
            }
            bias_total += f64::from(half_sqrt2 * d_bias.sqrt());
            // ‖h_t(x) − h̄(x)‖₂
            let mrow = &mean[i * k..(i + 1) * k];
            let mut d_var = 0.0f32;
            for (&p, &m) in row.iter().zip(mrow.iter()) {
                d_var += (p - m) * (p - m);
            }
            var_total += f64::from(half_sqrt2 * d_var.sqrt());
        }
    }
    let denom = (t * n) as f64;
    Ok(BiasVariance {
        bias: (bias_total / denom) as f32,
        variance: (var_total / denom) as f32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::models::mlp;
    use edde_nn::Network;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let features = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        Dataset::new(features, vec![0, 1, 0], 2).unwrap()
    }

    fn net(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[2, 6, 2], 0.0, &mut r)
    }

    #[test]
    fn identical_members_have_zero_variance() {
        let mut ens = EnsembleModel::new();
        let base = net(0);
        ens.push(base.clone(), 1.0, "a");
        ens.push(base, 1.0, "b");
        let bv = bias_variance(&ens, &toy_data()).unwrap();
        assert!(bv.variance < 1e-6);
        assert!(bv.bias > 0.0);
    }

    #[test]
    fn different_members_have_positive_variance() {
        let mut ens = EnsembleModel::new();
        ens.push(net(1), 1.0, "a");
        ens.push(net(2), 1.0, "b");
        let bv = bias_variance(&ens, &toy_data()).unwrap();
        assert!(bv.variance > 0.0);
        assert!((0.0..=1.0).contains(&bv.bias));
        assert!((0.0..=1.0).contains(&bv.variance));
    }

    #[test]
    fn perfect_model_has_zero_bias() {
        // a "network" that outputs huge logits on the right class:
        // emulate by training? simpler: bias is near zero when members are
        // confident and correct. Use a hand-weighted linear layer.
        let mut r = StdRng::seed_from_u64(3);
        let mut m = mlp(&[2, 2], 0.0, &mut r);
        // feature [1,0] -> class 0, [0,1] -> class 1, [1,1] -> class 0
        // weight matrix [ [40, 0], [0, 40] ] biases [10, 0] does it:
        m.visit_params(&mut |name, p| {
            if name.ends_with("weight") {
                p.value = Tensor::from_vec(vec![40.0, 0.0, 0.0, 40.0], &[2, 2]).unwrap();
            } else {
                p.value = Tensor::from_slice(&[10.0, 0.0]);
            }
        });
        let mut ens = EnsembleModel::new();
        ens.push(m, 1.0, "perfect");
        let bv = bias_variance(&ens, &toy_data()).unwrap();
        assert!(bv.bias < 0.01, "bias {}", bv.bias);
        assert_eq!(bv.variance, 0.0); // single member
    }

    #[test]
    fn empty_ensemble_is_an_error() {
        let ens = EnsembleModel::new();
        assert!(bias_variance(&ens, &toy_data()).is_err());
    }
}
