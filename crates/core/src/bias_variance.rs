//! The bias/variance analysis behind Figure 1.
//!
//! The paper frames the methods on a bias–variance plane: a good ensemble
//! wants base models with **low bias** (each is individually accurate) and
//! **high variance** (they disagree with each other, i.e. are diverse).
//! Using the paper's own soft-target quantities:
//!
//! * **bias** — the mean of `Bias_t(x) = √2/2·‖h_t(x) − y‖₂` (Eq. 13) over
//!   all members and evaluation samples;
//! * **variance** — the mean of `√2/2·‖h_t(x) − h̄(x)‖₂` over members and
//!   samples, where `h̄(x)` is the unweighted mean member soft target.
//!
//! Both lie in `[0, 1]`, matching the axes of Figure 1.

use crate::ensemble::EnsembleModel;
use crate::error::{EnsembleError, Result};
use edde_data::stream::DatasetStream;
use edde_data::Dataset;

/// A point on the bias–variance plane of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasVariance {
    /// Mean member bias (lower = individually stronger models).
    pub bias: f32,
    /// Mean member spread around the ensemble mean (higher = more diverse).
    pub variance: f32,
}

/// Computes the bias/variance point of a trained ensemble on `data`.
///
/// This is the streaming reducer ([`crate::stream::StreamBiasVariance`])
/// fed by a sequential [`DatasetStream`]: one `f64` accumulator per member
/// for each of bias and variance, summed in row order and finalized in
/// member order, so evaluation memory is `O(eval_batch)` and the result is
/// identical for any batch split.
pub fn bias_variance(model: &EnsembleModel, data: &Dataset) -> Result<BiasVariance> {
    if model.is_empty() {
        return Err(EnsembleError::EmptyEnsemble);
    }
    let mut src = DatasetStream::sequential(data, crate::env::eval_batch());
    crate::stream::stream_bias_variance(model, &mut src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::models::mlp;
    use edde_nn::Network;
    use edde_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let features = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        Dataset::new(features, vec![0, 1, 0], 2).unwrap()
    }

    fn net(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[2, 6, 2], 0.0, &mut r)
    }

    #[test]
    fn identical_members_have_zero_variance() {
        let mut ens = EnsembleModel::new();
        let base = net(0);
        ens.push(base.clone(), 1.0, "a");
        ens.push(base, 1.0, "b");
        let bv = bias_variance(&ens, &toy_data()).unwrap();
        assert!(bv.variance < 1e-6);
        assert!(bv.bias > 0.0);
    }

    #[test]
    fn different_members_have_positive_variance() {
        let mut ens = EnsembleModel::new();
        ens.push(net(1), 1.0, "a");
        ens.push(net(2), 1.0, "b");
        let bv = bias_variance(&ens, &toy_data()).unwrap();
        assert!(bv.variance > 0.0);
        assert!((0.0..=1.0).contains(&bv.bias));
        assert!((0.0..=1.0).contains(&bv.variance));
    }

    #[test]
    fn perfect_model_has_zero_bias() {
        // a "network" that outputs huge logits on the right class:
        // emulate by training? simpler: bias is near zero when members are
        // confident and correct. Use a hand-weighted linear layer.
        let mut r = StdRng::seed_from_u64(3);
        let mut m = mlp(&[2, 2], 0.0, &mut r);
        // feature [1,0] -> class 0, [0,1] -> class 1, [1,1] -> class 0
        // weight matrix [ [40, 0], [0, 40] ] biases [10, 0] does it:
        m.visit_params(&mut |name, p| {
            if name.ends_with("weight") {
                p.value = Tensor::from_vec(vec![40.0, 0.0, 0.0, 40.0], &[2, 2]).unwrap();
            } else {
                p.value = Tensor::from_slice(&[10.0, 0.0]);
            }
        });
        let mut ens = EnsembleModel::new();
        ens.push(m, 1.0, "perfect");
        let bv = bias_variance(&ens, &toy_data()).unwrap();
        assert!(bv.bias < 0.01, "bias {}", bv.bias);
        assert_eq!(bv.variance, 0.0); // single member
    }

    #[test]
    fn empty_ensemble_is_an_error() {
        let ens = EnsembleModel::new();
        assert!(bias_variance(&ens, &toy_data()).is_err());
    }
}
