//! Divergence recovery policy and deterministic fault injection.
//!
//! Deep ensembles are long-running: one NaN loss twenty epochs into member
//! four of seven used to abort the whole pipeline. [`RecoveryPolicy`] turns
//! that into a bounded retry: the trainer snapshots model, optimizer, and
//! RNG state at every epoch boundary, and on divergence rolls back to the
//! last good snapshot with a reduced learning rate instead of failing.
//! Only when the retry budget is exhausted does the original
//! `Diverged` error surface.
//!
//! [`FaultPlan`] is the matching test harness: it injects failures (a forced
//! NaN loss at step *k*, a failed *n*-th checkpoint write) at deterministic
//! points, so recovery paths are exercised by ordinary unit tests rather
//! than by luck.

use edde_nn::checkpoint::CheckpointStore;
use edde_nn::Result as NnResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the trainer reacts to a divergent epoch (non-finite loss, non-finite
/// gradient, or a gradient norm above [`RecoveryPolicy::grad_norm_limit`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// How many rollback-and-retry attempts are allowed per training run
    /// before `Diverged` is surfaced. `0` disables recovery entirely (the
    /// pre-recovery behavior: first divergence aborts).
    pub max_retries: usize,
    /// Multiplier applied to the learning rate on every retry (`0.5` halves
    /// it). Must be in `(0, 1]`.
    pub lr_backoff: f32,
    /// Optional global L2 gradient-norm limit; exceeding it counts as
    /// divergence even though every value is still finite. `None` disables
    /// the check.
    pub grad_norm_limit: Option<f32>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            lr_backoff: 0.5,
            grad_norm_limit: None,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries — divergence aborts immediately, exactly
    /// like the pre-recovery trainer.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            lr_backoff: 0.5,
            grad_norm_limit: None,
        }
    }

    /// Validates field ranges; called once when training starts.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if !self.lr_backoff.is_finite() || self.lr_backoff <= 0.0 || self.lr_backoff > 1.0 {
            return Err(format!(
                "lr_backoff must be in (0, 1], got {}",
                self.lr_backoff
            ));
        }
        if let Some(limit) = self.grad_norm_limit {
            if !limit.is_finite() || limit <= 0.0 {
                return Err(format!("grad_norm_limit must be positive, got {limit}"));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct FaultPlanInner {
    /// Force the loss to NaN at this global optimizer-step index (0-based).
    nan_loss_at_step: Option<u64>,
    /// Fail the n-th (0-based) `put` on a [`FaultyStore`].
    fail_put: Option<u64>,
    /// Fail the n-th (0-based) read (`get` or `get_range`) on a
    /// [`FaultyStore`].
    fail_get: Option<u64>,
    /// Monotonic count of optimizer steps observed so far. Never reset on
    /// rollback, so an injected fault fires exactly once even though the
    /// trainer replays the epoch that contained it.
    steps: AtomicU64,
    /// Monotonic count of store writes observed so far.
    puts: AtomicU64,
    /// Monotonic count of store reads observed so far (`get` and
    /// `get_range` share the counter, so a fault lands on the n-th read
    /// whichever access path issues it).
    gets: AtomicU64,
}

/// A deterministic fault-injection plan shared between a test and the
/// training/persistence code under test. Cloning shares the counters.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<FaultPlanInner>,
}

impl FaultPlan {
    /// A plan that forces a NaN loss at global step `step` (0-based, counted
    /// across epochs and rollback replays).
    pub fn nan_loss_at_step(step: u64) -> Self {
        FaultPlan {
            inner: Arc::new(FaultPlanInner {
                nan_loss_at_step: Some(step),
                ..Default::default()
            }),
        }
    }

    /// A plan that fails the `n`-th (0-based) write on a [`FaultyStore`].
    pub fn fail_put(n: u64) -> Self {
        FaultPlan {
            inner: Arc::new(FaultPlanInner {
                fail_put: Some(n),
                ..Default::default()
            }),
        }
    }

    /// Called by the trainer once per optimizer step; returns `true` when
    /// this step's loss must be corrupted.
    pub fn corrupt_this_step(&self) -> bool {
        let step = self.inner.steps.fetch_add(1, Ordering::Relaxed);
        self.inner.nan_loss_at_step == Some(step)
    }

    /// A plan that fails the `n`-th (0-based) read — `get` or `get_range`
    /// — on a [`FaultyStore`].
    pub fn fail_get(n: u64) -> Self {
        FaultPlan {
            inner: Arc::new(FaultPlanInner {
                fail_get: Some(n),
                ..Default::default()
            }),
        }
    }

    /// Called by [`FaultyStore`] once per write; returns `true` when this
    /// write must fail.
    pub fn fail_this_put(&self) -> bool {
        let put = self.inner.puts.fetch_add(1, Ordering::Relaxed);
        self.inner.fail_put == Some(put)
    }

    /// Called by [`FaultyStore`] once per read; returns `true` when this
    /// read must fail.
    pub fn fail_this_get(&self) -> bool {
        let get = self.inner.gets.fetch_add(1, Ordering::Relaxed);
        self.inner.fail_get == Some(get)
    }

    /// Optimizer steps observed so far (for test assertions).
    pub fn steps_seen(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }
}

/// A [`CheckpointStore`] wrapper that fails writes and reads according to
/// a [`FaultPlan`] — the injectable-I/O half of the fault harness. Fault
/// injection covers `put` (and `put_relaxed`, which defaults through it)
/// plus both read paths, `get` and `get_range`, on one shared read
/// counter.
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S: CheckpointStore> FaultyStore<S> {
    /// Wraps `inner`, failing the accesses selected by `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStore { inner, plan }
    }

    /// The wrapped store (e.g. to inspect what survived the faults).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CheckpointStore> CheckpointStore for FaultyStore<S> {
    fn put(&self, key: &str, bytes: &[u8]) -> NnResult<()> {
        if self.plan.fail_this_put() {
            return Err(edde_nn::NnError::Io(format!(
                "injected write failure for key {key:?}"
            )));
        }
        self.inner.put(key, bytes)
    }

    fn get(&self, key: &str) -> NnResult<bytes::Bytes> {
        if self.plan.fail_this_get() {
            return Err(edde_nn::NnError::Io(format!(
                "injected read failure for key {key:?}"
            )));
        }
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, offset: usize, len: usize) -> NnResult<bytes::Bytes> {
        if self.plan.fail_this_get() {
            return Err(edde_nn::NnError::Io(format!(
                "injected read failure for range {offset}+{len} of key {key:?}"
            )));
        }
        self.inner.get_range(key, offset, len)
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn remove(&self, key: &str) -> NnResult<()> {
        self.inner.remove(key)
    }

    fn keys(&self) -> NnResult<Vec<String>> {
        self.inner.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::checkpoint::MemStore;

    #[test]
    fn default_policy_is_valid_and_bounded() {
        let p = RecoveryPolicy::default();
        p.validate().unwrap();
        assert!(p.max_retries > 0);
        assert_eq!(RecoveryPolicy::disabled().max_retries, 0);
    }

    #[test]
    fn bad_backoff_is_rejected() {
        let p = RecoveryPolicy {
            lr_backoff: 0.0,
            ..RecoveryPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = RecoveryPolicy {
            grad_norm_limit: Some(-1.0),
            ..RecoveryPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn nan_fault_fires_exactly_once() {
        let plan = FaultPlan::nan_loss_at_step(2);
        let hits: Vec<bool> = (0..6).map(|_| plan.corrupt_this_step()).collect();
        assert_eq!(hits, vec![false, false, true, false, false, false]);
        assert_eq!(plan.steps_seen(), 6);
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::nan_loss_at_step(1);
        let other = plan.clone();
        assert!(!plan.corrupt_this_step());
        assert!(other.corrupt_this_step()); // sees step 1 via the shared count
    }

    #[test]
    fn faulty_store_fails_selected_read_on_either_path() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::fail_get(1));
        store.put("a", b"0123456789").unwrap();
        assert_eq!(&store.get("a").unwrap()[..], b"0123456789"); // read 0
        let err = store.get_range("a", 2, 3).unwrap_err(); // read 1: injected
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(&store.get_range("a", 2, 3).unwrap()[..], b"234");
    }

    #[test]
    fn faulty_store_fails_selected_put_only() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::fail_put(1));
        store.put("a", b"one").unwrap();
        let err = store.put("b", b"two").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        store.put("c", b"three").unwrap();
        assert!(store.contains("a") && store.contains("c"));
        assert!(!store.contains("b"));
    }
}
