//! Plain-text table rendering for the benchmark harness — the tables are
//! printed in the same row/column layout as the paper's.

use crate::evaluate::MethodSummary;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals, as the paper does.
pub fn pct(v: f32) -> String {
    format!("{:.2}%", 100.0 * v)
}

/// Renders a list of method summaries as a Table II/III-style table.
pub fn summary_table(summaries: &[MethodSummary]) -> String {
    let mut table = Table::new(&[
        "Method",
        "Epochs",
        "Members",
        "Ensemble acc",
        "Average acc",
        "Increased acc",
        "Diversity",
    ]);
    for s in summaries {
        table.add_row(&[
            s.name.clone(),
            s.total_epochs.to_string(),
            s.members.to_string(),
            pct(s.ensemble_accuracy),
            pct(s.average_accuracy),
            pct(s.increased_accuracy),
            s.diversity.map_or("-".into(), |d| format!("{d:.4}")),
        ]);
    }
    table.render()
}

/// Renders a similarity matrix (Fig. 8) as text, one row per member.
pub fn matrix_table(matrix: &[Vec<f32>], label: &str) -> String {
    let t = matrix.len();
    let mut out = format!("Pairwise similarity — {label}\n");
    out.push_str("      ");
    for j in 0..t {
        out.push_str(&format!("  h{:<4}", j + 1));
    }
    out.push('\n');
    for (i, row) in matrix.iter().enumerate() {
        out.push_str(&format!("h{:<4} ", i + 1));
        for v in row {
            out.push_str(&format!("  {v:.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(&["Method", "Acc"]);
        t.add_row(&["EDDE".into(), "74.38%".into()]);
        t.add_row(&["a-very-long-method-name".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].contains("74.38%"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.7438), "74.38%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn summary_table_renders_all_rows() {
        use crate::evaluate::MethodSummary;
        let rows = vec![
            MethodSummary {
                name: "EDDE".into(),
                total_epochs: 200,
                members: 6,
                ensemble_accuracy: 0.7438,
                average_accuracy: 0.6791,
                increased_accuracy: 0.0647,
                diversity: Some(0.1743),
            },
            MethodSummary {
                name: "Single Model".into(),
                total_epochs: 200,
                members: 1,
                ensemble_accuracy: 0.6911,
                average_accuracy: 0.6911,
                increased_accuracy: 0.0,
                diversity: None,
            },
        ];
        let s = summary_table(&rows);
        assert!(s.contains("EDDE"));
        assert!(s.contains("74.38%"));
        assert!(s.contains("0.1743"));
        assert!(s.contains("-"));
    }

    #[test]
    fn matrix_table_renders_square() {
        let m = vec![vec![1.0, 0.5], vec![0.5, 1.0]];
        let s = matrix_table(&m, "test");
        assert!(s.contains("h1"));
        assert!(s.contains("0.500"));
    }
}
