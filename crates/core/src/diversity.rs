//! The paper's soft-target diversity measure (§IV-C, Eq. 2/3/7).

use crate::ensemble::EnsembleModel;
use crate::error::{EnsembleError, Result};
use edde_tensor::Tensor;

/// Pairwise diversity between two soft-target matrices (Eq. 2):
///
/// ```text
/// Div(h_j, h_k) = √2/2 · 1/N · Σ_i ‖h_j(x_i) − h_k(x_i)‖₂
/// ```
///
/// Both inputs must be `[N, k]` probability matrices; the result lies in
/// `[0, 1]` (the √2/2 factor normalizes the maximum distance between two
/// probability vectors, Eq. 4–6).
pub fn pairwise_diversity(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.dims() != b.dims() || a.rank() != 2 {
        return Err(EnsembleError::DataMismatch(format!(
            "soft-target matrices must be equal-shaped [N, k]: {:?} vs {:?}",
            a.dims(),
            b.dims()
        )));
    }
    let (n, k) = (a.dims()[0], a.dims()[1]);
    if n == 0 {
        return Err(EnsembleError::DataMismatch(
            "diversity over zero samples".into(),
        ));
    }
    let mut total = 0.0f64;
    for i in 0..n {
        let ra = &a.data()[i * k..(i + 1) * k];
        let rb = &b.data()[i * k..(i + 1) * k];
        let dist = edde_tensor::simd::sq_l2_dist(ra, rb).sqrt();
        total += f64::from(dist);
    }
    Ok((std::f64::consts::FRAC_1_SQRT_2 * total / n as f64) as f32)
}

/// Pairwise similarity (Eq. 3): `Sim = 1 − Div`.
pub fn pairwise_similarity(a: &Tensor, b: &Tensor) -> Result<f32> {
    Ok(1.0 - pairwise_diversity(a, b)?)
}

/// The full `T × T` pairwise similarity matrix over member soft targets —
/// the heatmap of Figure 8. The diagonal is 1 by construction.
#[allow(clippy::needless_range_loop)]
pub fn similarity_matrix(member_probs: &[Tensor]) -> Result<Vec<Vec<f32>>> {
    let t = member_probs.len();
    let mut m = vec![vec![1.0f32; t]; t];
    for i in 0..t {
        for j in (i + 1)..t {
            let s = pairwise_similarity(&member_probs[i], &member_probs[j])?;
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    Ok(m)
}

/// Ensemble diversity (Eq. 7): the mean pairwise diversity over all
/// unordered member pairs,
///
/// ```text
/// Div_H = 2/(T(T−1)) · Σ_{j<k} Div(h_j, h_k)
/// ```
pub fn ensemble_diversity(member_probs: &[Tensor]) -> Result<f32> {
    let t = member_probs.len();
    if t < 2 {
        return Err(EnsembleError::BadConfig(
            "ensemble diversity needs at least two members".into(),
        ));
    }
    let mut total = 0.0f64;
    for i in 0..t {
        for j in (i + 1)..t {
            total += f64::from(pairwise_diversity(&member_probs[i], &member_probs[j])?);
        }
    }
    Ok((2.0 * total / (t * (t - 1)) as f64) as f32)
}

/// Convenience: Eq. 7 evaluated for a trained [`EnsembleModel`] on a
/// feature tensor.
pub fn model_diversity(model: &EnsembleModel, features: &Tensor) -> Result<f32> {
    let probs = model.member_soft_targets(features)?;
    ensemble_diversity(&probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(rows: &[[f32; 3]]) -> Tensor {
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        Tensor::from_vec(flat, &[rows.len(), 3]).unwrap()
    }

    #[test]
    fn identical_models_have_zero_diversity_and_unit_similarity() {
        let a = probs(&[[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]);
        assert_eq!(pairwise_diversity(&a, &a).unwrap(), 0.0);
        assert_eq!(pairwise_similarity(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn maximally_different_one_hots_reach_diversity_one() {
        let a = probs(&[[1.0, 0.0, 0.0]]);
        let b = probs(&[[0.0, 1.0, 0.0]]);
        let d = pairwise_diversity(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-6, "d = {d}"); // √2/2 · √2 = 1
    }

    #[test]
    fn diversity_is_bounded_and_symmetric() {
        let a = probs(&[[0.5, 0.3, 0.2], [0.2, 0.2, 0.6]]);
        let b = probs(&[[0.1, 0.1, 0.8], [0.9, 0.05, 0.05]]);
        let dab = pairwise_diversity(&a, &b).unwrap();
        let dba = pairwise_diversity(&b, &a).unwrap();
        assert_eq!(dab, dba);
        assert!((0.0..=1.0).contains(&dab));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn similarity_matrix_shape_and_diagonal() {
        let members = vec![
            probs(&[[1.0, 0.0, 0.0]]),
            probs(&[[0.0, 1.0, 0.0]]),
            probs(&[[1.0, 0.0, 0.0]]),
        ];
        let m = similarity_matrix(&members).unwrap();
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m[i][i], 1.0);
        }
        assert!((m[0][1] - 0.0).abs() < 1e-6);
        assert!((m[0][2] - 1.0).abs() < 1e-6);
        assert_eq!(m[1][2], m[2][1]);
    }

    #[test]
    fn ensemble_diversity_averages_pairs() {
        // three members: two identical, one orthogonal
        let members = vec![
            probs(&[[1.0, 0.0, 0.0]]),
            probs(&[[1.0, 0.0, 0.0]]),
            probs(&[[0.0, 1.0, 0.0]]),
        ];
        // pairs: (0,1)=0, (0,2)=1, (1,2)=1 -> mean 2/3
        let d = ensemble_diversity(&members).unwrap();
        assert!((d - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn needs_two_members_and_equal_shapes() {
        let a = probs(&[[1.0, 0.0, 0.0]]);
        assert!(ensemble_diversity(std::slice::from_ref(&a)).is_err());
        let b = Tensor::zeros(&[2, 3]);
        assert!(pairwise_diversity(&a, &b).is_err());
    }
}
