//! Quantized serving form of an MLP member: int8 weights served natively.
//!
//! An `EEB2` bundle written with the int8 codec chain stores each dense
//! weight matrix as symmetric int8 plus one f32 scale. Loading it back
//! through a float [`edde_nn::Network`] would dequantize every matrix to
//! f32 and run the float gemm — paying the full f32 memory and bandwidth
//! cost that quantization was meant to remove. A [`QuantizedMlp`] instead
//! keeps the int8 weights exactly as stored and runs the integer kernel
//! ([`edde_tensor::simd::gemm_i8_i32`]) with a single f32 rescale per
//! layer, so quantized bundles serve without ever materializing f32
//! weights.
//!
//! Activations are quantized per forward call with a per-tensor symmetric
//! scale (`amax / 127`), staged through the [`edde_nn::infer::InferCtx`]
//! typed pools so steady-state inference stays allocation-free. The
//! integer accumulation is exact, so results are bit-identical across
//! SIMD backends — the only float arithmetic is the per-layer
//! `acc · (a_scale · w_scale) + bias` epilogue.

use crate::error::{BundleError, EnsembleError, Result};
use edde_nn::infer::InferCtx;
use edde_nn::Network;
use edde_tensor::codec;
use edde_tensor::simd;
use edde_tensor::Tensor;

/// One dense layer in quantized form: row-major `[in, out]` int8 weights
/// with a single symmetric scale, plus an f32 bias.
#[derive(Debug, Clone)]
pub struct QuantizedDense {
    w_q: Vec<i8>,
    w_scale: f32,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl QuantizedDense {
    /// Wraps already-quantized weights, validating shapes and the scale.
    pub fn new(
        w_q: Vec<i8>,
        w_scale: f32,
        bias: Vec<f32>,
        in_features: usize,
        out_features: usize,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(EnsembleError::BadConfig(
                "quantized dense layer needs non-zero feature counts".into(),
            ));
        }
        if w_q.len() != in_features * out_features {
            return Err(EnsembleError::BadConfig(format!(
                "quantized weight length {} does not match [{in_features}, {out_features}]",
                w_q.len()
            )));
        }
        if bias.len() != out_features {
            return Err(EnsembleError::BadConfig(format!(
                "quantized bias length {} does not match {out_features} outputs",
                bias.len()
            )));
        }
        if !(w_scale.is_finite() && w_scale > 0.0) {
            return Err(EnsembleError::BadConfig(format!(
                "quantized weight scale {w_scale} is not a positive finite value"
            )));
        }
        Ok(QuantizedDense {
            w_q,
            w_scale,
            bias,
            in_features,
            out_features,
        })
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The int8 weight matrix, row-major `[in, out]`.
    pub fn weight_q(&self) -> &[i8] {
        &self.w_q
    }

    /// Symmetric dequantization scale for the weights.
    pub fn weight_scale(&self) -> f32 {
        self.w_scale
    }

    /// The f32 bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

/// An MLP whose dense weights live natively in int8 — the serving form a
/// quantized `EEB2` bundle loads into without dequantizing to f32.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
    arch: String,
    num_classes: usize,
}

impl QuantizedMlp {
    /// Assembles a quantized MLP from per-layer parts, validating that the
    /// layer widths chain.
    pub fn from_parts(arch: impl Into<String>, layers: Vec<QuantizedDense>) -> Result<Self> {
        let arch = arch.into();
        if layers.is_empty() {
            return Err(EnsembleError::BadConfig(format!(
                "quantized mlp {arch:?} has no layers"
            )));
        }
        for w in layers.windows(2) {
            if w[0].out_features != w[1].in_features {
                return Err(EnsembleError::BadConfig(format!(
                    "quantized mlp {arch:?} layer widths do not chain: {} -> {}",
                    w[0].out_features, w[1].in_features
                )));
            }
        }
        let num_classes = layers.last().expect("non-empty").out_features;
        Ok(QuantizedMlp {
            layers,
            arch,
            num_classes,
        })
    }

    /// Quantizes a trained float MLP for native int8 serving. Only `mlp-*`
    /// architectures have this form — their state is exactly the
    /// `fc{i}.weight` / `fc{i}.bias` sequence the per-layer kernel needs.
    pub fn from_network(net: &Network) -> Result<Self> {
        let arch = net.arch().to_string();
        if !arch.starts_with("mlp-") {
            return Err(EnsembleError::BadConfig(format!(
                "only mlp-* architectures have a quantized serving form, got {arch:?}"
            )));
        }
        let state = net.export_state();
        let mut layers = Vec::new();
        let mut i = 0usize;
        loop {
            let wname = format!("fc{i}.weight");
            let Some((_, w)) = state.iter().find(|(n, _)| *n == wname) else {
                break;
            };
            let bname = format!("fc{i}.bias");
            let (_, b) = state
                .iter()
                .find(|(n, _)| *n == bname)
                .ok_or_else(|| EnsembleError::BadConfig(format!("{bname} missing from state")))?;
            if w.dims().len() != 2 || b.dims().len() != 1 {
                return Err(EnsembleError::BadConfig(format!(
                    "{wname} / {bname} have unexpected ranks"
                )));
            }
            let (q, scale) =
                codec::quantize_symmetric(w.data()).map_err(|e| BundleError::codec(wname, e))?;
            layers.push(QuantizedDense::new(
                q,
                scale,
                b.data().to_vec(),
                w.dims()[0],
                w.dims()[1],
            )?);
            i += 1;
        }
        let qm = QuantizedMlp::from_parts(arch, layers)?;
        if qm.num_classes != net.num_classes() {
            return Err(EnsembleError::BadConfig(format!(
                "quantized mlp ends in {} outputs but the network reports {} classes",
                qm.num_classes,
                net.num_classes()
            )));
        }
        Ok(qm)
    }

    /// Architecture tag carried over from the float network (`"mlp-3"`).
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Output class count.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The quantized layers, input to output.
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Batched logits for `input` (`[n, in_features]`, trailing dims
    /// flattened). Each layer quantizes its activations symmetrically,
    /// runs the exact int8×int8→i32 gemm, and rescales once in f32; ReLU
    /// between layers matches the float MLP. All staging comes from `ctx`,
    /// so steady-state passes allocate nothing fresh.
    pub fn forward(&self, input: &Tensor, ctx: &mut InferCtx) -> Result<Tensor> {
        let dims = input.dims();
        if dims.is_empty() {
            return Err(EnsembleError::DataMismatch(
                "quantized forward needs a batched input".into(),
            ));
        }
        let n = dims[0];
        let row: usize = dims[1..].iter().product();
        let first_in = self.layers[0].in_features;
        if row != first_in {
            return Err(EnsembleError::DataMismatch(format!(
                "input rows have {row} features, quantized mlp expects {first_in}"
            )));
        }
        let mut cur: Option<Tensor> = None;
        for (idx, layer) in self.layers.iter().enumerate() {
            let x: &[f32] = match &cur {
                Some(t) => t.data(),
                None => input.data(),
            };
            let amax = simd::abs_max_finite(x).ok_or_else(|| {
                EnsembleError::Diverged("non-finite activation in quantized forward".into())
            })?;
            let a_scale = if amax > 0.0 { amax / 127.0 } else { 1.0 };
            let mut qa = ctx.alloc_i8(x.len());
            simd::quantize_i8(x, a_scale.recip(), &mut qa);
            let out = layer.out_features;
            let mut acc = ctx.alloc_i32(n * out);
            acc.fill(0);
            simd::gemm_i8_i32(&mut acc, &qa, &layer.w_q, n, layer.in_features, out);
            let mut y = ctx.alloc(&[n, out]);
            let scale = a_scale * layer.w_scale;
            let relu = idx + 1 < self.layers.len();
            let yd = y.data_mut();
            for (yrow, arow) in yd.chunks_exact_mut(out).zip(acc.chunks_exact(out)) {
                for ((v, &a), &b) in yrow.iter_mut().zip(arow).zip(&layer.bias) {
                    let t = a as f32 * scale + b;
                    *v = if relu && t < 0.0 { 0.0 } else { t };
                }
            }
            ctx.recycle_i8(qa);
            ctx.recycle_i32(acc);
            if let Some(t) = cur.take() {
                ctx.recycle(t);
            }
            cur = Some(y);
        }
        Ok(cur.expect("at least one layer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[6, 10, 4], 0.0, &mut r)
    }

    #[test]
    fn quantized_forward_tracks_the_float_network() {
        let net = net(7);
        let q = QuantizedMlp::from_network(&net).unwrap();
        assert_eq!(q.arch(), net.arch());
        assert_eq!(q.num_classes(), 4);
        assert_eq!(q.layers().len(), 2);
        let mut ctx = InferCtx::new();
        let x = Tensor::from_vec(
            (0..5 * 6)
                .map(|i| ((i * 13 % 11) as f32 - 5.0) * 0.3)
                .collect(),
            &[5, 6],
        )
        .unwrap();
        let yq = q.forward(&x, &mut ctx).unwrap();
        let yf = net.forward(&x, &mut ctx).unwrap();
        assert_eq!(yq.dims(), yf.dims());
        // per-tensor int8 on weights and activations: close, not exact
        let scale: f32 = yf.data().iter().fold(1.0f32, |m, v| m.max(v.abs()));
        for (a, b) in yq.data().iter().zip(yf.data()) {
            assert!((a - b).abs() <= 0.08 * scale, "quantized {a} vs float {b}");
        }
    }

    #[test]
    fn quantized_forward_is_steady_state_allocation_free() {
        let q = QuantizedMlp::from_network(&net(3)).unwrap();
        let mut ctx = InferCtx::new();
        let x = Tensor::ones(&[4, 6]);
        for _ in 0..2 {
            let y = q.forward(&x, &mut ctx).unwrap();
            ctx.recycle(y);
        }
        let warm = ctx.fresh_allocs();
        for _ in 0..5 {
            let y = q.forward(&x, &mut ctx).unwrap();
            ctx.recycle(y);
        }
        assert_eq!(ctx.fresh_allocs(), warm);
    }

    #[test]
    fn bad_shapes_and_scales_are_rejected() {
        assert!(QuantizedDense::new(vec![0i8; 6], 0.1, vec![0.0; 3], 2, 3).is_ok());
        assert!(QuantizedDense::new(vec![0i8; 5], 0.1, vec![0.0; 3], 2, 3).is_err());
        assert!(QuantizedDense::new(vec![0i8; 6], 0.0, vec![0.0; 3], 2, 3).is_err());
        assert!(QuantizedDense::new(vec![0i8; 6], f32::NAN, vec![0.0; 3], 2, 3).is_err());
        assert!(QuantizedDense::new(vec![0i8; 6], 0.1, vec![0.0; 2], 2, 3).is_err());
        let a = QuantizedDense::new(vec![0i8; 6], 0.1, vec![0.0; 3], 2, 3).unwrap();
        let b = QuantizedDense::new(vec![0i8; 8], 0.1, vec![0.0; 2], 4, 2).unwrap();
        // 3 outputs cannot feed a 4-input layer
        assert!(QuantizedMlp::from_parts("mlp-2", vec![a, b]).is_err());
        assert!(QuantizedMlp::from_parts("mlp-0", vec![]).is_err());
    }

    #[test]
    fn input_width_mismatch_is_a_data_error() {
        let q = QuantizedMlp::from_network(&net(1)).unwrap();
        let mut ctx = InferCtx::new();
        let bad = Tensor::ones(&[2, 5]);
        assert!(matches!(
            q.forward(&bad, &mut ctx),
            Err(EnsembleError::DataMismatch(_))
        ));
    }
}
