//! Snapshot Ensemble (Huang et al., ICLR 2017): one optimization run with a
//! cosine-annealing warm-restart schedule; the model is snapshotted at the
//! end of each cycle and the snapshots are soft-vote averaged.

use super::{record_trace, EnsembleMethod, RunResult};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::trainer::LossSpec;
use edde_nn::optim::LrSchedule;

/// Snapshot Ensemble: "Train 1, get M for free". Because each cycle starts
/// from the previous cycle's weights, training is cheap — and diversity is
/// low, which is exactly the weakness EDDE targets.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Number of cosine cycles (= snapshots).
    pub cycles: usize,
    /// Epochs per cycle.
    pub epochs_per_cycle: usize,
}

impl Snapshot {
    /// A snapshot ensemble.
    pub fn new(cycles: usize, epochs_per_cycle: usize) -> Self {
        Snapshot {
            cycles,
            epochs_per_cycle,
        }
    }
}

impl EnsembleMethod for Snapshot {
    fn name(&self) -> String {
        "Snapshot".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        if self.cycles == 0 || self.epochs_per_cycle == 0 {
            return Err(EnsembleError::BadConfig(
                "snapshot needs cycles >= 1 and epochs_per_cycle >= 1".into(),
            ));
        }
        let mut rng = env.rng(0x55);
        let mut net = (env.factory)(&mut rng)?;
        let schedule = LrSchedule::CosineRestarts {
            base: env.base_lr,
            cycle_epochs: self.epochs_per_cycle,
        };
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        for cycle in 0..self.cycles {
            // Each cycle is one `train` call with the cosine schedule; the
            // restart (lr back to base) happens naturally because epochs
            // restart from 0. The warm start is the carried-over `net`.
            env.trainer.train(
                &mut net,
                &env.data.train,
                &schedule,
                self.epochs_per_cycle,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )?;
            model.push(net.clone(), 1.0, format!("snapshot-cycle-{cycle}"));
            record_trace(
                &mut model,
                &env.data.test,
                (cycle + 1) * self.epochs_per_cycle,
                &mut trace,
            )?;
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.cycles * self.epochs_per_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.7,
            },
            31,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            37,
        )
    }

    #[test]
    fn snapshots_accumulate_per_cycle() {
        let result = Snapshot::new(4, 5).run(&env()).unwrap();
        assert_eq!(result.model.len(), 4);
        assert_eq!(result.total_epochs, 20);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn snapshot_members_are_correlated() {
        // Warm-started snapshots should be much more similar to each other
        // than independently initialized bagging members — the paper's core
        // observation about Snapshot's low diversity (Fig. 8). The contrast
        // is visible under a *short* budget, before every method converges
        // to the same function on this easy task.
        let e = env();
        let mut snap = Snapshot::new(3, 2).run(&e).unwrap();
        let mut bag = crate::methods::Bagging::new(3, 2).run(&e).unwrap();
        let d_snap =
            crate::diversity::model_diversity(&mut snap.model, e.data.test.features()).unwrap();
        let d_bag =
            crate::diversity::model_diversity(&mut bag.model, e.data.test.features()).unwrap();
        assert!(
            d_snap < d_bag,
            "snapshot {d_snap} should be below bagging {d_bag}"
        );
    }

    #[test]
    fn zero_cycles_rejected() {
        assert!(Snapshot::new(0, 5).run(&env()).is_err());
    }
}
