//! Snapshot Ensemble (Huang et al., ICLR 2017): one optimization run with a
//! cosine-annealing warm-restart schedule; the model is snapshotted at the
//! end of each cycle and the snapshots are soft-vote averaged.

use super::{
    record_trace, train_member, EnsembleMethod, MemberPersist, MemberRun, RunResult, TracePoint,
};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RunProtocol, RunSession};
use crate::trainer::LossSpec;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::optim::LrSchedule;

/// RNG-stream salt separating Snapshot's draws from other methods'.
const SALT: u64 = 0x55;

/// Snapshot Ensemble: "Train 1, get M for free". Because each cycle starts
/// from the previous cycle's weights, training is cheap — and diversity is
/// low, which is exactly the weakness EDDE targets.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Number of cosine cycles (= snapshots).
    pub cycles: usize,
    /// Epochs per cycle.
    pub epochs_per_cycle: usize,
}

impl Snapshot {
    /// A snapshot ensemble.
    pub fn new(cycles: usize, epochs_per_cycle: usize) -> Self {
        Snapshot {
            cycles,
            epochs_per_cycle,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.cycles == 0 || self.epochs_per_cycle == 0 {
            return Err(EnsembleError::BadConfig(
                "snapshot needs cycles >= 1 and epochs_per_cycle >= 1".into(),
            ));
        }
        Ok(())
    }
}

impl EnsembleMethod for Snapshot {
    fn name(&self) -> String {
        "Snapshot".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.validate()?;
        let mut rng = env.rng(SALT);
        let mut net = (env.factory)(&mut rng)?;
        let schedule = LrSchedule::CosineRestarts {
            base: env.base_lr,
            cycle_epochs: self.epochs_per_cycle,
        };
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        for cycle in 0..self.cycles {
            // Each cycle is one `train` call with the cosine schedule; the
            // restart (lr back to base) happens naturally because epochs
            // restart from 0. The warm start is the carried-over `net`.
            env.trainer.train(
                &mut net,
                &env.data.train,
                &schedule,
                self.epochs_per_cycle,
                None,
                &LossSpec::CrossEntropy,
                &mut rng,
            )?;
            model.push(net.clone(), 1.0, format!("snapshot-cycle-{cycle}"));
            record_trace(
                &model,
                &env.data.test,
                (cycle + 1) * self.epochs_per_cycle,
                &mut trace,
            )?;
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.cycles * self.epochs_per_cycle,
        })
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    /// The resumable Snapshot run. Unlike member-independent methods, a
    /// snapshot at cycle `c` *is* the live trajectory at that point, so
    /// restoring the last completed snapshot warm-starts the remaining
    /// cycles bit-exactly; an in-flight cycle additionally resumes from
    /// its epoch-boundary [`crate::runstate::MemberProgress`] record.
    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        self.validate()?;
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        if session.protocol() == RunProtocol::Legacy {
            return Err(EnsembleError::Checkpoint(
                "snapshot resume requires a per-epoch (EDM2) run store; \
                 legacy member-granular stores never held snapshot runs"
                    .into(),
            ));
        }
        let schedule = LrSchedule::CosineRestarts {
            base: env.base_lr,
            cycle_epochs: self.epochs_per_cycle,
        };
        // The single trajectory's initialization draws from cycle 0's
        // member stream, so it is reconstructible without any shared
        // stream history.
        let mut net = (env.factory)(&mut runstate::member_rng(env.seed, SALT, 0))?;
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        let restored = session.completed().min(self.cycles);
        for cycle in 0..restored {
            let rec = session.members()[cycle].clone();
            let mut snap = (env.factory)(&mut runstate::member_rng(env.seed, SALT, cycle))?;
            session.restore_network(cycle, &mut snap)?;
            if cycle + 1 == restored {
                // The last completed snapshot IS the live trajectory at
                // that boundary: warm-start the remaining cycles from it.
                let state = snap.export_state();
                net.import_state(&state)?;
            }
            model.push(snap, rec.alpha, rec.label);
            trace.push(TracePoint {
                cumulative_epochs: rec.cumulative_epochs,
                members: cycle + 1,
                test_accuracy: rec.test_accuracy,
            });
        }
        let (persist_store, fingerprint) = (session.store(), session.fingerprint());
        for cycle in restored..self.cycles {
            train_member(
                &env.trainer,
                &mut net,
                &env.data.train,
                &schedule,
                self.epochs_per_cycle,
                None,
                &LossSpec::CrossEntropy,
                MemberRun::PerEpoch {
                    seed: runstate::member_seed(env.seed, SALT, cycle),
                    member: cycle,
                    persist: Some(MemberPersist {
                        store: persist_store,
                        fingerprint,
                    }),
                },
            )?;
            model.push(net.clone(), 1.0, format!("snapshot-cycle-{cycle}"));
            record_trace(
                &model,
                &env.data.test,
                (cycle + 1) * self.epochs_per_cycle,
                &mut trace,
            )?;
            let point = *trace.last().expect("just recorded");
            let snap_net = &mut model.members_mut().last_mut().expect("just pushed").network;
            session.record_member(
                MemberRecord {
                    label: format!("snapshot-cycle-{cycle}"),
                    alpha: 1.0,
                    seed: runstate::member_seed(env.seed, SALT, cycle),
                    net_key: String::new(),
                    cumulative_epochs: point.cumulative_epochs,
                    test_accuracy: point.test_accuracy,
                    weights: vec![],
                },
                snap_net,
            )?;
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.cycles * self.epochs_per_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.7,
            },
            31,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            37,
        )
    }

    #[test]
    fn snapshots_accumulate_per_cycle() {
        let result = Snapshot::new(4, 5).run(&env()).unwrap();
        assert_eq!(result.model.len(), 4);
        assert_eq!(result.total_epochs, 20);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn snapshot_members_are_correlated() {
        // Warm-started snapshots should be much more similar to each other
        // than independently initialized bagging members — the paper's core
        // observation about Snapshot's low diversity (Fig. 8). The contrast
        // is visible under a *short* budget, before every method converges
        // to the same function on this easy task.
        let e = env();
        let snap = Snapshot::new(3, 2).run(&e).unwrap();
        let bag = crate::methods::Bagging::new(3, 2).run(&e).unwrap();
        let d_snap =
            crate::diversity::model_diversity(&snap.model, e.data.test.features()).unwrap();
        let d_bag = crate::diversity::model_diversity(&bag.model, e.data.test.features()).unwrap();
        assert!(
            d_snap < d_bag,
            "snapshot {d_snap} should be below bagging {d_bag}"
        );
    }

    #[test]
    fn zero_cycles_rejected() {
        assert!(Snapshot::new(0, 5).run(&env()).is_err());
    }
}
