//! EDDE — Efficient Diversity-Driven Ensemble (Algorithm 1 of the paper).
//!
//! Round 1 trains `h₁` from scratch with weighted cross-entropy and uniform
//! weights `W₁`. Every later round `t`:
//!
//! 1. builds a fresh student and β-transfers the lower layers of `h_{t−1}`
//!    into it (§IV-B);
//! 2. computes the ensemble soft targets `H_{t−1}(x)` on the full training
//!    set and trains the student with the diversity-driven loss
//!    `W_{t−1}(x)·{CE − γ‖h(x) − H(x)‖₂}` (Eq. 10);
//! 3. computes `Sim_t(x)` and `Bias_t(x)` (Eq. 12/13) and rebuilds the
//!    sample weights from `W₁` (Eq. 14): misclassified samples get
//!    `exp(Sim_t + Bias_t)`, correctly classified samples keep `W₁`, then
//!    the vector is normalized to sum to `N`;
//! 4. sets the member weight `α_t` from the similarity-weighted log-odds of
//!    Eq. 15 and appends `h_t` to the soft-voting ensemble (Eq. 16).
//!
//! The Table VI ablations are configuration switches: `gamma = 0` is
//! "EDDE (normal loss)", [`TransferMode::All`] is "EDDE (transfer all)",
//! [`TransferMode::None`] is "EDDE (transfer none)".

use super::{
    clamped_half_log_odds, record_trace, train_member, EnsembleMethod, MemberPersist, MemberRun,
    RunResult, TracePoint,
};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RngPlan, RunProtocol, RunSession};
use crate::trainer::LossSpec;
use edde_data::sampler::normalize_weights;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::metrics::correctness;
use edde_nn::optim::LrSchedule;
use edde_tensor::Tensor;

/// How much of the previous base model initializes the next one.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TransferMode {
    /// Independent training — the "EDDE (transfer none)" ablation.
    None,
    /// Full warm start, like Snapshot — the "EDDE (transfer all)" ablation.
    All,
    /// The paper's β-prefix transfer (§IV-B). β must be in `[0, 1]`.
    Beta(f32),
}

/// The EDDE method (the paper's contribution).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Edde {
    /// Number of base models `T`.
    pub members: usize,
    /// Epoch budget for the first model (trained from scratch; the paper
    /// gives it a Snapshot-style full cycle).
    pub first_epochs: usize,
    /// Epoch budget for each subsequent model (smaller — transfer makes
    /// convergence fast; the paper uses 30 of 40 for ResNet).
    pub later_epochs: usize,
    /// Diversity strength γ (Eq. 10; the paper uses 0.1 for ResNet, 0.2 for
    /// DenseNet).
    pub gamma: f32,
    /// Knowledge-transfer mode (the paper's default is `Beta(0.7)` for
    /// ResNet and `Beta(0.5)` for DenseNet).
    pub transfer: TransferMode,
    /// Whether the Boosting weight updates of Eq. 12–14 run. Disabling them
    /// trains every round on uniform weights (an extra ablation axis).
    pub boosting: bool,
}

impl Edde {
    /// EDDE with the paper's structure and a given β/γ.
    pub fn new(
        members: usize,
        first_epochs: usize,
        later_epochs: usize,
        gamma: f32,
        beta: f32,
    ) -> Self {
        Edde {
            members,
            first_epochs,
            later_epochs,
            gamma,
            transfer: TransferMode::Beta(beta),
            boosting: true,
        }
    }

    /// Total epoch budget this configuration consumes.
    pub fn total_epochs(&self) -> usize {
        if self.members == 0 {
            0
        } else {
            self.first_epochs + (self.members - 1) * self.later_epochs
        }
    }

    fn validate(&self) -> Result<()> {
        if self.members == 0 {
            return Err(EnsembleError::BadConfig("edde needs members >= 1".into()));
        }
        if self.first_epochs == 0 || (self.members > 1 && self.later_epochs == 0) {
            return Err(EnsembleError::BadConfig(
                "edde epoch budgets must be positive".into(),
            ));
        }
        if self.gamma < 0.0 {
            return Err(EnsembleError::BadConfig("gamma must be >= 0".into()));
        }
        if let TransferMode::Beta(b) = self.transfer {
            if !(0.0..=1.0).contains(&b) {
                return Err(EnsembleError::BadConfig(format!(
                    "beta must be in [0, 1], got {b}"
                )));
            }
        }
        Ok(())
    }
}

impl Edde {
    fn run_impl(
        &self,
        env: &ExperimentEnv,
        mut session: Option<&mut RunSession<'_>>,
    ) -> Result<RunResult> {
        self.validate()?;
        let mut rngs = match session {
            Some(_) => RngPlan::per_member(env.seed, 0xEDDE),
            None => RngPlan::shared(env.rng(0xEDDE)),
        };
        let train = &env.data.train;
        let n = train.len();
        let k = train.num_classes();
        let one_hot = edde_data::encode::one_hot(train.labels(), k)?;

        // Algorithm 1 line 2: W₁(x_i) = 1/N, kept at mean 1 (sum N) so the
        // effective learning rate matches unweighted training.
        let w1 = vec![1.0f32; n];
        let mut weights = w1.clone();

        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();

        let first_schedule = LrSchedule::paper_step(env.base_lr, self.first_epochs);
        let later_schedule = LrSchedule::paper_step(env.base_lr, self.later_epochs);

        // PerEpoch-protocol sessions train each member on epoch-derived
        // streams with epoch-boundary progress records; plain runs and
        // legacy (EDM1) sessions keep threading their member stream.
        let persist = session
            .as_deref()
            .map(|s| (s.store(), s.fingerprint(), s.protocol()));

        for t in 1..=self.members {
            rngs.start_member(t - 1);
            let cumulative = self.first_epochs + (t - 1) * self.later_epochs;
            if let Some(sess) = session.as_deref_mut() {
                if t <= sess.completed() {
                    let rec = sess.members()[t - 1].clone();
                    let mut net = (env.factory)(rngs.rng())?;
                    sess.restore_network(t - 1, &mut net)?;
                    model.push(net, rec.alpha, rec.label);
                    if rec.weights.len() != n {
                        return Err(EnsembleError::Checkpoint(format!(
                            "member {t} stored {} weights for {n} samples",
                            rec.weights.len()
                        )));
                    }
                    weights.copy_from_slice(&rec.weights);
                    trace.push(TracePoint {
                        cumulative_epochs: rec.cumulative_epochs,
                        members: t,
                        test_accuracy: rec.test_accuracy,
                    });
                    continue;
                }
            }
            let alpha_t = if t == 1 {
                // --- round 1 (lines 3–5) ----------------------------------
                let mut h1 = (env.factory)(rngs.rng())?;
                let run = match persist {
                    Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                        seed: rngs.seed_for(0),
                        member: 0,
                        persist: Some(MemberPersist { store, fingerprint }),
                    },
                    _ => MemberRun::Threaded(rngs.rng()),
                };
                train_member(
                    &env.trainer,
                    &mut h1,
                    train,
                    &first_schedule,
                    self.first_epochs,
                    Some(&weights),
                    &LossSpec::CrossEntropy,
                    run,
                )?;
                let probs1 = EnsembleModel::network_soft_targets(&h1, train.features())?;
                let correct1 = correctness(&probs1, train.labels())?;
                let pos = correct1.iter().filter(|&&c| c).count() as f64;
                let neg = (n as f64) - pos;
                // line 4, read through the ½·log convention of Eq. 15
                let alpha1 = clamped_half_log_odds(pos, neg);
                model.push(h1, alpha1, "edde-1");
                alpha1
            } else {
                // --- round t ≥ 2 (lines 6–15) -----------------------------
                // line 7: I(D, W_{t−1}, h_{t−1}, H_{t−1}, γ, β)
                let mut student = (env.factory)(rngs.rng())?;
                match self.transfer {
                    TransferMode::None => {}
                    TransferMode::All => {
                        let prev = &mut model.members_mut().last_mut().expect("t ≥ 2").network;
                        crate::transfer::transfer_partial(prev, &mut student, 1.0)?;
                    }
                    TransferMode::Beta(beta) => {
                        let prev = &mut model.members_mut().last_mut().expect("t ≥ 2").network;
                        crate::transfer::transfer_partial(prev, &mut student, beta)?;
                    }
                }
                let ensemble_soft = model.soft_targets(train.features())?;
                let run = match persist {
                    Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                        seed: rngs.seed_for(t - 1),
                        member: t - 1,
                        persist: Some(MemberPersist { store, fingerprint }),
                    },
                    _ => MemberRun::Threaded(rngs.rng()),
                };
                train_member(
                    &env.trainer,
                    &mut student,
                    train,
                    &later_schedule,
                    self.later_epochs,
                    Some(&weights),
                    &LossSpec::Diversity {
                        gamma: self.gamma,
                        ensemble_soft: &ensemble_soft,
                    },
                    run,
                )?;

                // lines 8–9: Sim_t and Bias_t on every training sample
                let probs_t = EnsembleModel::network_soft_targets(&student, train.features())?;
                let sim = per_sample_similarity(&probs_t, &ensemble_soft)?;
                let bias = per_sample_bias(&probs_t, &one_hot)?;
                let correct = correctness(&probs_t, train.labels())?;

                // line 10 / Eq. 14: rebuild weights from W₁
                if self.boosting {
                    for i in 0..n {
                        weights[i] = if correct[i] {
                            w1[i]
                        } else {
                            w1[i] * (sim[i] + bias[i]).exp()
                        };
                    }
                    normalize_weights(&mut weights, n as f32);
                }

                // line 12 / Eq. 15: similarity-weighted log odds
                let mut pos = 0.0f64;
                let mut neg = 0.0f64;
                for i in 0..n {
                    let sw = f64::from(sim[i]) * f64::from(weights[i]);
                    if correct[i] {
                        pos += sw;
                    } else {
                        neg += sw;
                    }
                }
                let alpha_t = clamped_half_log_odds(pos, neg);
                model.push(student, alpha_t, format!("edde-{t}"));
                alpha_t
            };
            record_trace(&model, &env.data.test, cumulative, &mut trace)?;
            if let Some(sess) = session.as_deref_mut() {
                let point = *trace.last().expect("just recorded");
                let net = &mut model.members_mut().last_mut().expect("just pushed").network;
                sess.record_member(
                    MemberRecord {
                        label: format!("edde-{t}"),
                        alpha: alpha_t,
                        seed: rngs.seed_for(t - 1),
                        net_key: String::new(),
                        cumulative_epochs: point.cumulative_epochs,
                        test_accuracy: point.test_accuracy,
                        weights: weights.clone(),
                    },
                    net,
                )?;
            }
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.total_epochs(),
        })
    }
}

impl EnsembleMethod for Edde {
    fn name(&self) -> String {
        if self.gamma == 0.0 {
            return "EDDE (normal loss)".into();
        }
        match self.transfer {
            TransferMode::All => "EDDE (transfer all)".into(),
            TransferMode::None => "EDDE (transfer none)".into(),
            TransferMode::Beta(_) => "EDDE".into(),
        }
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.run_impl(env, None)
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        self.run_impl(env, Some(&mut session))
    }
}

/// `Sim_t(x_i) = 1 − √2/2·‖h_t(x_i) − H_{t−1}(x_i)‖₂` (Eq. 12).
fn per_sample_similarity(probs: &Tensor, ensemble: &Tensor) -> Result<Vec<f32>> {
    row_distances(probs, ensemble).map(|d| {
        d.into_iter()
            .map(|dist| 1.0 - std::f32::consts::FRAC_1_SQRT_2 * dist)
            .collect()
    })
}

/// `Bias_t(x_i) = √2/2·‖h_t(x_i) − y_i‖₂` (Eq. 13).
fn per_sample_bias(probs: &Tensor, one_hot: &Tensor) -> Result<Vec<f32>> {
    row_distances(probs, one_hot).map(|d| {
        d.into_iter()
            .map(|dist| std::f32::consts::FRAC_1_SQRT_2 * dist)
            .collect()
    })
}

fn row_distances(a: &Tensor, b: &Tensor) -> Result<Vec<f32>> {
    if a.dims() != b.dims() || a.rank() != 2 {
        return Err(EnsembleError::DataMismatch(format!(
            "row distances need equal [N, k] matrices: {:?} vs {:?}",
            a.dims(),
            b.dims()
        )));
    }
    let (n, k) = (a.dims()[0], a.dims()[1]);
    Ok((0..n)
        .map(|i| {
            a.data()[i * k..(i + 1) * k]
                .iter()
                .zip(&b.data()[i * k..(i + 1) * k])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.7,
            },
            51,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 24, 12, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            53,
        )
    }

    #[test]
    fn edde_trains_t_members_with_weights() {
        let result = Edde::new(3, 10, 6, 0.1, 0.6).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        assert_eq!(result.total_epochs, 22);
        assert_eq!(result.trace.len(), 3);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.8, "accuracy {acc}");
        // alphas are in the clamp range
        for m in result.model.members() {
            assert!((super::super::ALPHA_MIN..=super::super::ALPHA_MAX).contains(&m.alpha));
        }
    }

    #[test]
    fn ablation_names() {
        assert_eq!(Edde::new(2, 5, 5, 0.1, 0.7).name(), "EDDE");
        assert_eq!(Edde::new(2, 5, 5, 0.0, 0.7).name(), "EDDE (normal loss)");
        let mut all = Edde::new(2, 5, 5, 0.1, 0.7);
        all.transfer = TransferMode::All;
        assert_eq!(all.name(), "EDDE (transfer all)");
        let mut none = Edde::new(2, 5, 5, 0.1, 0.7);
        none.transfer = TransferMode::None;
        assert_eq!(none.name(), "EDDE (transfer none)");
    }

    #[test]
    fn config_validation() {
        assert!(Edde::new(0, 5, 5, 0.1, 0.7).run(&env()).is_err());
        assert!(Edde::new(2, 0, 5, 0.1, 0.7).run(&env()).is_err());
        assert!(Edde::new(2, 5, 0, 0.1, 0.7).run(&env()).is_err());
        assert!(Edde::new(2, 5, 5, -0.1, 0.7).run(&env()).is_err());
        assert!(Edde::new(2, 5, 5, 0.1, 1.5).run(&env()).is_err());
    }

    #[test]
    fn transfer_all_is_less_diverse_than_beta() {
        let e = env();
        let beta = Edde::new(4, 8, 5, 0.1, 0.5).run(&e).unwrap();
        let all = Edde {
            transfer: TransferMode::All,
            ..Edde::new(4, 8, 5, 0.1, 0.5)
        }
        .run(&e)
        .unwrap();
        let d_beta =
            crate::diversity::model_diversity(&beta.model, e.data.test.features()).unwrap();
        let d_all = crate::diversity::model_diversity(&all.model, e.data.test.features()).unwrap();
        assert!(
            d_beta > d_all,
            "beta transfer diversity {d_beta} should exceed transfer-all {d_all}"
        );
    }

    #[test]
    fn similarity_and_bias_per_sample_math() {
        // identical rows -> sim 1, bias depends on distance to one-hot
        let p = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.5], &[2, 2]).unwrap();
        let q = p.clone();
        let sim = per_sample_similarity(&p, &q).unwrap();
        assert!((sim[0] - 1.0).abs() < 1e-6 && (sim[1] - 1.0).abs() < 1e-6);
        let y = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]).unwrap();
        let bias = per_sample_bias(&p, &y).unwrap();
        assert!(bias[0].abs() < 1e-6); // perfect prediction
                                       // ||(0.5,0.5)-(1,0)|| = √0.5 -> bias = √2/2·√0.5 = 0.5
        assert!((bias[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn boosting_reweights_misclassified_samples() {
        // run EDDE with 2 members and verify final accuracy is sane plus
        // boosting can be switched off
        let e = env();
        let mut no_boost = Edde::new(2, 8, 5, 0.1, 0.5);
        no_boost.boosting = false;
        let result = no_boost.run(&e).unwrap();
        assert_eq!(result.model.len(), 2);
    }
}
