//! Negative Correlation Learning (Liu & Yao, 1999) — the classic
//! diversity-driven method EDDE's related work builds on (§II-B).
//!
//! NCL trains all ensemble members **simultaneously**: each member `i`
//! minimizes its own error plus a penalty correlating its deviation with
//! the other members' deviations. For classification over soft targets we
//! use the same differentiable machinery as EDDE: member `i` trains with
//! the diversity-driven loss against the *mean of the other members'*
//! current soft targets, refreshed every round — a faithful soft-target
//! adaptation of the original regression formulation, implemented here as
//! an extension beyond the paper's baseline set.

use super::{record_trace, EnsembleMethod, RunResult};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::trainer::LossSpec;
use edde_nn::optim::LrSchedule;
use edde_nn::Network;
use edde_tensor::Tensor;

/// Simultaneous negatively-correlated training of `members` networks.
///
/// Training proceeds in `rounds` sweeps; in each sweep every member trains
/// `epochs_per_round` epochs against the current mean soft target of its
/// peers, with penalty strength `lambda` (the NCL λ, reusing the Eq. 10
/// gradient machinery).
#[derive(Debug, Clone)]
pub struct Ncl {
    /// Ensemble size.
    pub members: usize,
    /// Alternation sweeps over the members.
    pub rounds: usize,
    /// Epochs each member trains per sweep.
    pub epochs_per_round: usize,
    /// Negative-correlation strength (the NCL λ).
    pub lambda: f32,
}

impl Ncl {
    /// A standard NCL configuration.
    pub fn new(members: usize, rounds: usize, epochs_per_round: usize, lambda: f32) -> Self {
        Ncl {
            members,
            rounds,
            epochs_per_round,
            lambda,
        }
    }

    /// Total epochs this configuration consumes.
    pub fn total_epochs(&self) -> usize {
        self.members * self.rounds * self.epochs_per_round
    }
}

impl EnsembleMethod for Ncl {
    fn name(&self) -> String {
        "NCL".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        if self.members < 2 {
            return Err(EnsembleError::BadConfig(
                "NCL needs at least two members (the penalty couples them)".into(),
            ));
        }
        if self.rounds == 0 || self.epochs_per_round == 0 {
            return Err(EnsembleError::BadConfig(
                "NCL rounds and epochs_per_round must be positive".into(),
            ));
        }
        if self.lambda < 0.0 {
            return Err(EnsembleError::BadConfig("lambda must be >= 0".into()));
        }
        let mut rng = env.rng(0x9C1);
        let train = &env.data.train;
        let n = train.len();
        let k = train.num_classes();

        let mut nets: Vec<Network> = (0..self.members)
            .map(|_| (env.factory)(&mut rng))
            .collect::<Result<_>>()?;
        // member soft targets on the training set, refreshed as members train
        let mut softs: Vec<Tensor> = nets
            .iter_mut()
            .map(|net| EnsembleModel::network_soft_targets(net, train.features()))
            .collect::<Result<_>>()?;

        let total_per_member = self.rounds * self.epochs_per_round;
        let schedule = LrSchedule::paper_step(env.base_lr, total_per_member);
        let mut trace = Vec::new();
        for round in 0..self.rounds {
            for i in 0..self.members {
                // mean soft target of the *other* members
                let mut peer_mean = Tensor::zeros(&[n, k]);
                for (j, s) in softs.iter().enumerate() {
                    if j != i {
                        for (acc, &v) in peer_mean.data_mut().iter_mut().zip(s.data().iter()) {
                            *acc += v;
                        }
                    }
                }
                let denom = (self.members - 1) as f32;
                peer_mean.map_in_place(|v| v / denom);

                // continue this member's schedule from its global position
                let offset = round * self.epochs_per_round;
                let windowed = OffsetSchedule {
                    inner: &schedule,
                    offset,
                };
                env.trainer.train(
                    &mut nets[i],
                    train,
                    &windowed.materialize(self.epochs_per_round),
                    self.epochs_per_round,
                    None,
                    &LossSpec::Diversity {
                        gamma: self.lambda,
                        ensemble_soft: &peer_mean,
                    },
                    &mut rng,
                )?;
                softs[i] = EnsembleModel::network_soft_targets(&nets[i], train.features())?;
            }
        }
        let mut model = EnsembleModel::new();
        for (i, net) in nets.into_iter().enumerate() {
            model.push(net, 1.0, format!("ncl-{i}"));
        }
        record_trace(&model, &env.data.test, self.total_epochs(), &mut trace)?;
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.total_epochs(),
        })
    }
}

/// A window into an outer schedule starting at `offset` — lets alternating
/// NCL sweeps continue each member's decay from where it left off.
struct OffsetSchedule<'a> {
    inner: &'a LrSchedule,
    offset: usize,
}

impl OffsetSchedule<'_> {
    /// Materializes the window as a step schedule with explicit rates.
    /// (`LrSchedule` is a closed enum, so the window is expressed by
    /// re-deriving a constant-per-epoch approximation: for the step decay
    /// used here the rate is constant within a window unless a milestone
    /// falls inside it, which `StepDecay` handles after re-basing.)
    fn materialize(&self, _epochs: usize) -> LrSchedule {
        // Exact for any inner schedule: sample the inner schedule at the
        // offset window's midpoint-free positions via a StepDecay with
        // per-epoch "milestones" is overkill; since windows are short we
        // use the inner rate at the window start, matching how NCL's
        // original formulation holds the rate constant within a sweep.
        LrSchedule::Constant {
            base: self.inner.lr_at(self.offset),
        }
    }
    /// The wrapped starting epoch (exposed for tests).
    #[cfg(test)]
    fn start(&self) -> usize {
        self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 30,
                test_per_class: 15,
                spread: 0.8,
            },
            71,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 16, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            73,
        )
    }

    #[test]
    fn ncl_trains_simultaneously_and_scores() {
        let result = Ncl::new(3, 2, 3, 0.2).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        assert_eq!(result.total_epochs, 18);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn ncl_produces_diverse_members() {
        let e = env();
        let run = Ncl::new(3, 2, 2, 0.5).run(&e).unwrap();
        let d = crate::diversity::model_diversity(&run.model, e.data.test.features()).unwrap();
        assert!((0.0..=1.0).contains(&d));
        assert!(d > 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(Ncl::new(1, 2, 2, 0.2).run(&env()).is_err());
        assert!(Ncl::new(3, 0, 2, 0.2).run(&env()).is_err());
        assert!(Ncl::new(3, 2, 0, 0.2).run(&env()).is_err());
        assert!(Ncl::new(3, 2, 2, -0.2).run(&env()).is_err());
    }

    #[test]
    fn offset_schedule_samples_inner_rate() {
        let inner = LrSchedule::paper_step(0.1, 100);
        let w = OffsetSchedule {
            inner: &inner,
            offset: 60,
        };
        assert_eq!(w.start(), 60);
        let s = w.materialize(10);
        assert!((s.lr_at(0) - 0.01).abs() < 1e-7); // past the 50% milestone
    }
}
