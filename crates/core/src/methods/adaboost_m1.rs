//! AdaBoost.M1 (Freund & Schapire, 1997) with the SAMME multi-class member
//! weight, training each member on a weight-proportional resample — the
//! "sub-sampled dataset" protocol the paper attributes to the boosting
//! baselines.

use super::{
    clamped_half_log_odds, record_trace, train_member, EnsembleMethod, MemberPersist, MemberRun,
    RunResult, TracePoint, ALPHA_MIN,
};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RngPlan, RunProtocol, RunSession};
use crate::trainer::LossSpec;
use edde_data::sampler::{normalize_weights, weighted_indices};
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::metrics::correctness;
use edde_nn::optim::LrSchedule;

/// Classic boosting: maintain a distribution over training samples, train
/// each member on a resample drawn from it, up-weight what the member got
/// wrong, and weight members by their (log-odds) accuracy.
#[derive(Debug, Clone)]
pub struct AdaBoostM1 {
    /// Number of members.
    pub members: usize,
    /// Epoch budget per member.
    pub epochs_per_member: usize,
}

impl AdaBoostM1 {
    /// An AdaBoost.M1 ensemble.
    pub fn new(members: usize, epochs_per_member: usize) -> Self {
        AdaBoostM1 {
            members,
            epochs_per_member,
        }
    }
}

impl AdaBoostM1 {
    fn run_impl(
        &self,
        env: &ExperimentEnv,
        mut session: Option<&mut RunSession<'_>>,
    ) -> Result<RunResult> {
        if self.members == 0 {
            return Err(EnsembleError::BadConfig(
                "adaboost needs members >= 1".into(),
            ));
        }
        let mut rngs = match session {
            Some(_) => RngPlan::per_member(env.seed, 0xAD),
            None => RngPlan::shared(env.rng(0xAD)),
        };
        let train = &env.data.train;
        let n = train.len();
        let k = train.num_classes() as f64;
        let mut weights = vec![1.0f32 / n as f32; n];
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        let schedule = LrSchedule::paper_step(env.base_lr, self.epochs_per_member);
        let persist = session
            .as_deref()
            .map(|s| (s.store(), s.fingerprint(), s.protocol()));

        for t in 0..self.members {
            rngs.start_member(t);
            if let Some(sess) = session.as_deref_mut() {
                if t < sess.completed() {
                    let rec = sess.members()[t].clone();
                    let mut net = (env.factory)(rngs.rng())?;
                    sess.restore_network(t, &mut net)?;
                    model.push(net, rec.alpha, rec.label);
                    if rec.weights.len() != n {
                        return Err(EnsembleError::Checkpoint(format!(
                            "member {t} stored {} weights for {n} samples",
                            rec.weights.len()
                        )));
                    }
                    weights.copy_from_slice(&rec.weights);
                    trace.push(TracePoint {
                        cumulative_epochs: rec.cumulative_epochs,
                        members: t + 1,
                        test_accuracy: rec.test_accuracy,
                    });
                    continue;
                }
            }
            let idx = weighted_indices(&weights, n, rngs.rng());
            let resampled = train.select(&idx)?;
            let mut net = (env.factory)(rngs.rng())?;
            let run = match persist {
                Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                    seed: rngs.seed_for(t),
                    member: t,
                    persist: Some(MemberPersist { store, fingerprint }),
                },
                _ => MemberRun::Threaded(rngs.rng()),
            };
            train_member(
                &env.trainer,
                &mut net,
                &resampled,
                &schedule,
                self.epochs_per_member,
                None,
                &LossSpec::CrossEntropy,
                run,
            )?;
            // weighted error on the FULL training distribution
            let probs = EnsembleModel::network_soft_targets(&net, train.features())?;
            let correct = correctness(&probs, train.labels())?;
            let eps: f64 = weights
                .iter()
                .zip(correct.iter())
                .filter(|(_, &c)| !c)
                .map(|(&w, _)| f64::from(w))
                .sum();
            // SAMME: a member is useful while eps < 1 - 1/k
            let chance = 1.0 - 1.0 / k;
            let alpha = if eps >= chance {
                // worse than chance: keep it with the floor weight and
                // restart the distribution so boosting can recover
                for w in weights.iter_mut() {
                    *w = 1.0 / n as f32;
                }
                ALPHA_MIN
            } else {
                let a =
                    clamped_half_log_odds(1.0 - eps, eps.max(1e-9)) + (0.5 * (k - 1.0).ln()) as f32;
                // re-weight: up-weight misclassified samples
                for (w, &c) in weights.iter_mut().zip(correct.iter()) {
                    if !c {
                        *w *= (2.0 * a).exp();
                    }
                }
                normalize_weights(&mut weights, 1.0);
                a.clamp(ALPHA_MIN, super::ALPHA_MAX)
            };
            model.push(net, alpha, format!("adaboost-m1-{t}"));
            record_trace(
                &model,
                &env.data.test,
                (t + 1) * self.epochs_per_member,
                &mut trace,
            )?;
            if let Some(sess) = session.as_deref_mut() {
                let point = *trace.last().expect("just recorded");
                let net = &mut model.members_mut().last_mut().expect("just pushed").network;
                sess.record_member(
                    MemberRecord {
                        label: format!("adaboost-m1-{t}"),
                        alpha,
                        seed: rngs.seed_for(t),
                        net_key: String::new(),
                        cumulative_epochs: point.cumulative_epochs,
                        test_accuracy: point.test_accuracy,
                        weights: weights.clone(),
                    },
                    net,
                )?;
            }
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.members * self.epochs_per_member,
        })
    }
}

impl EnsembleMethod for AdaBoostM1 {
    fn name(&self) -> String {
        "AdaBoost.M1".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.run_impl(env, None)
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        self.run_impl(env, Some(&mut session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.8,
            },
            13,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            21,
        )
    }

    #[test]
    fn boosting_produces_weighted_members() {
        let result = AdaBoostM1::new(3, 8).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        // members that learn should get alpha above the floor
        assert!(result.model.members().iter().any(|m| m.alpha > ALPHA_MIN));
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn trace_grows_with_members() {
        let result = AdaBoostM1::new(2, 5).run(&env()).unwrap();
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace[0].members, 1);
        assert_eq!(result.trace[1].members, 2);
        assert!(result.trace[1].cumulative_epochs > result.trace[0].cumulative_epochs);
    }
}
