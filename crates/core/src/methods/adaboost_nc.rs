//! AdaBoost.NC (Wang, Chen & Yao, IJCNN 2010): boosting with an ambiguity
//! penalty that promotes diversity through the *sample weights* — the
//! diversity-driven baseline the paper contrasts EDDE with (§II-B, §IV-C).
//!
//! Per round `t`:
//!
//! 1. train `h_t` on a weight-proportional resample (random init — unless
//!    the Table VI ablation enables transfer);
//! 2. compute the ambiguity `amb_t(x) = 1/t · Σ_{τ≤t} 1[h_τ(x) ≠ H_t(x)]`,
//!    i.e. how much the members disagree with the current ensemble, and the
//!    penalty `p_t(x) = 1 − amb_t(x)`;
//! 3. update weights `w ∝ w · p_t(x)^λ · exp(α_t·1[h_t(x) ≠ y])` — samples
//!    the ensemble already disagrees on (low penalty) are *down*-weighted,
//!    pushing later members toward them differently;
//! 4. `α_t = ½·ln((1−ε_t)/ε_t)` from the penalized weighted error.

use super::{
    clamped_half_log_odds, record_trace, train_member, EnsembleMethod, MemberPersist, MemberRun,
    RunResult, TracePoint,
};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RngPlan, RunProtocol, RunSession};
use crate::trainer::LossSpec;
use crate::transfer::transfer_partial;
use edde_data::sampler::{normalize_weights, weighted_indices};
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::metrics::correctness;
use edde_nn::optim::LrSchedule;
use edde_tensor::ops::argmax_rows;

/// The AdaBoost.NC baseline.
#[derive(Debug, Clone)]
pub struct AdaBoostNc {
    /// Number of members.
    pub members: usize,
    /// Epoch budget per member.
    pub epochs_per_member: usize,
    /// Penalty strength λ (Wang et al. recommend small integers; 2 here).
    pub lambda: f32,
    /// Table VI ablation: initialize each member from the full weights of
    /// the previous one ("AdaBoost.NC (transfer)").
    pub transfer: bool,
}

impl AdaBoostNc {
    /// The standard configuration (λ = 2, no transfer).
    pub fn new(members: usize, epochs_per_member: usize) -> Self {
        AdaBoostNc {
            members,
            epochs_per_member,
            lambda: 2.0,
            transfer: false,
        }
    }

    /// The "AdaBoost.NC (transfer)" ablation of Table VI.
    pub fn with_transfer(members: usize, epochs_per_member: usize) -> Self {
        AdaBoostNc {
            transfer: true,
            ..AdaBoostNc::new(members, epochs_per_member)
        }
    }
}

impl AdaBoostNc {
    fn run_impl(
        &self,
        env: &ExperimentEnv,
        mut session: Option<&mut RunSession<'_>>,
    ) -> Result<RunResult> {
        if self.members == 0 {
            return Err(EnsembleError::BadConfig(
                "adaboost.nc needs members >= 1".into(),
            ));
        }
        if self.lambda < 0.0 {
            return Err(EnsembleError::BadConfig("lambda must be >= 0".into()));
        }
        let mut rngs = match session {
            Some(_) => RngPlan::per_member(env.seed, 0xA0C),
            None => RngPlan::shared(env.rng(0xA0C)),
        };
        let train = &env.data.train;
        let n = train.len();
        let mut weights = vec![1.0f32 / n as f32; n];
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        // hard predictions of every member so far, for the ambiguity term
        let mut member_preds: Vec<Vec<usize>> = Vec::new();
        let schedule = LrSchedule::paper_step(env.base_lr, self.epochs_per_member);
        let persist = session
            .as_deref()
            .map(|s| (s.store(), s.fingerprint(), s.protocol()));

        for t in 0..self.members {
            rngs.start_member(t);
            if let Some(sess) = session.as_deref_mut() {
                if t < sess.completed() {
                    let rec = sess.members()[t].clone();
                    let mut net = (env.factory)(rngs.rng())?;
                    sess.restore_network(t, &mut net)?;
                    // The ambiguity term needs every member's hard
                    // predictions; recompute them from the restored net.
                    let probs = EnsembleModel::network_soft_targets(&net, train.features())?;
                    member_preds.push(argmax_rows(&probs)?);
                    model.push(net, rec.alpha, rec.label);
                    if rec.weights.len() != n {
                        return Err(EnsembleError::Checkpoint(format!(
                            "member {t} stored {} weights for {n} samples",
                            rec.weights.len()
                        )));
                    }
                    weights.copy_from_slice(&rec.weights);
                    trace.push(TracePoint {
                        cumulative_epochs: rec.cumulative_epochs,
                        members: t + 1,
                        test_accuracy: rec.test_accuracy,
                    });
                    continue;
                }
            }
            let idx = weighted_indices(&weights, n, rngs.rng());
            let resampled = train.select(&idx)?;
            let mut net = (env.factory)(rngs.rng())?;
            if self.transfer {
                if let Some(prev) = model.members_mut().last_mut() {
                    transfer_partial(&prev.network, &mut net, 1.0)?;
                }
            }
            let run = match persist {
                Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                    seed: rngs.seed_for(t),
                    member: t,
                    persist: Some(MemberPersist { store, fingerprint }),
                },
                _ => MemberRun::Threaded(rngs.rng()),
            };
            train_member(
                &env.trainer,
                &mut net,
                &resampled,
                &schedule,
                self.epochs_per_member,
                None,
                &LossSpec::CrossEntropy,
                run,
            )?;
            let probs = EnsembleModel::network_soft_targets(&net, train.features())?;
            let correct = correctness(&probs, train.labels())?;
            member_preds.push(argmax_rows(&probs)?);
            model.push(net, 1.0, format!("adaboost-nc-{t}"));

            // ensemble prediction including the new member
            let ens_probs = model.soft_targets(train.features())?;
            let ens_preds = argmax_rows(&ens_probs)?;
            // ambiguity and penalty per sample
            let t_now = member_preds.len() as f32;
            let penalties: Vec<f32> = (0..n)
                .map(|i| {
                    let disagree = member_preds
                        .iter()
                        .filter(|preds| preds[i] != ens_preds[i])
                        .count() as f32;
                    1.0 - disagree / t_now
                })
                .collect();

            // penalized weighted error of the new member
            let mut eps_num = 0.0f64;
            let mut eps_den = 0.0f64;
            for i in 0..n {
                let pw = f64::from(weights[i]) * f64::from(penalties[i].powf(self.lambda));
                eps_den += pw;
                if !correct[i] {
                    eps_num += pw;
                }
            }
            let eps = if eps_den > 0.0 {
                eps_num / eps_den
            } else {
                0.5
            };
            let alpha = clamped_half_log_odds(1.0 - eps, eps.max(1e-9));
            model.members_mut().last_mut().expect("just pushed").alpha = alpha;

            // weight update: penalty^lambda * exp(alpha * misclassified)
            for i in 0..n {
                let mut w = weights[i] * penalties[i].powf(self.lambda);
                if !correct[i] {
                    w *= (2.0 * alpha).exp();
                }
                weights[i] = w.max(1e-12);
            }
            normalize_weights(&mut weights, 1.0);

            record_trace(
                &model,
                &env.data.test,
                (t + 1) * self.epochs_per_member,
                &mut trace,
            )?;
            if let Some(sess) = session.as_deref_mut() {
                let point = *trace.last().expect("just recorded");
                let member = model.members_mut().last_mut().expect("just pushed");
                let (alpha, label) = (member.alpha, member.label.clone());
                sess.record_member(
                    MemberRecord {
                        label,
                        alpha,
                        seed: rngs.seed_for(t),
                        net_key: String::new(),
                        cumulative_epochs: point.cumulative_epochs,
                        test_accuracy: point.test_accuracy,
                        weights: weights.clone(),
                    },
                    &mut member.network,
                )?;
            }
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.members * self.epochs_per_member,
        })
    }
}

impl EnsembleMethod for AdaBoostNc {
    fn name(&self) -> String {
        if self.transfer {
            "AdaBoost.NC (transfer)".into()
        } else {
            "AdaBoost.NC".into()
        }
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.run_impl(env, None)
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        self.run_impl(env, Some(&mut session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.8,
            },
            17,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            23,
        )
    }

    #[test]
    fn nc_trains_and_scores() {
        let result = AdaBoostNc::new(3, 8).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn transfer_variant_has_name_and_runs() {
        let m = AdaBoostNc::with_transfer(2, 5);
        assert_eq!(m.name(), "AdaBoost.NC (transfer)");
        let result = m.run(&env()).unwrap();
        assert_eq!(result.model.len(), 2);
    }

    #[test]
    fn both_variants_produce_valid_diversity() {
        // The paper's Table VI ordering (plain NC more diverse than the
        // transfer variant) is a property of under-trained CNNs on hard
        // image data; on these easy blobs the ordering is not stable, so
        // here we only verify both variants run and produce well-formed
        // diversity values. The image-scale ordering is exercised by the
        // table6 benchmark harness.
        let e = env();
        let plain = AdaBoostNc::new(3, 2).run(&e).unwrap();
        let transferred = AdaBoostNc::with_transfer(3, 2).run(&e).unwrap();
        let d_plain =
            crate::diversity::model_diversity(&plain.model, e.data.test.features()).unwrap();
        let d_transfer =
            crate::diversity::model_diversity(&transferred.model, e.data.test.features()).unwrap();
        assert!((0.0..=1.0).contains(&d_plain));
        assert!((0.0..=1.0).contains(&d_transfer));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut m = AdaBoostNc::new(0, 5);
        assert!(m.run(&env()).is_err());
        m = AdaBoostNc::new(1, 5);
        m.lambda = -1.0;
        assert!(m.run(&env()).is_err());
    }
}
