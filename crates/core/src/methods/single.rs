//! The Single Model baseline: one network, full budget, no ensemble.

use super::{EnsembleMethod, RunResult, TracePoint};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::Result;
use crate::trainer::{TrainEvent, TrainLoop, TrainRng};
use edde_nn::optim::LrSchedule;

/// Trains a single network with the paper's step schedule and reports it as
/// a one-member "ensemble" (the first row of Tables II/III).
#[derive(Debug, Clone)]
pub struct SingleModel {
    /// Epoch budget.
    pub epochs: usize,
    /// Record a trace point every this many epochs (0 = only at the end).
    /// Fig. 7 plots the single model as a curve, so the harness sets this.
    pub trace_every: usize,
}

impl SingleModel {
    /// A single model trained for `epochs`, traced only at the end.
    pub fn new(epochs: usize) -> Self {
        SingleModel {
            epochs,
            trace_every: 0,
        }
    }
}

impl EnsembleMethod for SingleModel {
    fn name(&self) -> String {
        "Single Model".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        let mut rng = env.rng(0x51);
        let mut net = (env.factory)(&mut rng)?;
        let schedule = LrSchedule::paper_step(env.base_lr, self.epochs);
        let mut trace: Vec<TracePoint> = Vec::new();
        let test = &env.data.test;
        let trace_every = self.trace_every;
        let mut tracer = |event: TrainEvent<'_>| -> Result<()> {
            if let TrainEvent::EpochCompleted { epoch, net, .. } = event {
                if trace_every > 0 && (epoch + 1) % trace_every == 0 {
                    let probs = EnsembleModel::network_soft_targets(net, test.features())?;
                    let acc = edde_nn::metrics::accuracy(&probs, test.labels())?;
                    trace.push(TracePoint {
                        cumulative_epochs: epoch + 1,
                        members: 1,
                        test_accuracy: acc,
                    });
                }
            }
            Ok(())
        };
        TrainLoop::new(&env.trainer, &env.data.train, &schedule, self.epochs)
            .observe(&mut tracer)
            .run(&mut net, TrainRng::Threaded(&mut rng))?;
        let mut model = EnsembleModel::new();
        model.push(net, 1.0, "single");
        if trace.is_empty() {
            super::record_trace(&model, test, self.epochs, &mut trace)?;
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.6,
            },
            3,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 24, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            7,
        )
    }

    #[test]
    fn single_model_learns_the_blobs() {
        let result = SingleModel::new(15).run(&env()).unwrap();
        assert_eq!(result.model.len(), 1);
        assert_eq!(result.total_epochs, 15);
        let final_acc = result.trace.last().unwrap().test_accuracy;
        assert!(final_acc > 0.8, "accuracy {final_acc}");
    }

    #[test]
    fn trace_every_produces_a_curve() {
        let method = SingleModel {
            epochs: 10,
            trace_every: 2,
        };
        let result = method.run(&env()).unwrap();
        assert_eq!(result.trace.len(), 5);
        assert_eq!(result.trace[0].cumulative_epochs, 2);
        assert_eq!(result.trace[4].cumulative_epochs, 10);
    }

    #[test]
    fn is_deterministic_under_env_seed() {
        let e = env();
        let a = SingleModel::new(5).run(&e).unwrap();
        let b = SingleModel::new(5).run(&e).unwrap();
        assert_eq!(
            a.trace.last().unwrap().test_accuracy,
            b.trace.last().unwrap().test_accuracy
        );
    }
}
