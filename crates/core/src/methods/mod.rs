//! The ensemble methods the paper evaluates: EDDE plus six baselines.
//!
//! Every method implements [`EnsembleMethod`] against one
//! [`crate::env::ExperimentEnv`], producing an [`crate::EnsembleModel`] and
//! a test-accuracy trace (the raw series behind Figure 7).

mod adaboost_m1;
mod adaboost_nc;
mod bagging;
mod bans;
mod edde;
mod ncl;
mod single;
mod snapshot;

pub use adaboost_m1::AdaBoostM1;
pub use adaboost_nc::AdaBoostNc;
pub use bagging::Bagging;
pub use bans::Bans;
pub use edde::{Edde, TransferMode};
pub use ncl::Ncl;
pub use single::SingleModel;
pub use snapshot::Snapshot;

use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::Result;
use edde_data::Dataset;
use edde_nn::Network;
use edde_tensor::ops::softmax_rows;
use edde_tensor::Tensor;

/// One point of an ensemble-accuracy-versus-budget trace (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Total training epochs spent so far (across all members).
    pub cumulative_epochs: usize,
    /// Members in the ensemble at this point.
    pub members: usize,
    /// Ensemble accuracy on the test set.
    pub test_accuracy: f32,
}

/// The output of one ensemble training run.
pub struct RunResult {
    /// The trained ensemble.
    pub model: EnsembleModel,
    /// Accuracy after each member/snapshot was added.
    pub trace: Vec<TracePoint>,
    /// Total epochs consumed — the paper's unit of training cost.
    pub total_epochs: usize,
}

impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("members", &self.model.len())
            .field("trace", &self.trace)
            .field("total_epochs", &self.total_epochs)
            .finish_non_exhaustive()
    }
}

/// An ensemble training method.
pub trait EnsembleMethod {
    /// Display name, matching the paper's tables ("EDDE", "Snapshot", ...).
    fn name(&self) -> String;

    /// Trains an ensemble in the given environment.
    fn run(&self, env: &ExperimentEnv) -> Result<RunResult>;

    /// Trains an ensemble with run state persisted to `store` after every
    /// completed member, resuming any completed prefix already in the store.
    ///
    /// A resumed run produces the same ensemble an uninterrupted resumable
    /// run would have (members are trained on independent per-member RNG
    /// streams, and restored networks round-trip bit-exactly). Note the
    /// *resumable* RNG protocol differs from [`EnsembleMethod::run`]'s
    /// legacy shared stream, so `run` and `run_resumable` on the same env
    /// produce different (equally valid) ensembles.
    ///
    /// Sequential methods implement this; the default refuses (Snapshot and
    /// NCL train all members inside one optimization trajectory, so
    /// member-boundary resume does not apply — their unit of recovery is
    /// the trainer's [`crate::recovery::RecoveryPolicy`]).
    fn run_resumable(
        &self,
        env: &ExperimentEnv,
        store: &dyn edde_nn::checkpoint::CheckpointStore,
    ) -> Result<RunResult> {
        let _ = (env, store);
        Err(crate::error::EnsembleError::Checkpoint(format!(
            "{} does not support resumable runs",
            self.name()
        )))
    }

    /// Whether [`EnsembleMethod::run_resumable`] is implemented. Harnesses
    /// use this to decide per method between the checkpointed path and the
    /// plain one, instead of probing for the refusal error.
    fn supports_resumable(&self) -> bool {
        false
    }
}

/// Records a trace point for the current ensemble prefix.
pub(crate) fn record_trace(
    model: &mut EnsembleModel,
    test: &Dataset,
    cumulative_epochs: usize,
    trace: &mut Vec<TracePoint>,
) -> Result<()> {
    let acc = model.accuracy(test)?;
    trace.push(TracePoint {
        cumulative_epochs,
        members: model.len(),
        test_accuracy: acc,
    });
    Ok(())
}

/// Evaluation-mode softmax at temperature `tau` — the τ-softened teacher
/// targets BANs distills from.
pub(crate) fn soft_targets_with_temperature(
    net: &mut Network,
    features: &Tensor,
    tau: f32,
) -> Result<Tensor> {
    let n = features.dims()[0];
    let mut outputs = Vec::new();
    let mut start = 0usize;
    const BATCH: usize = 256;
    while start < n {
        let end = (start + BATCH).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let batch = features.index_select0(&idx)?;
        let logits = net.forward(&batch, edde_nn::Mode::Eval)?;
        let softened = logits.map(|z| z / tau);
        outputs.push(softmax_rows(&softened)?);
        start = end;
    }
    let refs: Vec<&Tensor> = outputs.iter().collect();
    Ok(Tensor::concat0(&refs)?)
}

/// Clamp range for member weights α. Boosting's log-odds formulas explode
/// on near-perfect or near-useless members; clamping keeps the soft vote
/// well-conditioned, and the floor keeps every trained member in play (the
/// paper's EDDE never discards a model).
pub(crate) const ALPHA_MIN: f32 = 0.05;
pub(crate) const ALPHA_MAX: f32 = 4.0;

/// `½·ln(pos/neg)` clamped to `[ALPHA_MIN, ALPHA_MAX]`, handling the
/// zero-denominator (perfect member) and zero-numerator (useless member)
/// corners.
pub(crate) fn clamped_half_log_odds(pos: f64, neg: f64) -> f32 {
    if pos <= 0.0 {
        return ALPHA_MIN;
    }
    if neg <= 0.0 {
        return ALPHA_MAX;
    }
    (0.5 * (pos / neg).ln()).clamp(f64::from(ALPHA_MIN), f64::from(ALPHA_MAX)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamped_log_odds_corners() {
        assert_eq!(clamped_half_log_odds(0.0, 1.0), ALPHA_MIN);
        assert_eq!(clamped_half_log_odds(1.0, 0.0), ALPHA_MAX);
        let mid = clamped_half_log_odds(std::f64::consts::E.powi(2), 1.0);
        assert!((mid - 1.0).abs() < 1e-6);
        // symmetric case
        assert!((clamped_half_log_odds(1.0, 1.0) - ALPHA_MIN).abs() < 1e-6);
    }

    #[test]
    fn temperature_softening_flattens() {
        use edde_nn::models::mlp;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut r = StdRng::seed_from_u64(0);
        let mut net = mlp(&[2, 4, 3], 0.0, &mut r);
        let x = edde_tensor::rng::rand_uniform(&[4, 2], -1.0, 1.0, &mut r);
        let sharp = soft_targets_with_temperature(&mut net, &x, 1.0).unwrap();
        let soft = soft_targets_with_temperature(&mut net, &x, 4.0).unwrap();
        // higher temperature -> closer to uniform -> lower max prob
        for i in 0..4 {
            let max_sharp = sharp.row(i).unwrap().iter().copied().fold(0.0f32, f32::max);
            let max_soft = soft.row(i).unwrap().iter().copied().fold(0.0f32, f32::max);
            assert!(max_soft <= max_sharp + 1e-6);
        }
    }
}
