//! The ensemble methods the paper evaluates: EDDE plus six baselines.
//!
//! Every method implements [`EnsembleMethod`] against one
//! [`crate::env::ExperimentEnv`], producing an [`crate::EnsembleModel`] and
//! a test-accuracy trace (the raw series behind Figure 7).

mod adaboost_m1;
mod adaboost_nc;
mod bagging;
mod bans;
mod edde;
mod ncl;
mod single;
mod snapshot;

pub use adaboost_m1::AdaBoostM1;
pub use adaboost_nc::AdaBoostNc;
pub use bagging::Bagging;
pub use bans::Bans;
pub use edde::{Edde, TransferMode};
pub use ncl::Ncl;
pub use single::SingleModel;
pub use snapshot::Snapshot;

use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::RunSession;
use crate::trainer::{EpochCheckpoints, LossSpec, TrainLoop, TrainRng, TrainStats, Trainer};
use edde_data::Dataset;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::optim::LrSchedule;
use edde_nn::Network;
use edde_tensor::parallel::ordered_commit;
use edde_tensor::Tensor;
use rand::rngs::StdRng;

/// One point of an ensemble-accuracy-versus-budget trace (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Total training epochs spent so far (across all members).
    pub cumulative_epochs: usize,
    /// Members in the ensemble at this point.
    pub members: usize,
    /// Ensemble accuracy on the test set.
    pub test_accuracy: f32,
}

/// The output of one ensemble training run.
pub struct RunResult {
    /// The trained ensemble.
    pub model: EnsembleModel,
    /// Accuracy after each member/snapshot was added.
    pub trace: Vec<TracePoint>,
    /// Total epochs consumed — the paper's unit of training cost.
    pub total_epochs: usize,
}

impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunResult")
            .field("members", &self.model.len())
            .field("trace", &self.trace)
            .field("total_epochs", &self.total_epochs)
            .finish_non_exhaustive()
    }
}

/// An ensemble training method.
pub trait EnsembleMethod {
    /// Display name, matching the paper's tables ("EDDE", "Snapshot", ...).
    fn name(&self) -> String;

    /// Trains an ensemble in the given environment.
    fn run(&self, env: &ExperimentEnv) -> Result<RunResult>;

    /// Trains an ensemble with run state persisted to `store`: a manifest
    /// entry after every completed member, plus a
    /// [`crate::runstate::MemberProgress`] record at every epoch boundary
    /// of the in-flight member. A resumed run restores the completed
    /// prefix *and* re-enters a partially trained member at its last
    /// epoch boundary, bit-exactly.
    ///
    /// A resumed run produces the same ensemble an uninterrupted resumable
    /// run would have (members train under the
    /// [`crate::runstate::RunProtocol::PerEpoch`] RNG protocol, where each
    /// epoch's randomness is a pure function of the member seed and the
    /// epoch index, and restored state round-trips bit-exactly). For
    /// sequentially-dependent methods (boosting, EDDE, BANs) the
    /// *resumable* RNG protocol differs from [`EnsembleMethod::run`]'s
    /// legacy shared stream, so `run` and `run_resumable` on the same env
    /// produce different (equally valid) ensembles; data-independent
    /// methods (Bagging) use per-epoch streams in both modes and produce
    /// the identical ensemble either way. Stores written by the legacy
    /// member-granular protocol keep resuming at member granularity.
    ///
    /// Multi-member methods implement this; the default refuses (NCL
    /// trains all members inside one joint optimization trajectory, so
    /// neither member- nor epoch-boundary resume applies — its unit of
    /// recovery is the trainer's [`crate::recovery::RecoveryPolicy`]).
    fn run_resumable(
        &self,
        env: &ExperimentEnv,
        store: &dyn edde_nn::checkpoint::CheckpointStore,
    ) -> Result<RunResult> {
        let _ = (env, store);
        Err(EnsembleError::Checkpoint(format!(
            "{} does not support resumable runs",
            self.name()
        )))
    }

    /// Whether [`EnsembleMethod::run_resumable`] is implemented. Harnesses
    /// use this to decide per method between the checkpointed path and the
    /// plain one, instead of probing for the refusal error.
    fn supports_resumable(&self) -> bool {
        false
    }
}

/// Records a trace point for the current ensemble prefix.
pub(crate) fn record_trace(
    model: &EnsembleModel,
    test: &Dataset,
    cumulative_epochs: usize,
    trace: &mut Vec<TracePoint>,
) -> Result<()> {
    let acc = model.accuracy(test)?;
    trace.push(TracePoint {
        cumulative_epochs,
        members: model.len(),
        test_accuracy: acc,
    });
    Ok(())
}

/// Epoch-granular persistence target for one member: the session's store
/// plus the configuration fingerprint its progress records are bound to.
pub(crate) struct MemberPersist<'a> {
    /// The session's checkpoint store.
    pub store: &'a dyn CheckpointStore,
    /// [`crate::runstate::RunSession`] configuration fingerprint.
    pub fingerprint: u64,
}

/// How one member's training run consumes randomness — and, for the
/// per-epoch protocol, whether it checkpoints at epoch boundaries.
pub(crate) enum MemberRun<'a> {
    /// Legacy shared/threaded stream; no mid-member persistence possible.
    Threaded(&'a mut StdRng),
    /// [`crate::runstate::RunProtocol::PerEpoch`]: epoch randomness derived
    /// from `seed`, progress persisted under the member's key when
    /// `persist` is set.
    PerEpoch {
        /// The member's RNG root ([`crate::runstate::member_seed`]).
        seed: u64,
        /// Member index — names the progress key and binds the record.
        member: usize,
        /// Epoch-boundary persistence; `None` trains without checkpoints
        /// (plain runs on the per-epoch protocol, e.g. Bagging's `run`).
        persist: Option<MemberPersist<'a>>,
    },
}

/// Trains one member via [`TrainLoop`], dispatching on the run protocol.
/// This is the single entry point every multi-member method uses, so the
/// protocol selection (and the progress-key naming scheme) lives in one
/// place.
#[allow(clippy::too_many_arguments)]
pub(crate) fn train_member(
    trainer: &Trainer,
    net: &mut Network,
    data: &Dataset,
    schedule: &LrSchedule,
    epochs: usize,
    weights: Option<&[f32]>,
    loss: &LossSpec<'_>,
    run: MemberRun<'_>,
) -> Result<TrainStats> {
    match run {
        MemberRun::Threaded(rng) => trainer.train(net, data, schedule, epochs, weights, loss, rng),
        MemberRun::PerEpoch {
            seed,
            member,
            persist,
        } => {
            let mut tl = TrainLoop::new(trainer, data, schedule, epochs)
                .weights(weights)
                .loss(loss);
            if let Some(p) = persist {
                // Resolve the knob layer once at checkpoint-setup time; the
                // per-epoch write path reads only this resolved config.
                let config = crate::env::EddeConfig::from_env();
                tl = tl.checkpoint(EpochCheckpoints {
                    store: p.store,
                    key: RunSession::progress_key(member),
                    member,
                    fingerprint: p.fingerprint,
                    every: 1,
                    // Opt-in knob: sharded (chunked) progress records.
                    // Resume auto-detects the format, so flipping the
                    // knob between runs of the same session is safe.
                    sharded: config.sharded_ckpt,
                    config,
                });
            }
            tl.run(net, TrainRng::PerEpoch { seed })
        }
    }
}

/// Trains members `first..last` and commits each result in member order.
///
/// `train(t)` must be a pure function of `t` (each member on its own
/// derived RNG stream — see [`crate::runstate::member_rng`]); `commit(t,
/// value)` mutates the shared run state (ensemble, trace, checkpoint
/// session) and is always invoked in ascending member order, exactly as a
/// sequential loop would. With `parallel` set, members train concurrently
/// on the tensor worker pool; because every tensor op is bit-identical
/// across thread counts and commits are serialized in order, the produced
/// run state is bit-identical to the sequential path.
///
/// On failure the earliest failing member's error is returned and no
/// later member is committed, matching sequential error reporting.
/// Members already committed stay committed (a resumable session keeps
/// its completed prefix).
///
/// This is the member-granular face of the general in-order commit gate
/// ([`edde_tensor::parallel::ordered_commit`]), which chunked checkpoint
/// writes (`edde_nn::chunkstore`) also run on.
pub fn train_members_in_order<T, F, C>(
    first: usize,
    last: usize,
    parallel: bool,
    train: F,
    commit: C,
) -> Result<()>
where
    F: Fn(usize) -> Result<T> + Sync,
    C: FnMut(usize, T) -> Result<()> + Send,
{
    ordered_commit(first, last, parallel, train, commit)
}

/// Evaluation-mode softmax at temperature `tau` — the τ-softened teacher
/// targets BANs distills from. Thin wrapper over the shared inference
/// engine ([`crate::frozen::network_soft_targets_tau`]) with this thread's
/// scratch context.
pub(crate) fn soft_targets_with_temperature(
    net: &Network,
    features: &Tensor,
    tau: f32,
) -> Result<Tensor> {
    edde_nn::infer::with_thread_ctx(|ctx| {
        crate::frozen::network_soft_targets_tau(net, features, tau, ctx)
    })
}

/// Clamp range for member weights α. Boosting's log-odds formulas explode
/// on near-perfect or near-useless members; clamping keeps the soft vote
/// well-conditioned, and the floor keeps every trained member in play (the
/// paper's EDDE never discards a model).
pub(crate) const ALPHA_MIN: f32 = 0.05;
pub(crate) const ALPHA_MAX: f32 = 4.0;

/// `½·ln(pos/neg)` clamped to `[ALPHA_MIN, ALPHA_MAX]`, handling the
/// zero-denominator (perfect member) and zero-numerator (useless member)
/// corners.
pub(crate) fn clamped_half_log_odds(pos: f64, neg: f64) -> f32 {
    if pos <= 0.0 {
        return ALPHA_MIN;
    }
    if neg <= 0.0 {
        return ALPHA_MAX;
    }
    (0.5 * (pos / neg).ln()).clamp(f64::from(ALPHA_MIN), f64::from(ALPHA_MAX)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that set the global thread override; the single-CPU
    /// default would otherwise run every "parallel" gate test inline.
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn in_order_commit_survives_out_of_order_completion() {
        use edde_tensor::parallel::set_num_threads;
        // Earlier members take longer, so later ones finish training first
        // and must wait their turn at the gate.
        let _g = override_guard();
        let mut committed = Vec::new();
        set_num_threads(4);
        let result = train_members_in_order(
            0,
            6,
            true,
            |t| {
                std::thread::sleep(std::time::Duration::from_millis(5 * (6 - t) as u64));
                Ok(t * 10)
            },
            |t, v| {
                committed.push((t, v));
                Ok(())
            },
        );
        set_num_threads(0);
        result.unwrap();
        assert_eq!(
            committed,
            (0..6).map(|t| (t, t * 10)).collect::<Vec<_>>(),
            "commits must arrive in member order"
        );
    }

    #[test]
    fn earliest_training_error_wins_and_stops_commits() {
        use edde_tensor::parallel::set_num_threads;
        let _g = override_guard();
        let mut committed = Vec::new();
        set_num_threads(4);
        let result = train_members_in_order(
            0,
            6,
            true,
            |t| {
                if t >= 2 {
                    // Member 2 fails fastest, member 3 fails a bit later.
                    std::thread::sleep(std::time::Duration::from_millis(3 * t as u64));
                    Err(EnsembleError::BadConfig(format!("boom {t}")))
                } else {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Ok(t)
                }
            },
            |t, v| {
                committed.push((t, v));
                Ok(())
            },
        );
        set_num_threads(0);
        let err = result.unwrap_err();
        assert!(err.to_string().contains("boom 2"), "{err}");
        assert!(
            committed.iter().all(|&(t, _)| t < 2),
            "no member at or past the failure may commit: {committed:?}"
        );
    }

    #[test]
    fn sequential_path_commits_every_member() {
        let mut committed = Vec::new();
        train_members_in_order(2, 5, false, Ok, |t, v| {
            committed.push((t, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(committed, vec![(2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn commit_error_surfaces_and_halts() {
        use edde_tensor::parallel::set_num_threads;
        let _g = override_guard();
        set_num_threads(4);
        let result = train_members_in_order(0, 4, true, Ok, |t, _v| {
            if t == 1 {
                Err(EnsembleError::BadConfig("commit failed".into()))
            } else {
                Ok(())
            }
        });
        set_num_threads(0);
        let err = result.unwrap_err();
        assert!(err.to_string().contains("commit failed"), "{err}");
    }

    #[test]
    fn clamped_log_odds_corners() {
        assert_eq!(clamped_half_log_odds(0.0, 1.0), ALPHA_MIN);
        assert_eq!(clamped_half_log_odds(1.0, 0.0), ALPHA_MAX);
        let mid = clamped_half_log_odds(std::f64::consts::E.powi(2), 1.0);
        assert!((mid - 1.0).abs() < 1e-6);
        // symmetric case
        assert!((clamped_half_log_odds(1.0, 1.0) - ALPHA_MIN).abs() < 1e-6);
    }

    #[test]
    fn temperature_softening_flattens() {
        use edde_nn::models::mlp;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut r = StdRng::seed_from_u64(0);
        let net = mlp(&[2, 4, 3], 0.0, &mut r);
        let x = edde_tensor::rng::rand_uniform(&[4, 2], -1.0, 1.0, &mut r);
        let sharp = soft_targets_with_temperature(&net, &x, 1.0).unwrap();
        let soft = soft_targets_with_temperature(&net, &x, 4.0).unwrap();
        // higher temperature -> closer to uniform -> lower max prob
        for i in 0..4 {
            let max_sharp = sharp.row(i).unwrap().iter().copied().fold(0.0f32, f32::max);
            let max_soft = soft.row(i).unwrap().iter().copied().fold(0.0f32, f32::max);
            assert!(max_soft <= max_sharp + 1e-6);
        }
    }
}
