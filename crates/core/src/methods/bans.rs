//! Born-Again Networks (Furlanello et al., ICML 2018): each generation is a
//! freshly initialized network trained to match the previous generation's
//! full softmax distribution (knowledge distillation), and the generations
//! are ensembled by soft voting.

use super::{
    record_trace, soft_targets_with_temperature, train_member, EnsembleMethod, MemberPersist,
    MemberRun, RunResult, TracePoint,
};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RngPlan, RunProtocol, RunSession};
use crate::trainer::LossSpec;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::optim::LrSchedule;

/// The BANs baseline. Generation 1 trains with plain cross-entropy; every
/// later generation distills from its predecessor ("trained from the
/// supervision of the earlier fitted model").
#[derive(Debug, Clone)]
pub struct Bans {
    /// Number of generations (= ensemble members).
    pub generations: usize,
    /// Epoch budget per generation.
    pub epochs_per_generation: usize,
    /// Weight of the soft-target term in the distillation loss.
    pub lambda: f32,
    /// Distillation temperature.
    pub temperature: f32,
}

impl Bans {
    /// The standard configuration (λ = 0.5, τ = 2).
    pub fn new(generations: usize, epochs_per_generation: usize) -> Self {
        Bans {
            generations,
            epochs_per_generation,
            lambda: 0.5,
            temperature: 2.0,
        }
    }
}

impl Bans {
    fn run_impl(
        &self,
        env: &ExperimentEnv,
        mut session: Option<&mut RunSession<'_>>,
    ) -> Result<RunResult> {
        if self.generations == 0 {
            return Err(EnsembleError::BadConfig(
                "bans needs generations >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.lambda) || self.temperature <= 0.0 {
            return Err(EnsembleError::BadConfig(
                "bans needs lambda in [0,1] and temperature > 0".into(),
            ));
        }
        let mut rngs = match session {
            Some(_) => RngPlan::per_member(env.seed, 0xBA2),
            None => RngPlan::shared(env.rng(0xBA2)),
        };
        let train = &env.data.train;
        let schedule = LrSchedule::paper_step(env.base_lr, self.epochs_per_generation);
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        let persist = session
            .as_deref()
            .map(|s| (s.store(), s.fingerprint(), s.protocol()));
        for g in 0..self.generations {
            rngs.start_member(g);
            if let Some(sess) = session.as_deref_mut() {
                if g < sess.completed() {
                    let rec = sess.members()[g].clone();
                    let mut net = (env.factory)(rngs.rng())?;
                    sess.restore_network(g, &mut net)?;
                    // The restored generation becomes the teacher of the
                    // next one, exactly as it would after training.
                    model.push(net, rec.alpha, rec.label);
                    trace.push(TracePoint {
                        cumulative_epochs: rec.cumulative_epochs,
                        members: g + 1,
                        test_accuracy: rec.test_accuracy,
                    });
                    continue;
                }
            }
            let mut net = (env.factory)(rngs.rng())?;
            if g == 0 {
                let run = match persist {
                    Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                        seed: rngs.seed_for(g),
                        member: g,
                        persist: Some(MemberPersist { store, fingerprint }),
                    },
                    _ => MemberRun::Threaded(rngs.rng()),
                };
                train_member(
                    &env.trainer,
                    &mut net,
                    train,
                    &schedule,
                    self.epochs_per_generation,
                    None,
                    &LossSpec::CrossEntropy,
                    run,
                )?;
            } else {
                let teacher = &mut model
                    .members_mut()
                    .last_mut()
                    .expect("generation g-1 exists")
                    .network;
                let teacher_soft =
                    soft_targets_with_temperature(teacher, train.features(), self.temperature)?;
                let run = match persist {
                    Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                        seed: rngs.seed_for(g),
                        member: g,
                        persist: Some(MemberPersist { store, fingerprint }),
                    },
                    _ => MemberRun::Threaded(rngs.rng()),
                };
                train_member(
                    &env.trainer,
                    &mut net,
                    train,
                    &schedule,
                    self.epochs_per_generation,
                    None,
                    &LossSpec::Distill {
                        lambda: self.lambda,
                        temperature: self.temperature,
                        teacher_soft: &teacher_soft,
                    },
                    run,
                )?;
            }
            model.push(net, 1.0, format!("ban-gen-{g}"));
            record_trace(
                &model,
                &env.data.test,
                (g + 1) * self.epochs_per_generation,
                &mut trace,
            )?;
            if let Some(sess) = session.as_deref_mut() {
                let point = *trace.last().expect("just recorded");
                let net = &mut model.members_mut().last_mut().expect("just pushed").network;
                sess.record_member(
                    MemberRecord {
                        label: format!("ban-gen-{g}"),
                        alpha: 1.0,
                        seed: rngs.seed_for(g),
                        net_key: String::new(),
                        cumulative_epochs: point.cumulative_epochs,
                        test_accuracy: point.test_accuracy,
                        weights: vec![],
                    },
                    net,
                )?;
            }
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.generations * self.epochs_per_generation,
        })
    }
}

impl EnsembleMethod for Bans {
    fn name(&self) -> String {
        "BANs".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.run_impl(env, None)
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        self.run_impl(env, Some(&mut session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.7,
            },
            41,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            43,
        )
    }

    #[test]
    fn bans_builds_generations() {
        let result = Bans::new(3, 8).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut m = Bans::new(2, 5);
        m.lambda = 1.5;
        assert!(m.run(&env()).is_err());
        let mut m2 = Bans::new(2, 5);
        m2.temperature = 0.0;
        assert!(m2.run(&env()).is_err());
        assert!(Bans::new(0, 5).run(&env()).is_err());
    }
}
