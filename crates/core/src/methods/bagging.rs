//! Bagging (Breiman): independent members on bootstrap resamples,
//! unweighted soft voting.

use super::{record_trace, EnsembleMethod, RunResult, TracePoint};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RngPlan, RunSession};
use crate::trainer::LossSpec;
use edde_data::sampler::bootstrap_indices;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::optim::LrSchedule;

/// Classic bagging: each member trains from scratch on a uniform bootstrap
/// of the training set; prediction averages the softmax outputs
/// ("Averaging" in the paper's related work).
#[derive(Debug, Clone)]
pub struct Bagging {
    /// Number of members.
    pub members: usize,
    /// Epoch budget per member.
    pub epochs_per_member: usize,
}

impl Bagging {
    /// A bagging ensemble.
    pub fn new(members: usize, epochs_per_member: usize) -> Self {
        Bagging {
            members,
            epochs_per_member,
        }
    }

    fn run_impl(
        &self,
        env: &ExperimentEnv,
        mut session: Option<&mut RunSession<'_>>,
    ) -> Result<RunResult> {
        if self.members == 0 {
            return Err(EnsembleError::BadConfig(
                "bagging needs members >= 1".into(),
            ));
        }
        let mut rngs = match session {
            Some(_) => RngPlan::per_member(env.seed, 0xBA),
            None => RngPlan::shared(env.rng(0xBA)),
        };
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        let schedule = LrSchedule::paper_step(env.base_lr, self.epochs_per_member);
        for t in 0..self.members {
            rngs.start_member(t);
            if let Some(sess) = session.as_deref_mut() {
                if t < sess.completed() {
                    let rec = sess.members()[t].clone();
                    let mut net = (env.factory)(rngs.rng())?;
                    sess.restore_network(t, &mut net)?;
                    model.push(net, rec.alpha, rec.label);
                    trace.push(TracePoint {
                        cumulative_epochs: rec.cumulative_epochs,
                        members: t + 1,
                        test_accuracy: rec.test_accuracy,
                    });
                    continue;
                }
            }
            let idx = bootstrap_indices(env.data.train.len(), rngs.rng());
            let resampled = env.data.train.select(&idx)?;
            let mut net = (env.factory)(rngs.rng())?;
            env.trainer.train(
                &mut net,
                &resampled,
                &schedule,
                self.epochs_per_member,
                None,
                &LossSpec::CrossEntropy,
                rngs.rng(),
            )?;
            model.push(net, 1.0, format!("bagging-{t}"));
            record_trace(
                &mut model,
                &env.data.test,
                (t + 1) * self.epochs_per_member,
                &mut trace,
            )?;
            if let Some(sess) = session.as_deref_mut() {
                let point = *trace.last().expect("just recorded");
                let net = &mut model.members_mut().last_mut().expect("just pushed").network;
                sess.record_member(
                    MemberRecord {
                        label: format!("bagging-{t}"),
                        alpha: 1.0,
                        seed: rngs.seed_for(t),
                        net_key: String::new(),
                        cumulative_epochs: point.cumulative_epochs,
                        test_accuracy: point.test_accuracy,
                        weights: vec![],
                    },
                    net,
                )?;
            }
        }
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.members * self.epochs_per_member,
        })
    }
}

impl EnsembleMethod for Bagging {
    fn name(&self) -> String {
        "Bagging".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.run_impl(env, None)
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        self.run_impl(env, Some(&mut session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.7,
            },
            5,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            9,
        )
    }

    #[test]
    fn bagging_builds_requested_members() {
        let result = Bagging::new(3, 8).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        assert_eq!(result.trace.len(), 3);
        assert_eq!(result.total_epochs, 24);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn members_are_diverse() {
        let mut result = Bagging::new(3, 6).run(&env()).unwrap();
        let e = env();
        let probs = result
            .model
            .member_soft_targets(e.data.test.features())
            .unwrap();
        let div = crate::diversity::ensemble_diversity(&probs).unwrap();
        assert!(div > 0.0, "bootstrap members should differ, div={div}");
    }

    #[test]
    fn zero_members_rejected() {
        assert!(Bagging::new(0, 5).run(&env()).is_err());
    }
}
