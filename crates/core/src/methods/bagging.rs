//! Bagging (Breiman): independent members on bootstrap resamples,
//! unweighted soft voting.
//!
//! Members share no state — each trains from scratch on its own bootstrap
//! with its own derived RNG stream — so Bagging trains them *concurrently*
//! on the tensor worker pool ([`train_members_in_order`]). Every tensor op
//! is bit-identical across thread counts, so the parallel ensemble is
//! bit-identical to a sequential run; the same per-member streams also
//! make plain [`run`] and [`run_resumable`] produce the identical
//! ensemble.
//!
//! [`run`]: EnsembleMethod::run
//! [`run_resumable`]: EnsembleMethod::run_resumable

use super::{
    record_trace, train_member, train_members_in_order, EnsembleMethod, MemberPersist, MemberRun,
    RunResult, TracePoint,
};
use crate::ensemble::EnsembleModel;
use crate::env::ExperimentEnv;
use crate::error::{EnsembleError, Result};
use crate::runstate::{self, MemberRecord, RunProtocol, RunSession};
use crate::trainer::LossSpec;
use edde_data::sampler::bootstrap_indices;
use edde_nn::checkpoint::CheckpointStore;
use edde_nn::optim::LrSchedule;

/// RNG-stream salt separating Bagging's draws from other methods'.
const SALT: u64 = 0xBA;

/// Classic bagging: each member trains from scratch on a uniform bootstrap
/// of the training set; prediction averages the softmax outputs
/// ("Averaging" in the paper's related work).
#[derive(Clone)]
pub struct Bagging {
    /// Number of members.
    pub members: usize,
    /// Epoch budget per member.
    pub epochs_per_member: usize,
    /// Train members concurrently (the default). Results are bit-identical
    /// either way; automatic fallback to sequential when the trainer
    /// injects faults, whose global step counter assumes one member at a
    /// time.
    parallel_members: bool,
}

// The resumable-run fingerprint hashes `format!("{self:?}")`, so the Debug
// output must not change when execution-only knobs are added: a checkpoint
// taken by a sequential run must resume under a parallel one.
impl std::fmt::Debug for Bagging {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bagging")
            .field("members", &self.members)
            .field("epochs_per_member", &self.epochs_per_member)
            .finish()
    }
}

impl Bagging {
    /// A bagging ensemble.
    pub fn new(members: usize, epochs_per_member: usize) -> Self {
        Bagging {
            members,
            epochs_per_member,
            parallel_members: true,
        }
    }

    /// Disables concurrent member training (identical results, one member
    /// at a time). Used by determinism tests and wall-clock comparisons.
    pub fn sequential(mut self) -> Self {
        self.parallel_members = false;
        self
    }

    fn run_impl(
        &self,
        env: &ExperimentEnv,
        mut session: Option<&mut RunSession<'_>>,
    ) -> Result<RunResult> {
        if self.members == 0 {
            return Err(EnsembleError::BadConfig(
                "bagging needs members >= 1".into(),
            ));
        }
        let mut model = EnsembleModel::new();
        let mut trace = Vec::new();
        let schedule = LrSchedule::paper_step(env.base_lr, self.epochs_per_member);

        // Restore the completed prefix of a resumed run.
        let restored = session
            .as_deref()
            .map_or(0, |s| s.completed())
            .min(self.members);
        for t in 0..restored {
            let sess = session.as_deref_mut().expect("restored > 0 needs session");
            let rec = sess.members()[t].clone();
            let mut net = (env.factory)(&mut runstate::member_rng(env.seed, SALT, t))?;
            sess.restore_network(t, &mut net)?;
            model.push(net, rec.alpha, rec.label);
            trace.push(TracePoint {
                cumulative_epochs: rec.cumulative_epochs,
                members: t + 1,
                test_accuracy: rec.test_accuracy,
            });
        }

        // Fault plans count optimizer steps globally across members, which
        // only means anything when members run one at a time.
        let parallel = self.parallel_members && env.trainer.fault.is_none();
        let epochs = self.epochs_per_member;
        // The store borrow carries the store's own lifetime (not the
        // session's), so the train closure can write epoch progress while
        // the commit closure holds the session mutably.
        let persist = session
            .as_deref()
            .map(|s| (s.store(), s.fingerprint(), s.protocol()));
        let train = |t: usize| {
            let mut rng = runstate::member_rng(env.seed, SALT, t);
            let idx = bootstrap_indices(env.data.train.len(), &mut rng);
            let resampled = env.data.train.select(&idx)?;
            let mut net = (env.factory)(&mut rng)?;
            // Bagging trains under the per-epoch protocol in the plain and
            // the resumable path alike, so both build bit-identical
            // ensembles; only legacy (EDM1) sessions keep the threaded
            // member stream their earlier members were trained on.
            let run = match persist {
                Some((_, _, RunProtocol::Legacy)) => MemberRun::Threaded(&mut rng),
                Some((store, fingerprint, RunProtocol::PerEpoch)) => MemberRun::PerEpoch {
                    seed: runstate::member_seed(env.seed, SALT, t),
                    member: t,
                    persist: Some(MemberPersist { store, fingerprint }),
                },
                None => MemberRun::PerEpoch {
                    seed: runstate::member_seed(env.seed, SALT, t),
                    member: t,
                    persist: None,
                },
            };
            train_member(
                &env.trainer,
                &mut net,
                &resampled,
                &schedule,
                epochs,
                None,
                &LossSpec::CrossEntropy,
                run,
            )?;
            Ok(net)
        };
        let model_ref = &mut model;
        let trace_ref = &mut trace;
        let commit = move |t: usize, net| {
            model_ref.push(net, 1.0, format!("bagging-{t}"));
            record_trace(model_ref, &env.data.test, (t + 1) * epochs, trace_ref)?;
            if let Some(sess) = session.as_deref_mut() {
                let point = *trace_ref.last().expect("just recorded");
                let net = &mut model_ref
                    .members_mut()
                    .last_mut()
                    .expect("just pushed")
                    .network;
                sess.record_member(
                    MemberRecord {
                        label: format!("bagging-{t}"),
                        alpha: 1.0,
                        seed: runstate::member_seed(env.seed, SALT, t),
                        net_key: String::new(),
                        cumulative_epochs: point.cumulative_epochs,
                        test_accuracy: point.test_accuracy,
                        weights: vec![],
                    },
                    net,
                )?;
            }
            Ok(())
        };
        train_members_in_order(restored, self.members, parallel, train, commit)?;
        Ok(RunResult {
            model,
            trace,
            total_epochs: self.members * self.epochs_per_member,
        })
    }
}

impl EnsembleMethod for Bagging {
    fn name(&self) -> String {
        "Bagging".into()
    }

    fn run(&self, env: &ExperimentEnv) -> Result<RunResult> {
        self.run_impl(env, None)
    }

    fn supports_resumable(&self) -> bool {
        true
    }

    fn run_resumable(&self, env: &ExperimentEnv, store: &dyn CheckpointStore) -> Result<RunResult> {
        let fp = runstate::env_fingerprint(&self.name(), &format!("{self:?}"), env);
        let mut session = RunSession::open(store, &self.name(), fp)?;
        self.run_impl(env, Some(&mut session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ModelFactory;
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 40,
                test_per_class: 20,
                spread: 0.7,
            },
            5,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 20, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            9,
        )
    }

    #[test]
    fn bagging_builds_requested_members() {
        let result = Bagging::new(3, 8).run(&env()).unwrap();
        assert_eq!(result.model.len(), 3);
        assert_eq!(result.trace.len(), 3);
        assert_eq!(result.total_epochs, 24);
        let acc = result.trace.last().unwrap().test_accuracy;
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn members_are_diverse() {
        let result = Bagging::new(3, 6).run(&env()).unwrap();
        let e = env();
        let probs = result
            .model
            .member_soft_targets(e.data.test.features())
            .unwrap();
        let div = crate::diversity::ensemble_diversity(&probs).unwrap();
        assert!(div > 0.0, "bootstrap members should differ, div={div}");
    }

    #[test]
    fn zero_members_rejected() {
        assert!(Bagging::new(0, 5).run(&env()).is_err());
    }

    #[test]
    fn debug_format_excludes_execution_knobs() {
        // The resumable fingerprint hashes this string; parallel vs
        // sequential must map to the same checkpoint identity.
        let par = format!("{:?}", Bagging::new(4, 8));
        let seq = format!("{:?}", Bagging::new(4, 8).sequential());
        assert_eq!(par, seq);
        assert_eq!(par, "Bagging { members: 4, epochs_per_member: 8 }");
    }
}
