//! Experiment-level evaluation: per-method summaries (Tables II–VI rows)
//! built from trained ensembles.

use crate::ensemble::EnsembleModel;
use crate::error::Result;
use crate::methods::RunResult;
use crate::stream::stream_evaluate;
use edde_data::stream::{BatchSource, DatasetStream};
use edde_data::Dataset;

/// One row of the paper's comparison tables.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSummary {
    /// Method display name.
    pub name: String,
    /// Total training epochs consumed.
    pub total_epochs: usize,
    /// Number of ensemble members.
    pub members: usize,
    /// Ensemble test accuracy (the headline number of Tables II/III).
    pub ensemble_accuracy: f32,
    /// Mean individual member accuracy (Tables IV/VI).
    pub average_accuracy: f32,
    /// `ensemble − average` (the "Increased accuracy" column of Table IV).
    pub increased_accuracy: f32,
    /// Ensemble diversity per Eq. 7 (`None` for single-member ensembles,
    /// where pairwise diversity is undefined).
    pub diversity: Option<f32>,
}

/// Builds a summary row for a completed run: one fixed-memory pass over a
/// sequential [`DatasetStream`] of `test`, bit-identical to evaluating the
/// materialized dataset (the historical behaviour of this function).
pub fn summarize(
    name: impl Into<String>,
    run: &RunResult,
    test: &Dataset,
) -> Result<MethodSummary> {
    let mut src = DatasetStream::sequential(test, crate::env::eval_batch());
    summarize_stream(name, run, &mut src)
}

/// Builds a summary row from any [`BatchSource`] — each statistic
/// (ensemble accuracy, average member accuracy, Eq. 7 diversity) folds per
/// batch, so the stream may be longer than memory. One member pass per
/// batch feeds every fold.
pub fn summarize_stream(
    name: impl Into<String>,
    run: &RunResult,
    src: &mut dyn BatchSource,
) -> Result<MethodSummary> {
    let report = stream_evaluate(&run.model, src)?;
    Ok(MethodSummary {
        name: name.into(),
        total_epochs: run.total_epochs,
        members: run.model.len(),
        ensemble_accuracy: report.accuracy,
        average_accuracy: report.average_member_accuracy,
        increased_accuracy: report.accuracy - report.average_member_accuracy,
        diversity: report.diversity,
    })
}

/// Ensemble accuracy after each member, re-evaluated from a trained model
/// (used when a caller wants a trace at a different granularity than the
/// one recorded during training).
pub fn prefix_accuracies(model: &EnsembleModel, test: &Dataset) -> Result<Vec<f32>> {
    (1..=model.len())
        .map(|t| model.accuracy_prefix(test, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{ExperimentEnv, ModelFactory};
    use crate::methods::{Bagging, EnsembleMethod};
    use crate::trainer::Trainer;
    use edde_data::synth::{gaussian_blobs, GaussianBlobsConfig};
    use edde_nn::models::mlp;
    use std::sync::Arc;

    fn env() -> ExperimentEnv {
        let data = gaussian_blobs(
            &GaussianBlobsConfig {
                classes: 3,
                dim: 6,
                train_per_class: 30,
                test_per_class: 15,
                spread: 0.7,
            },
            61,
        );
        let factory: ModelFactory = Arc::new(|r| Ok(mlp(&[6, 16, 3], 0.0, r)));
        ExperimentEnv::new(
            data,
            factory,
            Trainer {
                batch_size: 16,
                weight_decay: 0.0,
                ..Trainer::default()
            },
            0.1,
            67,
        )
    }

    #[test]
    fn summary_fields_are_consistent() {
        let e = env();
        let run = Bagging::new(3, 6).run(&e).unwrap();
        let s = summarize("Bagging", &run, &e.data.test).unwrap();
        assert_eq!(s.members, 3);
        assert_eq!(s.total_epochs, 18);
        assert!((s.increased_accuracy - (s.ensemble_accuracy - s.average_accuracy)).abs() < 1e-6);
        assert!(s.diversity.is_some());
    }

    #[test]
    fn single_member_has_no_diversity() {
        let e = env();
        let run = crate::methods::SingleModel::new(6).run(&e).unwrap();
        let s = summarize("Single", &run, &e.data.test).unwrap();
        assert!(s.diversity.is_none());
    }

    #[test]
    fn prefix_accuracies_lengths() {
        let e = env();
        let run = Bagging::new(3, 5).run(&e).unwrap();
        let accs = prefix_accuracies(&run.model, &e.data.test).unwrap();
        assert_eq!(accs.len(), 3);
        assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
    }
}
