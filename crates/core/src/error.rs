//! Error type for ensemble training.

use edde_nn::NnError;
use edde_tensor::codec::CodecError;
use edde_tensor::TensorError;
use std::fmt;

/// Convenience alias used by every fallible operation in this crate.
pub type Result<T> = std::result::Result<T, EnsembleError>;

/// Errors raised while constructing or training ensembles.
#[derive(Debug, Clone, PartialEq)]
pub enum EnsembleError {
    /// A neural-network-level error bubbled up from `edde-nn`.
    Nn(NnError),
    /// A tensor-level error bubbled up from `edde-tensor`.
    Tensor(TensorError),
    /// A method was configured inconsistently (zero members, bad γ, ...).
    BadConfig(String),
    /// An operation required a non-empty ensemble.
    EmptyEnsemble,
    /// Datasets passed to an experiment disagree (class counts, shapes).
    DataMismatch(String),
    /// Training diverged (non-finite loss) and could not be recovered.
    Diverged(String),
    /// Persisting or restoring run state failed (store I/O, corrupt
    /// manifest, or a resume attempted against a mismatched configuration).
    Checkpoint(String),
    /// A serving bundle (`EEB1`) was rejected on load — see
    /// [`BundleError`] for the precise rejection reason.
    Bundle(BundleError),
}

/// Why an `EEB1` serving bundle was rejected on load. Each rejection path
/// is a distinct variant so serving infrastructure (hot-swap validation,
/// operators' logs) can react to the cause rather than string-matching;
/// a candidate that trips any of these must leave the currently served
/// ensemble untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// The payload does not start with the `EEB1` magic.
    BadMagic([u8; 4]),
    /// The payload magic is right but the version is not understood by
    /// this build (stale writer or reader).
    UnsupportedVersion(u32),
    /// The payload ended before the named field could be read.
    Truncated(&'static str),
    /// The architecture builder produced a network incompatible with a
    /// member recorded in the bundle (or a hot-swap candidate does not
    /// match the live serving configuration).
    ArchMismatch {
        /// Architecture tag of the offending member.
        arch: String,
        /// Class count the bundle (or live config) requires.
        expected: usize,
        /// Class count actually produced.
        got: usize,
    },
    /// A hot-swap candidate's member count (and therefore its `α` weight
    /// vector length) differs from the live serving configuration —
    /// rejected before any member state is decoded.
    MemberCountMismatch {
        /// Member count the live configuration requires.
        expected: usize,
        /// Member count the candidate carries.
        got: usize,
    },
    /// A tensor payload failed its codec chain on decode (bit-flip inside
    /// a compressed stream, truncated stage header, unknown stage id, an
    /// unusable int8 scale, ...). `stage` names the stage that rejected
    /// it; `error` is the precise typed cause.
    Codec {
        /// Name of the tensor whose payload was rejected.
        tensor: String,
        /// Codec stage that rejected the payload.
        stage: &'static str,
        /// The underlying codec rejection.
        error: CodecError,
    },
    /// A member payload failed to decode (bad UTF-8, malformed tensor
    /// block, ...).
    Payload(String),
    /// A sharded bundle failed at the chunk-store layer — a missing,
    /// torn, or corrupt chunk, or an index record inconsistent with its
    /// chunk grid. The inner [`ChunkError`](edde_nn::chunkstore::ChunkError)
    /// names the precise cause and the offending key.
    Chunk(edde_nn::chunkstore::ChunkError),
}

impl BundleError {
    /// Wraps a codec rejection for `tensor` with its stage recorded.
    pub fn codec(tensor: impl Into<String>, error: CodecError) -> Self {
        BundleError::Codec {
            tensor: tensor.into(),
            stage: error.stage(),
            error,
        }
    }
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::BadMagic(magic) => write!(f, "bad magic {magic:?}"),
            BundleError::UnsupportedVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleError::Truncated(what) => write!(f, "truncated {what}"),
            BundleError::ArchMismatch {
                arch,
                expected,
                got,
            } => write!(
                f,
                "arch mismatch for {arch:?}: expected {expected} classes, got {got}"
            ),
            BundleError::MemberCountMismatch { expected, got } => write!(
                f,
                "member count mismatch: live configuration has {expected} members, candidate has {got}"
            ),
            BundleError::Codec {
                tensor,
                stage,
                error,
            } => write!(f, "codec rejection in {stage} stage for {tensor:?}: {error}"),
            BundleError::Payload(msg) => write!(f, "bad payload: {msg}"),
            BundleError::Chunk(e) => write!(f, "chunk store rejection: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<BundleError> for EnsembleError {
    fn from(e: BundleError) -> Self {
        EnsembleError::Bundle(e)
    }
}

impl From<edde_nn::chunkstore::ChunkError> for BundleError {
    fn from(e: edde_nn::chunkstore::ChunkError) -> Self {
        BundleError::Chunk(e)
    }
}

impl From<edde_nn::chunkstore::ChunkError> for EnsembleError {
    fn from(e: edde_nn::chunkstore::ChunkError) -> Self {
        EnsembleError::Bundle(BundleError::Chunk(e))
    }
}

impl fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsembleError::Nn(e) => write!(f, "model error: {e}"),
            EnsembleError::Tensor(e) => write!(f, "tensor error: {e}"),
            EnsembleError::BadConfig(msg) => write!(f, "bad ensemble config: {msg}"),
            EnsembleError::EmptyEnsemble => write!(f, "ensemble has no members"),
            EnsembleError::DataMismatch(msg) => write!(f, "data mismatch: {msg}"),
            EnsembleError::Diverged(msg) => write!(f, "training diverged: {msg}"),
            EnsembleError::Checkpoint(msg) => write!(f, "run state error: {msg}"),
            EnsembleError::Bundle(e) => write!(f, "corrupt bundle: {e}"),
        }
    }
}

impl std::error::Error for EnsembleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EnsembleError::Nn(e) => Some(e),
            EnsembleError::Tensor(e) => Some(e),
            EnsembleError::Bundle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for EnsembleError {
    fn from(e: NnError) -> Self {
        EnsembleError::Nn(e)
    }
}

impl From<TensorError> for EnsembleError {
    fn from(e: TensorError) -> Self {
        EnsembleError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let ne: EnsembleError = NnError::NonFinite("loss").into();
        assert!(matches!(ne, EnsembleError::Nn(_)));
        let te: EnsembleError = TensorError::Empty("x").into();
        assert!(matches!(te, EnsembleError::Tensor(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = EnsembleError::BadConfig("gamma must be >= 0".into());
        assert!(e.to_string().contains("gamma"));
    }
}
