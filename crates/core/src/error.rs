//! Error type for ensemble training.

use edde_nn::NnError;
use edde_tensor::TensorError;
use std::fmt;

/// Convenience alias used by every fallible operation in this crate.
pub type Result<T> = std::result::Result<T, EnsembleError>;

/// Errors raised while constructing or training ensembles.
#[derive(Debug, Clone, PartialEq)]
pub enum EnsembleError {
    /// A neural-network-level error bubbled up from `edde-nn`.
    Nn(NnError),
    /// A tensor-level error bubbled up from `edde-tensor`.
    Tensor(TensorError),
    /// A method was configured inconsistently (zero members, bad γ, ...).
    BadConfig(String),
    /// An operation required a non-empty ensemble.
    EmptyEnsemble,
    /// Datasets passed to an experiment disagree (class counts, shapes).
    DataMismatch(String),
    /// Training diverged (non-finite loss) and could not be recovered.
    Diverged(String),
    /// Persisting or restoring run state failed (store I/O, corrupt
    /// manifest, or a resume attempted against a mismatched configuration).
    Checkpoint(String),
}

impl fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsembleError::Nn(e) => write!(f, "model error: {e}"),
            EnsembleError::Tensor(e) => write!(f, "tensor error: {e}"),
            EnsembleError::BadConfig(msg) => write!(f, "bad ensemble config: {msg}"),
            EnsembleError::EmptyEnsemble => write!(f, "ensemble has no members"),
            EnsembleError::DataMismatch(msg) => write!(f, "data mismatch: {msg}"),
            EnsembleError::Diverged(msg) => write!(f, "training diverged: {msg}"),
            EnsembleError::Checkpoint(msg) => write!(f, "run state error: {msg}"),
        }
    }
}

impl std::error::Error for EnsembleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EnsembleError::Nn(e) => Some(e),
            EnsembleError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for EnsembleError {
    fn from(e: NnError) -> Self {
        EnsembleError::Nn(e)
    }
}

impl From<TensorError> for EnsembleError {
    fn from(e: TensorError) -> Self {
        EnsembleError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_work() {
        let ne: EnsembleError = NnError::NonFinite("loss").into();
        assert!(matches!(ne, EnsembleError::Nn(_)));
        let te: EnsembleError = TensorError::Empty("x").into();
        assert!(matches!(te, EnsembleError::Tensor(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = EnsembleError::BadConfig("gamma must be >= 0".into());
        assert!(e.to_string().contains("gamma"));
    }
}
