//! The weighted soft-voting ensemble model (paper Eq. 16).
//!
//! All inference runs on the shared engine in [`crate::frozen`]: member
//! forward passes use the pure `Network::forward` path and fan out over the
//! persistent tensor worker pool with per-thread scratch contexts, and only
//! the final α-weighted average runs serially, in member order, keeping
//! results bit-identical at every thread count. Every prediction method
//! therefore takes `&self`; mutable access remains only for training-time
//! surgery (e.g. β-knowledge transfer into a member).

use crate::error::{EnsembleError, Result};
use crate::frozen::{self, FrozenEnsemble};
use edde_data::stream::DatasetStream;
use edde_data::Dataset;
use edde_nn::infer::with_thread_ctx;
use edde_nn::Network;
use edde_tensor::Tensor;
use std::sync::Arc;

/// One base model with its ensemble weight `α_t`.
#[derive(Clone)]
pub struct EnsembleMember {
    /// The trained base network `h_t`.
    pub network: Network,
    /// Ensemble weight `α_t` (Eq. 15). Uniform methods use 1.0.
    pub alpha: f32,
    /// Human-readable tag, e.g. `"edde-3"` or `"snapshot-cycle-2"`.
    pub label: String,
}

/// The ensemble `H_T = Σ_t α_t h_t` (Eq. 16): prediction is the α-weighted
/// average of the members' softmax outputs, renormalized so the result is a
/// probability vector (required for the paper's `Sim`/`Div` quantities to
/// stay inside `[0, 1]`).
#[derive(Clone, Default)]
pub struct EnsembleModel {
    members: Vec<EnsembleMember>,
}

impl EnsembleModel {
    /// An empty ensemble.
    pub fn new() -> Self {
        EnsembleModel {
            members: Vec::new(),
        }
    }

    /// Adds a member.
    pub fn push(&mut self, network: Network, alpha: f32, label: impl Into<String>) {
        self.members.push(EnsembleMember {
            network,
            alpha,
            label: label.into(),
        });
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in training order.
    pub fn members(&self) -> &[EnsembleMember] {
        &self.members
    }

    /// Mutable access to the members — training-time only (β-transfer
    /// teachers, distillation sources). Inference never needs it.
    pub fn members_mut(&mut self) -> &mut [EnsembleMember] {
        &mut self.members
    }

    /// Copies the members into an immutable [`FrozenEnsemble`] for serving.
    pub fn freeze(&self) -> FrozenEnsemble {
        let mut frozen = FrozenEnsemble::new();
        for m in &self.members {
            frozen.push(Arc::new(m.network.clone()), m.alpha, m.label.clone());
        }
        frozen
    }

    /// Batched eval-mode softmax output of a single network, on the pure
    /// forward path with this thread's scratch context.
    pub fn network_soft_targets(net: &Network, features: &Tensor) -> Result<Tensor> {
        with_thread_ctx(|ctx| frozen::network_soft_targets_tau(net, features, 1.0, ctx))
    }

    /// Ensemble soft target `H_t(x)` for every row of `features`, using the
    /// first `prefix` members (pass `self.len()` for the full ensemble).
    pub fn soft_targets_prefix(&self, features: &Tensor, prefix: usize) -> Result<Tensor> {
        if prefix == 0 || prefix > self.members.len() {
            return Err(EnsembleError::EmptyEnsemble);
        }
        let nets: Vec<&Network> = self.members[..prefix].iter().map(|m| &m.network).collect();
        let alphas: Vec<f32> = self.members[..prefix].iter().map(|m| m.alpha).collect();
        frozen::weighted_soft_vote(&nets, &alphas, features)
    }

    /// Ensemble soft target `H_T(x)` over all members.
    pub fn soft_targets(&self, features: &Tensor) -> Result<Tensor> {
        self.soft_targets_prefix(features, self.members.len())
    }

    /// Hard predictions of the full ensemble.
    pub fn predict(&self, features: &Tensor) -> Result<Vec<usize>> {
        let probs = self.soft_targets(features)?;
        Ok(edde_tensor::ops::argmax_rows(&probs)?)
    }

    /// Ensemble test accuracy. Like the frozen path, this is the streaming
    /// accuracy reducer fed by a sequential
    /// [`edde_data::stream::DatasetStream`] — one fold implementation for
    /// the mutable, frozen, and streaming entry points, `O(eval_batch)`
    /// memory regardless of `data.len()`.
    pub fn accuracy(&self, data: &Dataset) -> Result<f32> {
        self.accuracy_prefix(data, self.members.len())
    }

    /// Ensemble accuracy using only the first `prefix` members — the
    /// quantity Fig. 7 plots against cumulative training epochs.
    pub fn accuracy_prefix(&self, data: &Dataset, prefix: usize) -> Result<f32> {
        let mut src = DatasetStream::sequential(data, crate::env::eval_batch());
        crate::stream::stream_accuracy_prefix(self, &mut src, prefix)
    }

    /// Mean *individual* member accuracy — the "Average accuracy" column of
    /// Tables IV and VI.
    pub fn average_member_accuracy(&self, data: &Dataset) -> Result<f32> {
        let mut src = DatasetStream::sequential(data, crate::env::eval_batch());
        crate::stream::stream_average_member_accuracy(self, &mut src)
    }

    /// Each member's soft-target matrix on `features` — the raw input to the
    /// diversity measure (Eq. 2) and the pairwise similarity heatmap (Fig. 8).
    pub fn member_soft_targets(&self, features: &Tensor) -> Result<Vec<Tensor>> {
        let nets: Vec<&Network> = self.members.iter().map(|m| &m.network).collect();
        frozen::fan_out_soft_targets(&nets, features)
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edde_nn::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> Dataset {
        let features =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0], &[4, 2]).unwrap();
        Dataset::new(features, vec![0, 1, 0, 1], 2).unwrap()
    }

    fn member(seed: u64) -> Network {
        let mut r = StdRng::seed_from_u64(seed);
        mlp(&[2, 8, 2], 0.0, &mut r)
    }

    #[test]
    fn soft_targets_are_probabilities() {
        let mut ens = EnsembleModel::new();
        ens.push(member(0), 1.0, "a");
        ens.push(member(1), 2.0, "b");
        let d = toy_data();
        let probs = ens.soft_targets(d.features()).unwrap();
        assert_eq!(probs.dims(), &[4, 2]);
        for i in 0..4 {
            let s: f32 = probs.row(i).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn alpha_weighting_biases_toward_heavy_member() {
        let d = toy_data();
        let a = member(3);
        let b = member(4);
        let pa = EnsembleModel::network_soft_targets(&a, d.features()).unwrap();
        let pb = EnsembleModel::network_soft_targets(&b, d.features()).unwrap();
        let mut ens = EnsembleModel::new();
        ens.push(a, 9.0, "heavy");
        ens.push(b, 1.0, "light");
        let mix = ens.soft_targets(d.features()).unwrap();
        for i in 0..mix.len() {
            let expect = (9.0 * pa.data()[i] + pb.data()[i]) / 10.0;
            assert!((mix.data()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn prefix_uses_only_early_members() {
        let d = toy_data();
        let mut ens = EnsembleModel::new();
        ens.push(member(5), 1.0, "a");
        ens.push(member(6), 1.0, "b");
        let first_only = ens.soft_targets_prefix(d.features(), 1).unwrap();
        let solo = member(5);
        let expect = EnsembleModel::network_soft_targets(&solo, d.features()).unwrap();
        assert_eq!(first_only.data(), expect.data());
    }

    #[test]
    fn empty_ensemble_errors() {
        let ens = EnsembleModel::new();
        let d = toy_data();
        assert!(ens.soft_targets(d.features()).is_err());
        assert!(ens.average_member_accuracy(&d).is_err());
    }

    #[test]
    fn accuracy_and_average_accuracy_run() {
        let mut ens = EnsembleModel::new();
        ens.push(member(7), 1.0, "a");
        ens.push(member(8), 1.0, "b");
        let d = toy_data();
        let acc = ens.accuracy(&d).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        let avg = ens.average_member_accuracy(&d).unwrap();
        assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn batched_eval_matches_unbatched() {
        // more rows than the eval batch to exercise the batching path
        let n = crate::env::eval_batch() + 10;
        let mut r = StdRng::seed_from_u64(9);
        let features = edde_tensor::rng::rand_uniform(&[n, 2], -1.0, 1.0, &mut r);
        let net = member(10);
        let batched = EnsembleModel::network_soft_targets(&net, &features).unwrap();
        let direct = net.predict_proba(&features).unwrap();
        for (a, b) in batched.data().iter().zip(direct.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn freeze_matches_mutable_path_bitwise() {
        let mut ens = EnsembleModel::new();
        ens.push(member(11), 1.5, "a");
        ens.push(member(12), 0.5, "b");
        let d = toy_data();
        let frozen = ens.freeze();
        assert_eq!(
            frozen.soft_targets(d.features()).unwrap().data(),
            ens.soft_targets(d.features()).unwrap().data()
        );
        assert_eq!(
            frozen.predict(d.features()).unwrap(),
            ens.predict(d.features()).unwrap()
        );
    }
}
